// lineageq — audit CLI over the --obs-out lineage artifacts.
//
//   lineageq <obs-dir> [--run LABEL]          waterfall totals per stage
//   lineageq <obs-dir> --unit "ASN / City"    records behind a unit's series
//   lineageq <obs-dir> --estimate LABEL       treated vs donor composition
//   lineageq <obs-dir> --terminal STAGE       posting list for one terminal
//   lineageq <obs-dir> --intent               records by measurement intent
//   lineageq <obs-dir> --vantage              records by vantage PoP
//   lineageq <obs-dir> --top-k N              units/vantages by records
//   lineageq <obs-dir> --check                conservation audit
//   lineageq <obs-dir> --serve                REPL/batch query loop (stdin)
//   lineageq <obs-dir> ... --json             force the JSON path
//
// Two interchangeable answer sources back every mode: the indexed binary
// artifact audit.bin (memory-mapped AuditReader, used by default when
// present — opening is O(index) and per-query work touches only the
// relevant section) and the monolithic lineage.json (forced with
// --json, the fallback for pre-audit artifacts). Both fill the same
// query structs and go through the same printers, so the outputs are
// byte-identical — CI diffs them. An audit.bin that exists but fails
// validation is a loud error, never a silent fallback.
//
// `--check` verifies per-run conservation (terminal stages partition the
// emitted records, copies sum to delivered) and then reconciles the
// summed waterfall against the probe / store / panel counters in the
// sibling metrics.json — any mismatch means a record was double-counted
// or lost between layers, and the tool exits 1.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "artifact_io.h"
#include "audit/reader.h"
#include "core/json.h"
#include "obs/lineage.h"

namespace {

using sisyphus::core::json::Value;
using sisyphus::obs::kLineageStageCount;
using sisyphus::obs::LineageStage;

int g_errors = 0;

void Fail(const std::string& where, const std::string& what) {
  std::printf("FAIL %s: %s\n", where.c_str(), what.c_str());
  ++g_errors;
}

/// Reads `key` as an integer count; 0 when absent (pre-lineage artifacts and
/// compiled-out builds simply have nothing to reconcile).
std::uint64_t Count(const Value& parent, const std::string& key) {
  const Value* found = parent.Find(key);
  if (found == nullptr || !found->is_number()) return 0;
  return static_cast<std::uint64_t>(found->number);
}

std::uint64_t SumObject(const Value* object) {
  std::uint64_t total = 0;
  if (object == nullptr || !object->is_object()) return total;
  for (const auto& [_, value] : object->object) {
    if (value.is_number()) total += static_cast<std::uint64_t>(value.number);
  }
  return total;
}

std::string DigestHex(std::uint64_t digest) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(digest));
  return std::string(buffer);
}

/// Prints `count` padded plus its share of `total` ("  1234   3.2%").
void PrintShare(std::uint64_t count, std::uint64_t total) {
  const double pct =
      total > 0 ? 100.0 * static_cast<double>(count) / static_cast<double>(total)
                : 0.0;
  std::printf("%10llu  %5.1f%%\n", static_cast<unsigned long long>(count), pct);
}

// ---------------------------------------------------------------------------
// Source-neutral query results. Both backends fill these; one set of
// printers renders them, so indexed and JSON answers match byte for byte.

using FacetMap = std::map<std::string, std::uint64_t>;

struct WaterfallData {
  std::uint64_t attempted = 0, failed = 0, emitted = 0, delivered = 0;
  std::vector<std::pair<std::string, std::uint64_t>> failure_reasons;
  /// (stage name, count) in legend order.
  std::vector<std::pair<std::string, std::uint64_t>> terminal;
  bool has_panel = false;
  std::uint64_t units_kept = 0, units_dropped = 0, units_empty = 0;
  std::uint64_t cells_observed = 0, cells_masked = 0;
};

struct CellRow {
  std::uint64_t period = 0;
  std::uint64_t count = 0;
  std::string digest;
};

struct UnitData {
  bool found = false;
  bool dropped = false;
  double missing_fraction = 0.0;
  std::uint64_t observed_cells = 0, masked_cells = 0;
  bool used_treated = false, used_donor = false;
  bool has_cells = false;
  std::vector<CellRow> cells;
};

struct CompData {
  std::uint64_t records = 0, cells = 0;
  std::string digest;
  FacetMap intents, faults, vantages;
};

enum class LookupStatus { kOk, kNotFound, kNoEntries, kError };

struct EstimateData {
  std::string treated;
  double effect = 0.0;
  bool has_p = false;
  double p_value = 0.0;
  std::size_t donor_count = 0;
  CompData treated_comp, donor_comp;
};

struct TerminalData {
  std::uint64_t count = 0;
  std::uint64_t emitted = 0;
  FacetMap intents, faults, vantages;
};

struct FacetSummary {
  std::uint64_t rows = 0;
  FacetMap counts;
};

struct TopEntry {
  std::string name;
  std::uint64_t records = 0;
  bool dropped = false;
};

struct TopKData {
  std::vector<TopEntry> units;
  std::vector<TopEntry> vantages;
};

/// Summed-across-runs waterfall, reconciled against metrics.json at the end.
struct CheckTotals {
  std::uint64_t attempted = 0, failed = 0, emitted = 0;
  std::uint64_t archived = 0, quarantined = 0;
  std::uint64_t shed = 0;
  std::uint64_t units_kept = 0, units_dropped = 0, units_empty = 0;
  std::uint64_t cells_observed = 0, cells_masked = 0;
};

/// One query backend: the mmap'd audit.bin index or parsed lineage.json.
class Source {
 public:
  virtual ~Source() = default;
  virtual std::size_t run_count() const = 0;
  virtual std::string run_label(std::size_t run) const = 0;
  /// Fill calls return false after recording a Fail (malformed source).
  virtual bool GetWaterfall(std::size_t run, WaterfallData& out) = 0;
  virtual bool GetUnit(std::size_t run, const std::string& name,
                       UnitData& out) = 0;
  virtual LookupStatus GetEstimate(std::size_t run, const std::string& label,
                                   EstimateData& out) = 0;
  virtual bool GetTerminal(std::size_t run, LineageStage stage,
                           TerminalData& out) = 0;
  /// `which` is "intents" or "vantages".
  virtual bool GetFacet(std::size_t run, const std::string& which,
                        FacetSummary& out) = 0;
  virtual bool GetTopK(std::size_t run, TopKData& out) = 0;
  /// Audits every run's conservation, accumulating into `sums`.
  virtual void Check(CheckTotals& sums) = 0;
};

// ---------------------------------------------------------------------------
// Printers (shared by both sources)

void PrintWaterfallData(const WaterfallData& w) {
  std::printf("probes attempted %llu  failed %llu  emitted %llu  "
              "delivered copies %llu\n",
              static_cast<unsigned long long>(w.attempted),
              static_cast<unsigned long long>(w.failed),
              static_cast<unsigned long long>(w.emitted),
              static_cast<unsigned long long>(w.delivered));
  for (const auto& [reason, count] : w.failure_reasons) {
    std::printf("  failure %-24s %10llu\n", reason.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("  %-18s %10s  %6s\n", "terminal stage", "records", "share");
  for (const auto& [stage, count] : w.terminal) {
    if (count == 0) continue;
    std::printf("  %-18s ", stage.c_str());
    PrintShare(count, w.emitted);
  }
  if (w.has_panel) {
    std::printf("panel: units kept %llu  dropped %llu  empty %llu  "
                "cells observed %llu  masked %llu\n",
                static_cast<unsigned long long>(w.units_kept),
                static_cast<unsigned long long>(w.units_dropped),
                static_cast<unsigned long long>(w.units_empty),
                static_cast<unsigned long long>(w.cells_observed),
                static_cast<unsigned long long>(w.cells_masked));
  }
}

void PrintUnitData(const std::string& unit, const UnitData& data) {
  std::printf("unit '%s': %s  missing_fraction %.3f  observed cells %llu  "
              "masked %llu\n",
              unit.c_str(), data.dropped ? "DROPPED (sparsity)" : "kept",
              data.missing_fraction,
              static_cast<unsigned long long>(data.observed_cells),
              static_cast<unsigned long long>(data.masked_cells));
  std::printf("used as: treated=%s donor=%s\n",
              data.used_treated ? "yes" : "no",
              data.used_donor ? "yes" : "no");
  if (!data.has_cells) return;
  std::uint64_t records = 0;
  for (const CellRow& cell : data.cells) records += cell.count;
  std::printf("%llu records across %zu non-empty cells\n",
              static_cast<unsigned long long>(records), data.cells.size());
  std::printf("  %-8s %8s  %s\n", "period", "records", "digest");
  for (const CellRow& cell : data.cells) {
    std::printf("  %-8llu %8llu  %s\n",
                static_cast<unsigned long long>(cell.period),
                static_cast<unsigned long long>(cell.count),
                cell.digest.c_str());
  }
}

/// One "    intents:  a=1  b=2" facet line, capped at 8 entries.
void PrintFacetLine(const char* facet, const FacetMap& counts) {
  if (counts.empty()) return;
  std::printf("    %s:", facet);
  std::size_t shown = 0;
  for (const auto& [name, count] : counts) {
    if (++shown > 8) {
      std::printf("  ... (%zu more)", counts.size() - 8);
      break;
    }
    std::printf("  %s=%llu", name.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("\n");
}

void PrintCompData(const char* prefix, const CompData& comp) {
  std::printf("  %-7s pool: %llu records in %llu cells  digest %s\n", prefix,
              static_cast<unsigned long long>(comp.records),
              static_cast<unsigned long long>(comp.cells),
              comp.digest.c_str());
  PrintFacetLine("intents", comp.intents);
  PrintFacetLine("faults", comp.faults);
  PrintFacetLine("vantages", comp.vantages);
}

void PrintEstimateData(const std::string& label, const EstimateData& data) {
  std::printf("estimate '%s': treated '%s'  effect %.4f", label.c_str(),
              data.treated.c_str(), data.effect);
  if (data.has_p) std::printf("  p=%.4f", data.p_value);
  std::printf("  donors %zu\n", data.donor_count);
  PrintCompData("treated", data.treated_comp);
  PrintCompData("donor", data.donor_comp);
}

void PrintTerminalData(const std::string& stage, const TerminalData& data) {
  std::printf("terminal '%s': ", stage.c_str());
  PrintShare(data.count, data.emitted);
  PrintFacetLine("intents", data.intents);
  PrintFacetLine("faults", data.faults);
  PrintFacetLine("vantages", data.vantages);
}

void PrintFacetSummary(const char* noun, const FacetSummary& data) {
  std::printf("%llu records across %zu %s:\n",
              static_cast<unsigned long long>(data.rows), data.counts.size(),
              noun);
  for (const auto& [name, count] : data.counts) {
    std::printf("  %-18s ", name.c_str());
    PrintShare(count, data.rows);
  }
}

void PrintTopK(const TopKData& data, std::size_t k) {
  const std::size_t unit_count = std::min(k, data.units.size());
  std::printf("top %zu of %zu units by contributing records:\n", unit_count,
              data.units.size());
  for (std::size_t i = 0; i < unit_count; ++i) {
    const TopEntry& entry = data.units[i];
    std::printf("  %10llu  %s%s\n",
                static_cast<unsigned long long>(entry.records),
                entry.name.c_str(), entry.dropped ? "  (dropped)" : "");
  }
  const std::size_t vantage_count = std::min(k, data.vantages.size());
  std::printf("top %zu of %zu vantages by records:\n", vantage_count,
              data.vantages.size());
  for (std::size_t i = 0; i < vantage_count; ++i) {
    const TopEntry& entry = data.vantages[i];
    std::printf("  %10llu  vantage %s\n",
                static_cast<unsigned long long>(entry.records),
                entry.name.c_str());
  }
}

// ---------------------------------------------------------------------------
// JSON source (lineage.json; --json or pre-audit artifacts)

/// Decoded size of an IdRunSet [gap, len, ...] encoding.
std::uint64_t RunEncodingSize(const Value* encoded) {
  std::uint64_t total = 0;
  if (encoded == nullptr || !encoded->is_array()) return total;
  for (std::size_t i = 1; i < encoded->array.size(); i += 2) {
    total += static_cast<std::uint64_t>(encoded->array[i].number);
  }
  return total;
}

class JsonSource : public Source {
 public:
  /// Loads and validates lineage.json; nullptr after recording Fail(s).
  static std::unique_ptr<JsonSource> Load(const std::string& dir) {
    auto source = std::unique_ptr<JsonSource>(new JsonSource());
    if (!sisyphus::tools::LoadJsonArtifact(dir + "/lineage.json",
                                           source->lineage_,
                                           /*required=*/true, Fail)) {
      return nullptr;
    }
    if (const Value* schema = source->lineage_.Find("schema");
        schema == nullptr || schema->string != "sisyphus.lineage/1") {
      Fail("lineage.schema", "expected sisyphus.lineage/1");
      return nullptr;
    }
    source->runs_ = source->lineage_.Find("runs");
    if (source->runs_ == nullptr || !source->runs_->is_array()) {
      Fail("lineage.runs", "missing");
      return nullptr;
    }
    if (source->runs_->array.empty()) {
      // An artifact with zero runs has nothing to audit; treating it as a
      // pass would let a truncated write (or a binary built with lineage
      // compiled out) slip through CI unnoticed.
      Fail("lineage.runs",
           "no runs recorded — artifact truncated, or the producing binary "
           "ran with lineage disabled");
      return nullptr;
    }
    return source;
  }

  std::size_t run_count() const override { return runs_->array.size(); }

  std::string run_label(std::size_t run) const override {
    const Value* label = runs_->array[run].Find("label");
    return label != nullptr ? label->string
                            : ("run[" + std::to_string(run) + "]");
  }

  bool GetWaterfall(std::size_t run, WaterfallData& out) override {
    const Value* waterfall = runs_->array[run].Find("waterfall");
    if (waterfall == nullptr || !waterfall->is_object()) {
      Fail("run.waterfall", "missing");
      return false;
    }
    out.attempted = Count(*waterfall, "probes_attempted");
    out.failed = Count(*waterfall, "probes_failed");
    out.emitted = Count(*waterfall, "emitted");
    out.delivered = Count(*waterfall, "delivered");
    if (const Value* reasons = waterfall->Find("failure_reasons");
        reasons != nullptr && reasons->is_object()) {
      for (const auto& [reason, count] : reasons->object) {
        out.failure_reasons.emplace_back(
            reason, static_cast<std::uint64_t>(count.number));
      }
    }
    if (const Value* terminal = waterfall->Find("terminal");
        terminal != nullptr && terminal->is_object()) {
      for (const auto& [stage, count] : terminal->object) {
        out.terminal.emplace_back(stage,
                                  static_cast<std::uint64_t>(count.number));
      }
    }
    if (const Value* panel = waterfall->Find("panel");
        panel != nullptr && panel->is_object()) {
      out.has_panel = true;
      out.units_kept = Count(*panel, "units_kept");
      out.units_dropped = Count(*panel, "units_dropped");
      out.units_empty = Count(*panel, "units_empty");
      out.cells_observed = Count(*panel, "cells_observed");
      out.cells_masked = Count(*panel, "cells_masked");
    }
    return true;
  }

  bool GetUnit(std::size_t run, const std::string& name,
               UnitData& out) override {
    const Value* units = runs_->array[run].Find("panel_units");
    const Value* ledger = units != nullptr ? units->Find(name) : nullptr;
    if (ledger == nullptr) return true;  // found stays false
    out.found = true;
    const Value* dropped = ledger->Find("dropped");
    out.dropped = dropped != nullptr && dropped->boolean;
    const Value* missing = ledger->Find("missing_fraction");
    out.missing_fraction = missing != nullptr ? missing->number : 0.0;
    out.observed_cells = Count(*ledger, "observed_cells");
    out.masked_cells = Count(*ledger, "masked_cells");
    const Value* used_treated = ledger->Find("used_treated");
    out.used_treated = used_treated != nullptr && used_treated->boolean;
    const Value* used_donor = ledger->Find("used_donor");
    out.used_donor = used_donor != nullptr && used_donor->boolean;
    const Value* cells = ledger->Find("cells");
    if (cells == nullptr || !cells->is_array()) return true;
    out.has_cells = true;
    for (const Value& cell : cells->array) {
      const Value* digest = cell.Find("digest");
      out.cells.push_back({Count(cell, "period"), Count(cell, "count"),
                           digest != nullptr ? digest->string : "?"});
    }
    return true;
  }

  LookupStatus GetEstimate(std::size_t run, const std::string& label,
                           EstimateData& out) override {
    const Value* estimates = runs_->array[run].Find("estimates");
    if (estimates == nullptr || !estimates->is_array()) {
      return LookupStatus::kNoEntries;
    }
    for (const Value& estimate : estimates->array) {
      const Value* found = estimate.Find("label");
      if (found == nullptr || found->string != label) continue;
      const Value* treated = estimate.Find("treated");
      out.treated = treated != nullptr ? treated->string : "";
      const Value* effect = estimate.Find("effect");
      out.effect = effect != nullptr ? effect->number : 0.0;
      const Value* p_value = estimate.Find("p_value");
      out.has_p = p_value != nullptr && p_value->is_number();
      if (out.has_p) out.p_value = p_value->number;
      const Value* donors = estimate.Find("donors");
      out.donor_count = donors != nullptr ? donors->array.size() : 0;
      FillComposition(estimate, "treated", out.treated_comp);
      FillComposition(estimate, "donor", out.donor_comp);
      return LookupStatus::kOk;
    }
    return LookupStatus::kNotFound;
  }

  bool GetTerminal(std::size_t run, LineageStage stage,
                   TerminalData& out) override {
    WaterfallData waterfall;
    if (!GetWaterfall(run, waterfall)) return false;
    out.emitted = waterfall.emitted;
    const Value* records = runs_->array[run].Find("records");
    if (records == nullptr || !records->is_object()) {
      Fail("run.records", "missing");
      return false;
    }
    const Value* stages = records->Find("stage");
    const Value* intents = records->Find("intent");
    const Value* faults = records->Find("fault_mask");
    const Value* vantages = records->Find("vantage");
    if (stages == nullptr || !stages->is_array()) {
      Fail("run.records.stage", "missing");
      return false;
    }
    const auto code = static_cast<double>(stage);
    for (std::size_t i = 0; i < stages->array.size(); ++i) {
      if (stages->array[i].number != code) continue;
      ++out.count;
      AddRecordFacets(intents, faults, vantages, i, out.intents, out.faults,
                      out.vantages);
    }
    return true;
  }

  bool GetFacet(std::size_t run, const std::string& which,
                FacetSummary& out) override {
    const Value* records = runs_->array[run].Find("records");
    const Value* column =
        records != nullptr
            ? records->Find(which == "intents" ? "intent" : "vantage")
            : nullptr;
    if (column == nullptr || !column->is_array()) {
      Fail("run.records", "missing");
      return false;
    }
    out.rows = column->array.size();
    for (const Value& value : column->array) {
      const auto code = static_cast<std::uint64_t>(value.number);
      if (which == "intents") {
        ++out.counts[sisyphus::obs::LineageIntentName(
            static_cast<std::uint8_t>(code))];
      } else {
        ++out.counts[std::to_string(code)];
      }
    }
    return true;
  }

  bool GetTopK(std::size_t run, TopKData& out) override {
    const Value* units = runs_->array[run].Find("panel_units");
    if (units != nullptr && units->is_object()) {
      for (const auto& [name, unit] : units->object) {
        TopEntry entry;
        entry.name = name;
        const Value* dropped = unit.Find("dropped");
        entry.dropped = dropped != nullptr && dropped->boolean;
        if (entry.dropped) {
          entry.records = RunEncodingSize(unit.Find("dropped_ids"));
        } else if (const Value* cells = unit.Find("cells");
                   cells != nullptr && cells->is_array()) {
          for (const Value& cell : cells->array) {
            entry.records += Count(cell, "count");
          }
        }
        out.units.push_back(std::move(entry));
      }
    }
    std::sort(out.units.begin(), out.units.end(),
              [](const TopEntry& a, const TopEntry& b) {
                if (a.records != b.records) return a.records > b.records;
                return a.name < b.name;
              });
    const Value* records = runs_->array[run].Find("records");
    const Value* vantages =
        records != nullptr ? records->Find("vantage") : nullptr;
    if (vantages != nullptr && vantages->is_array()) {
      std::map<std::uint64_t, std::uint64_t> counts;
      for (const Value& value : vantages->array) {
        ++counts[static_cast<std::uint64_t>(value.number)];
      }
      for (const auto& [vantage, count] : counts) {
        out.vantages.push_back({std::to_string(vantage), count, false});
      }
      std::sort(out.vantages.begin(), out.vantages.end(),
                [&counts](const TopEntry& a, const TopEntry& b) {
                  if (a.records != b.records) return a.records > b.records;
                  return std::stoull(a.name) < std::stoull(b.name);
                });
    }
    return true;
  }

  void Check(CheckTotals& sums) override {
    for (std::size_t i = 0; i < runs_->array.size(); ++i) {
      CheckRun(runs_->array[i], run_label(i), sums);
    }
  }

 private:
  JsonSource() = default;

  static void AddRecordFacets(const Value* intents, const Value* faults,
                              const Value* vantages, std::size_t i,
                              FacetMap& intent_out, FacetMap& fault_out,
                              FacetMap& vantage_out) {
    if (intents != nullptr && intents->is_array() &&
        i < intents->array.size()) {
      ++intent_out[sisyphus::obs::LineageIntentName(
          static_cast<std::uint8_t>(intents->array[i].number))];
    }
    if (faults != nullptr && faults->is_array() && i < faults->array.size()) {
      const auto mask =
          static_cast<std::uint8_t>(faults->array[i].number);
      for (std::size_t bit = 0;
           bit < sisyphus::obs::kLineageFaultNames.size(); ++bit) {
        if (mask & (1u << bit)) {
          ++fault_out[sisyphus::obs::kLineageFaultNames[bit]];
        }
      }
    }
    if (vantages != nullptr && vantages->is_array() &&
        i < vantages->array.size()) {
      ++vantage_out[std::to_string(
          static_cast<std::uint64_t>(vantages->array[i].number))];
    }
  }

  static void FillComposition(const Value& estimate, const char* prefix,
                              CompData& out) {
    out.records = Count(estimate, std::string(prefix) + "_records");
    out.cells = Count(estimate, std::string(prefix) + "_cells");
    const Value* digest = estimate.Find(std::string(prefix) + "_digest");
    out.digest = digest != nullptr ? digest->string : "?";
    const auto facet = [&](const char* name, FacetMap& map) {
      const Value* breakdown =
          estimate.Find(std::string(prefix) + "_" + name);
      if (breakdown == nullptr || !breakdown->is_object()) return;
      for (const auto& [key, count] : breakdown->object) {
        map[key] = static_cast<std::uint64_t>(count.number);
      }
    };
    facet("intents", out.intents);
    facet("faults", out.faults);
    facet("vantages", out.vantages);
  }

  static void CheckRun(const Value& run, const std::string& where,
                       CheckTotals& sums) {
    const Value* waterfall = run.Find("waterfall");
    if (waterfall == nullptr || !waterfall->is_object()) {
      Fail(where + ".waterfall", "missing");
      return;
    }
    const std::uint64_t attempted = Count(*waterfall, "probes_attempted");
    const std::uint64_t failed = Count(*waterfall, "probes_failed");
    const std::uint64_t emitted = Count(*waterfall, "emitted");
    const std::uint64_t delivered = Count(*waterfall, "delivered");
    const std::uint64_t quarantined = Count(*waterfall, "quarantined_copies");
    const std::uint64_t archived = Count(*waterfall, "archived_copies");

    // Conservation within the run: stages partition the emitted records.
    if (attempted != emitted + failed) {
      Fail(where, "probes_attempted " + std::to_string(attempted) +
                      " != emitted + failed " +
                      std::to_string(emitted + failed));
    }
    if (SumObject(waterfall->Find("failure_reasons")) != failed) {
      Fail(where, "failure_reasons do not sum to probes_failed");
    }
    if (const std::uint64_t untracked = Count(*waterfall, "untracked");
        untracked != 0) {
      Fail(where, std::to_string(untracked) +
                      " record(s) never reached a terminal state");
    }
    const Value* terminal = waterfall->Find("terminal");
    if (const std::uint64_t terminal_sum = SumObject(terminal);
        terminal_sum != emitted) {
      Fail(where, "terminal stages sum to " + std::to_string(terminal_sum) +
                      ", emitted is " + std::to_string(emitted));
    }
    if (archived + quarantined != delivered) {
      Fail(where, "archived + quarantined copies != delivered");
    }

    // The columnar per-record dump must agree with the rollup: recompute
    // the stage histogram and the copy total from the arrays themselves.
    const Value* records = run.Find("records");
    if (records != nullptr && records->is_object()) {
      const std::uint64_t count = Count(*records, "count");
      if (count != emitted) {
        Fail(where + ".records", "count " + std::to_string(count) +
                                     " != waterfall.emitted " +
                                     std::to_string(emitted));
      }
      const Value* stage = records->Find("stage");
      const Value* copies = records->Find("copies");
      for (const char* column : {"vantage", "intent", "attempts",
                                 "fault_mask", "copies", "stage"}) {
        const Value* array = records->Find(column);
        if (array == nullptr || !array->is_array() ||
            array->array.size() != count) {
          Fail(where + ".records." + column, "missing or wrong length");
        }
      }
      if (stage != nullptr && stage->is_array() && terminal != nullptr) {
        std::map<std::size_t, std::uint64_t> histogram;
        for (const Value& s : stage->array) {
          ++histogram[static_cast<std::size_t>(s.number)];
        }
        std::size_t index = 0;
        for (const auto& [name, stage_count] : terminal->object) {
          const auto expected =
              static_cast<std::uint64_t>(stage_count.number);
          const std::uint64_t actual =
              histogram.count(index) ? histogram[index] : 0;
          if (expected != actual) {
            Fail(where + ".terminal." + name,
                 "rollup says " + std::to_string(expected) +
                     ", per-record stages say " + std::to_string(actual));
          }
          ++index;
        }
      }
      if (copies != nullptr && copies->is_array()) {
        std::uint64_t copy_sum = 0;
        for (const Value& c : copies->array) {
          copy_sum += static_cast<std::uint64_t>(c.number);
        }
        if (copy_sum != delivered) {
          Fail(where + ".records.copies",
               "sum " + std::to_string(copy_sum) +
                   " != waterfall.delivered " + std::to_string(delivered));
        }
      }
    }

    sums.attempted += attempted;
    sums.failed += failed;
    sums.emitted += emitted;
    sums.archived += archived;
    sums.quarantined += quarantined;
    // Records dropped by the streaming overload-shed policy terminate in
    // shed_overload with zero delivered copies, so they count toward
    // emitted but not toward archived/quarantined — reconciled against the
    // measure.stream.shed_overload counter below.
    if (terminal != nullptr && terminal->is_object()) {
      sums.shed += Count(*terminal, "shed_overload");
    }
    if (const Value* panel = waterfall->Find("panel");
        panel != nullptr && panel->is_object()) {
      sums.units_kept += Count(*panel, "units_kept");
      sums.units_dropped += Count(*panel, "units_dropped");
      sums.units_empty += Count(*panel, "units_empty");
      sums.cells_observed += Count(*panel, "cells_observed");
      sums.cells_masked += Count(*panel, "cells_masked");
    }
  }

  Value lineage_;
  const Value* runs_ = nullptr;
};

// ---------------------------------------------------------------------------
// Audit source (audit.bin; the default when present)

class AuditSource : public Source {
 public:
  /// Opens and validates audit.bin; nullptr after recording Fail(s).
  /// A present-but-invalid index is a loud error, never a fallback.
  static std::unique_ptr<AuditSource> Open(const std::string& path) {
    auto source = std::unique_ptr<AuditSource>(new AuditSource());
    if (const auto status = source->reader_.Open(path); !status.ok()) {
      Fail(path, status.error().message());
      return nullptr;
    }
    if (source->reader_.run_count() == 0) {
      Fail("audit.runs",
           "no runs recorded — artifact truncated, or the producing binary "
           "ran with lineage disabled");
      return nullptr;
    }
    source->path_ = path;
    return source;
  }

  std::size_t run_count() const override { return reader_.run_count(); }

  std::string run_label(std::size_t run) const override {
    return reader_.run(run).label;
  }

  bool GetWaterfall(std::size_t run, WaterfallData& out) override {
    const sisyphus::obs::LineageWaterfall& w = reader_.run(run).waterfall;
    out.attempted = w.probes_attempted;
    out.failed = w.probes_failed;
    out.emitted = w.emitted;
    out.delivered = w.delivered;
    for (const auto& [reason, count] : w.failure_reasons) {
      out.failure_reasons.emplace_back(reason, count);
    }
    for (std::size_t s = 0; s < kLineageStageCount; ++s) {
      out.terminal.emplace_back(
          sisyphus::obs::ToString(static_cast<LineageStage>(s)),
          w.terminal[s]);
    }
    out.has_panel = true;
    out.units_kept = w.units_kept;
    out.units_dropped = w.units_dropped;
    out.units_empty = w.units_empty;
    out.cells_observed = w.cells_observed;
    out.cells_masked = w.cells_masked;
    return true;
  }

  bool GetUnit(std::size_t run, const std::string& name,
               UnitData& out) override {
    const auto result = reader_.FindUnit(run, name);
    if (!result.ok()) {
      Fail(path_, result.error().message());
      return false;
    }
    const sisyphus::audit::UnitInfo& info = result.value();
    if (!info.found) return true;  // found stays false
    out.found = true;
    out.dropped = info.dropped;
    out.missing_fraction = info.missing_fraction;
    out.observed_cells = info.observed_cells;
    out.masked_cells = info.masked_cells;
    out.used_treated = info.used_treated;
    out.used_donor = info.used_donor;
    out.has_cells = true;
    for (const sisyphus::audit::CellInfo& cell : info.cells) {
      out.cells.push_back({cell.period, cell.count, DigestHex(cell.digest)});
    }
    return true;
  }

  LookupStatus GetEstimate(std::size_t run, const std::string& label,
                           EstimateData& out) override {
    if (reader_.run(run).estimate_count == 0) {
      return LookupStatus::kNoEntries;
    }
    const auto result = reader_.FindEstimate(run, label);
    if (!result.ok()) {
      Fail(path_, result.error().message());
      return LookupStatus::kError;
    }
    const sisyphus::audit::EstimateInfo& info = result.value();
    if (!info.found) return LookupStatus::kNotFound;
    out.treated = info.treated;
    out.effect = info.effect;
    out.has_p = !std::isnan(info.p_value);
    if (out.has_p) out.p_value = info.p_value;
    out.donor_count = info.donors.size();
    FillComposition(info.treated_comp, out.treated_comp);
    FillComposition(info.donor_comp, out.donor_comp);
    return LookupStatus::kOk;
  }

  bool GetTerminal(std::size_t run, LineageStage stage,
                   TerminalData& out) override {
    const auto result = reader_.Terminal(run, stage);
    if (!result.ok()) {
      Fail(path_, result.error().message());
      return false;
    }
    out.count = result.value().count;
    out.emitted = reader_.run(run).waterfall.emitted;
    out.intents = result.value().facets.intents;
    out.faults = result.value().facets.faults;
    out.vantages = result.value().facets.vantages;
    return true;
  }

  bool GetFacet(std::size_t run, const std::string& which,
                FacetSummary& out) override {
    // Every record resolves to exactly one terminal stage, so the nine
    // per-stage facet maps partition the run: summing them answers the
    // whole-run facet summary from the index, without touching the
    // columnar arrays (O(facets), not O(records)).
    out.rows = reader_.run(run).record_rows;
    for (std::size_t s = 0; s < sisyphus::obs::kLineageStageCount; ++s) {
      const auto result =
          reader_.Terminal(run, static_cast<LineageStage>(s));
      if (!result.ok()) {
        Fail(path_, result.error().message());
        return false;
      }
      const auto& facets = which == "intents" ? result.value().facets.intents
                                              : result.value().facets.vantages;
      for (const auto& [name, count] : facets) out.counts[name] += count;
    }
    return true;
  }

  bool GetTopK(std::size_t run, TopKData& out) override {
    const auto result = reader_.Ranked(run);
    if (!result.ok()) {
      Fail(path_, result.error().message());
      return false;
    }
    for (const sisyphus::audit::UnitRank& unit : result.value().units) {
      out.units.push_back({unit.name, unit.records, unit.dropped});
    }
    for (const sisyphus::audit::VantageRank& v : result.value().vantages) {
      out.vantages.push_back({std::to_string(v.vantage), v.records, false});
    }
    return true;
  }

  void Check(CheckTotals& sums) override {
    if (const auto status = reader_.VerifyAll(); !status.ok()) {
      Fail(path_, status.error().message());
      return;
    }
    for (std::size_t i = 0; i < reader_.run_count(); ++i) {
      CheckRun(i, sums);
    }
  }

 private:
  AuditSource() = default;

  static void FillComposition(const sisyphus::audit::CompositionInfo& info,
                              CompData& out) {
    out.records = info.records;
    out.cells = info.cells;
    out.digest = DigestHex(info.digest);
    out.intents = info.facets.intents;
    out.faults = info.facets.faults;
    out.vantages = info.facets.vantages;
  }

  void CheckRun(std::size_t run, CheckTotals& sums) {
    const sisyphus::audit::RunSummary& summary = reader_.run(run);
    const sisyphus::obs::LineageWaterfall& w = summary.waterfall;
    const std::string& where = summary.label;

    std::uint64_t reason_sum = 0;
    for (const auto& [_, count] : w.failure_reasons) reason_sum += count;
    if (reason_sum != w.probes_failed) {
      Fail(where, "failure_reasons do not sum to probes_failed");
    }
    if (w.untracked != 0) {
      Fail(where, std::to_string(w.untracked) +
                      " record(s) never reached a terminal state");
    }
    std::uint64_t terminal_sum = 0;
    for (std::uint64_t count : w.terminal) terminal_sum += count;
    if (terminal_sum != w.emitted) {
      Fail(where, "terminal stages sum to " + std::to_string(terminal_sum) +
                      ", emitted is " + std::to_string(w.emitted));
    }
    if (w.archived_copies + w.quarantined_copies != w.delivered) {
      Fail(where, "archived + quarantined copies != delivered");
    }
    if (summary.record_rows != w.emitted) {
      Fail(where + ".records",
           "count " + std::to_string(summary.record_rows) +
               " != waterfall.emitted " + std::to_string(w.emitted));
    }

    // Recompute the stage histogram and copy total from the columnar
    // section, then cross-check the terminal posting lists against it —
    // the index must agree with the raw columns it claims to summarize.
    const auto columns = reader_.Records(run);
    if (!columns.ok()) {
      Fail(path_, columns.error().message());
      return;
    }
    std::array<std::uint64_t, kLineageStageCount> histogram{};
    std::uint64_t copy_sum = 0;
    for (std::uint64_t i = 0; i < columns.value().count; ++i) {
      const std::uint8_t stage = columns.value().stage[i];
      if (stage < kLineageStageCount) ++histogram[stage];
      copy_sum += columns.value().copies[i];
    }
    for (std::size_t s = 0; s < kLineageStageCount; ++s) {
      const char* name =
          sisyphus::obs::ToString(static_cast<LineageStage>(s));
      if (w.terminal[s] != histogram[s]) {
        Fail(where + ".terminal." + name,
             "rollup says " + std::to_string(w.terminal[s]) +
                 ", per-record stages say " + std::to_string(histogram[s]));
      }
      const auto slice =
          reader_.Terminal(run, static_cast<LineageStage>(s));
      if (!slice.ok()) {
        Fail(path_, slice.error().message());
      } else if (slice.value().count != histogram[s]) {
        Fail(where + ".terminal_index." + name,
             "posting list has " + std::to_string(slice.value().count) +
                 " id(s), per-record stages say " +
                 std::to_string(histogram[s]));
      }
    }
    if (copy_sum != w.delivered) {
      Fail(where + ".records.copies",
           "sum " + std::to_string(copy_sum) + " != waterfall.delivered " +
               std::to_string(w.delivered));
    }

    sums.attempted += w.probes_attempted;
    sums.failed += w.probes_failed;
    sums.emitted += w.emitted;
    sums.archived += w.archived_copies;
    sums.quarantined += w.quarantined_copies;
    sums.shed +=
        w.terminal[static_cast<std::size_t>(LineageStage::kShedOverload)];
    sums.units_kept += w.units_kept;
    sums.units_dropped += w.units_dropped;
    sums.units_empty += w.units_empty;
    sums.cells_observed += w.cells_observed;
    sums.cells_masked += w.cells_masked;
  }

  sisyphus::audit::AuditReader reader_;
  std::string path_;
};

// ---------------------------------------------------------------------------
// Mode dispatch (shared between one-shot CLI and --serve)

void Reconcile(const CheckTotals& sums, const Value& metrics) {
  const Value* counters = metrics.Find("counters");
  if (counters == nullptr || !counters->is_object()) {
    Fail("metrics.counters", "missing");
    return;
  }
  const auto expect = [&](const char* counter, std::uint64_t lineage_total) {
    const std::uint64_t metric = Count(*counters, counter);
    if (metric != lineage_total) {
      Fail(std::string("reconcile.") + counter,
           "metrics.json says " + std::to_string(metric) +
               ", lineage waterfall sums to " + std::to_string(lineage_total));
    }
  };
  expect("measure.probes.attempted", sums.attempted);
  expect("measure.probes.failed", sums.failed);
  expect("measure.probes.succeeded", sums.emitted);
  expect("measure.store.archived", sums.archived);
  expect("measure.store.quarantined", sums.quarantined);
  expect("measure.stream.shed_overload", sums.shed);
  expect("measure.panel.units_kept", sums.units_kept);
  expect("measure.panel.units_dropped", sums.units_dropped);
  expect("measure.panel.units_empty", sums.units_empty);
  expect("measure.panel.cells_observed", sums.cells_observed);
  expect("measure.panel.cells_masked", sums.cells_masked);
}

int RunCheck(Source& source, const std::string& dir) {
  CheckTotals sums;
  source.Check(sums);
  if (sums.emitted == 0) {
    Fail("check", "zero emitted records across all runs — nothing was "
                  "measured, so the audit is vacuous");
  }
  Value metrics;
  if (sisyphus::tools::LoadJsonArtifact(dir + "/metrics.json", metrics,
                                        /*required=*/true, Fail)) {
    Reconcile(sums, metrics);
  }
  if (g_errors > 0) {
    std::printf("lineageq --check: %d violation(s)\n", g_errors);
    return 1;
  }
  std::printf("lineageq --check: OK — %llu emitted record(s) across %zu "
              "run(s) all reconcile\n",
              static_cast<unsigned long long>(sums.emitted),
              source.run_count());
  return 0;
}

enum class Mode {
  kWaterfall,
  kUnit,
  kEstimate,
  kTerminal,
  kIntent,
  kVantage,
  kTopK,
};

struct Query {
  Mode mode = Mode::kWaterfall;
  std::string arg;           ///< unit name / estimate label / stage name
  std::string run_filter;
  std::size_t top_k = 5;
};

/// Resolves a terminal stage name from the legend; records a Fail and
/// returns false for unknown names.
bool ResolveStage(const std::string& name, LineageStage& out) {
  for (std::size_t s = 0; s < kLineageStageCount; ++s) {
    const auto stage = static_cast<LineageStage>(s);
    if (name == sisyphus::obs::ToString(stage)) {
      out = stage;
      return true;
    }
  }
  std::string known;
  for (std::size_t s = 0; s < kLineageStageCount; ++s) {
    if (!known.empty()) known += ", ";
    known += sisyphus::obs::ToString(static_cast<LineageStage>(s));
  }
  Fail("--terminal", "unknown stage '" + name + "' (known: " + known + ")");
  return false;
}

int RunQuery(Source& source, const Query& query) {
  LineageStage stage = LineageStage::kEmitted;
  if (query.mode == Mode::kTerminal && !ResolveStage(query.arg, stage)) {
    return 1;
  }
  bool matched_run = query.run_filter.empty();
  for (std::size_t i = 0; i < source.run_count(); ++i) {
    const std::string label = source.run_label(i);
    if (!query.run_filter.empty() && label != query.run_filter) continue;
    matched_run = true;
    std::printf("== run: %s ==\n", label.c_str());
    switch (query.mode) {
      case Mode::kWaterfall: {
        WaterfallData data;
        if (source.GetWaterfall(i, data)) PrintWaterfallData(data);
        break;
      }
      case Mode::kUnit: {
        UnitData data;
        if (source.GetUnit(i, query.arg, data)) {
          if (!data.found) {
            Fail("--unit",
                 "'" + query.arg + "' is not in this run's panel ledger");
          } else {
            PrintUnitData(query.arg, data);
          }
        }
        break;
      }
      case Mode::kEstimate: {
        EstimateData data;
        switch (source.GetEstimate(i, query.arg, data)) {
          case LookupStatus::kOk:
            PrintEstimateData(query.arg, data);
            break;
          case LookupStatus::kNoEntries:
            Fail("--estimate", "this run recorded no estimates");
            break;
          case LookupStatus::kNotFound:
            Fail("--estimate", "'" + query.arg + "' not found in this run");
            break;
          case LookupStatus::kError:
            break;
        }
        break;
      }
      case Mode::kTerminal: {
        TerminalData data;
        if (source.GetTerminal(i, stage, data)) {
          PrintTerminalData(query.arg, data);
        }
        break;
      }
      case Mode::kIntent:
      case Mode::kVantage: {
        FacetSummary data;
        const bool intents = query.mode == Mode::kIntent;
        if (source.GetFacet(i, intents ? "intents" : "vantages", data)) {
          PrintFacetSummary(intents ? "intents" : "vantages", data);
        }
        break;
      }
      case Mode::kTopK: {
        TopKData data;
        if (source.GetTopK(i, data)) PrintTopK(data, query.top_k);
        break;
      }
    }
    std::printf("\n");
  }
  if (!matched_run) {
    std::printf("no run labeled '%s' (have %zu run(s))\n",
                query.run_filter.c_str(), source.run_count());
    return 1;
  }
  return g_errors > 0 ? 1 : 0;
}

// ---------------------------------------------------------------------------
// --serve: REPL/batch loop. One command per line on stdin, answers on
// stdout (identical bytes to the one-shot modes; the banner and prompts
// go to stderr so piped output can be diffed against one-shot runs).
// Errors within a command are reported but do not end the session.

int Serve(Source& source, const std::string& dir) {
  std::fprintf(stderr,
               "lineageq: serving %zu run(s); commands: waterfall [RUN] | "
               "unit NAME | estimate LABEL | terminal STAGE | intent | "
               "vantage | topk [N] | check | quit\n",
               source.run_count());
  std::string line;
  while (std::getline(std::cin, line)) {
    // Tokenize: first word is the command, the rest is the argument.
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    const std::size_t split = line.find_first_of(" \t", start);
    const std::string command = line.substr(
        start, split == std::string::npos ? std::string::npos : split - start);
    std::string arg;
    if (split != std::string::npos) {
      const std::size_t arg_start = line.find_first_not_of(" \t", split);
      if (arg_start != std::string::npos) {
        arg = line.substr(arg_start,
                          line.find_last_not_of(" \t") - arg_start + 1);
      }
    }
    if (command == "quit" || command == "exit") break;
    g_errors = 0;
    Query query;
    if (command == "waterfall") {
      query.mode = Mode::kWaterfall;
      query.run_filter = arg;
    } else if (command == "unit") {
      query.mode = Mode::kUnit;
      query.arg = arg;
    } else if (command == "estimate") {
      query.mode = Mode::kEstimate;
      query.arg = arg;
    } else if (command == "terminal") {
      query.mode = Mode::kTerminal;
      query.arg = arg;
    } else if (command == "intent") {
      query.mode = Mode::kIntent;
    } else if (command == "vantage") {
      query.mode = Mode::kVantage;
    } else if (command == "topk") {
      query.mode = Mode::kTopK;
      if (!arg.empty()) {
        const long k = std::atol(arg.c_str());
        if (k <= 0) {
          std::printf("FAIL topk: '%s' is not a positive count\n\n",
                      arg.c_str());
          std::fflush(stdout);
          continue;
        }
        query.top_k = static_cast<std::size_t>(k);
      }
    } else if (command == "check") {
      (void)RunCheck(source, dir);
      std::printf("\n");
      std::fflush(stdout);
      continue;
    } else {
      std::printf("FAIL serve: unknown command '%s'\n\n", command.c_str());
      std::fflush(stdout);
      continue;
    }
    (void)RunQuery(source, query);
    std::fflush(stdout);
  }
  return 0;
}

void PrintUsage() {
  std::printf(
      "usage: lineageq <obs-out-dir> [--run LABEL] [--unit \"ASN / City\"]\n"
      "                [--estimate LABEL] [--terminal STAGE] [--intent]\n"
      "                [--vantage] [--top-k N] [--check] [--serve] [--json]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argv[1][0] == '-') {
    PrintUsage();
    return 1;
  }
  const std::string dir = argv[1];
  Query query;
  std::string unit, estimate, terminal;
  bool intent = false, vantage = false, top_k = false;
  bool check = false, serve = false, force_json = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--run") == 0 && i + 1 < argc) {
      query.run_filter = argv[++i];
    } else if (std::strcmp(argv[i], "--unit") == 0 && i + 1 < argc) {
      unit = argv[++i];
    } else if (std::strcmp(argv[i], "--estimate") == 0 && i + 1 < argc) {
      estimate = argv[++i];
    } else if (std::strcmp(argv[i], "--terminal") == 0 && i + 1 < argc) {
      terminal = argv[++i];
    } else if (std::strcmp(argv[i], "--intent") == 0) {
      intent = true;
    } else if (std::strcmp(argv[i], "--vantage") == 0) {
      vantage = true;
    } else if (std::strcmp(argv[i], "--top-k") == 0 && i + 1 < argc) {
      const long k = std::atol(argv[++i]);
      if (k <= 0) {
        PrintUsage();
        return 1;
      }
      query.top_k = static_cast<std::size_t>(k);
      top_k = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      serve = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      force_json = true;
    } else {
      PrintUsage();
      return 1;
    }
  }

  // Pick the answer source: the indexed audit.bin when present (and not
  // overridden), else the monolithic lineage.json. A present-but-broken
  // audit.bin fails loudly — silently falling back would mask corruption.
  std::unique_ptr<Source> source;
  const std::string audit_path =
      dir + "/" + sisyphus::audit::kAuditFileName;
  bool audit_present = false;
  if (!force_json) {
    if (std::FILE* probe = std::fopen(audit_path.c_str(), "rb")) {
      std::fclose(probe);
      audit_present = true;
    }
  }
  if (audit_present) {
    source = AuditSource::Open(audit_path);
  } else {
    source = JsonSource::Load(dir);
  }
  if (source == nullptr) return 1;

  if (serve) return Serve(*source, dir);
  if (check) {
    // --check always audits every run: the metrics counters accumulate
    // across the whole process, so reconciliation needs the full sum.
    return RunCheck(*source, dir);
  }
  if (!unit.empty()) {
    query.mode = Mode::kUnit;
    query.arg = unit;
  } else if (!estimate.empty()) {
    query.mode = Mode::kEstimate;
    query.arg = estimate;
  } else if (!terminal.empty()) {
    query.mode = Mode::kTerminal;
    query.arg = terminal;
  } else if (intent) {
    query.mode = Mode::kIntent;
  } else if (vantage) {
    query.mode = Mode::kVantage;
  } else if (top_k) {
    query.mode = Mode::kTopK;
  }
  return RunQuery(*source, query);
}
