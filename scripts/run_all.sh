#!/usr/bin/env bash
# Build, test, and regenerate every experiment — the repository's one-shot
# verification entry point.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

echo
echo "=== experiments ==="
# The glob includes exp_fault_resilience (F1), which exits non-zero if
# fault-plan replay is not byte-identical or the degraded-data estimate
# leaves the 25% budget (DESIGN.md "Failure model & degraded-data
# semantics").
for bench in build/bench/table1_ixp_synth_control build/bench/exp_*; do
  "$bench" || echo "SHAPE REGRESSION: $bench"
done

echo
echo "=== examples ==="
for example in build/examples/*; do
  "$example" > /dev/null && echo "ok: $example"
done

echo
echo "=== perf (short) ==="
for perf in build/bench/perf_*; do
  "$perf" --benchmark_min_time=0.02 > /dev/null && echo "ok: $perf"
done
