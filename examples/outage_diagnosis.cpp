// Outage diagnosis with counterfactuals — the paper's introduction in
// miniature.
//
// The 2021 Facebook outage looked like a DNS failure; the root cause was
// a routing withdrawal a layer below. This example shows how the same
// "surface symptom vs root cause" confusion arises, and how the two
// causal tools the paper advocates resolve it:
//   * a DAG makes the dependency structure explicit (DNS depends on
//     reachability, not vice versa), and
//   * unit-level counterfactuals answer the operator's real question:
//     "would resolution still have failed had the route NOT been
//     withdrawn?"
#include <cstdio>

#include "causal/dag_parser.h"
#include "causal/ladder.h"
#include "causal/scm.h"
#include "netsim/simulator.h"

using namespace sisyphus;
using core::Asn;

int main() {
  // ---- The network view: withdrawing the origin's routes kills DNS ----
  netsim::Topology topo;
  const auto city = topo.cities().Add({"X", {0, 0}, 0});
  const auto user = topo.AddPop(Asn{100}, city, netsim::AsRole::kAccess).value();
  const auto transit =
      topo.AddPop(Asn{20}, city, netsim::AsRole::kTransit).value();
  const auto origin =
      topo.AddPop(Asn{32934}, city, netsim::AsRole::kContent).value();
  (void)topo.AddLink(user, transit, netsim::Relationship::kCustomerToProvider);
  const auto origin_link =
      topo.AddLink(origin, transit, netsim::Relationship::kCustomerToProvider)
          .value();
  netsim::NetworkSimulator sim(std::move(topo));
  sim.WatchPath(user, origin);

  std::printf("before: user reaches AS32934: %s\n",
              sim.RouteBetween(user, origin).ok() ? "yes" : "no");
  netsim::NetworkEvent withdraw;
  withdraw.time = sim.Now();
  withdraw.type = netsim::EventType::kLinkDown;
  withdraw.exogenous = false;
  withdraw.description = "BGP misconfiguration: origin withdraws routes";
  withdraw.link = origin_link;
  sim.ApplyNow(withdraw);
  std::printf("after withdrawal: user reaches AS32934: %s — the DNS "
              "servers live behind those prefixes\n\n",
              sim.RouteBetween(user, origin).ok() ? "yes" : "no");

  // ---- The causal view ----
  // Variables: RouteWithdrawn (R), Reachability (A), DnsFailure (D),
  // AppError (E, what users tweeted about). A config push (C) caused R.
  auto dag = causal::ParseDag(
      "ConfigPush -> RouteWithdrawn;"
      "RouteWithdrawn -> Reachability;"
      "Reachability -> DnsFailure;"
      "DnsFailure -> AppError");
  std::printf("DAG: %s\n", dag.value().ToText().c_str());

  causal::Scm scm(dag.value());
  (void)scm.SetLinear("ConfigPush", 0.0, {}, 1.0);
  (void)scm.SetLinear("RouteWithdrawn", 0.0, {{"ConfigPush", 1.0}}, 0.05);
  // Reachability = 1 - withdrawal (deterministic-ish).
  (void)scm.SetLinear("Reachability", 1.0, {{"RouteWithdrawn", -1.0}}, 0.02);
  (void)scm.SetLinear("DnsFailure", 1.0, {{"Reachability", -1.0}}, 0.02);
  (void)scm.SetLinear("AppError", 0.05, {{"DnsFailure", 0.9}}, 0.05);

  // The factual world during the outage.
  std::unordered_map<std::string, double> factual{
      {"ConfigPush", 1.0}, {"RouteWithdrawn", 1.0}, {"Reachability", 0.0},
      {"DnsFailure", 1.0}, {"AppError", 0.95}};

  // Operator question 1: was DNS the root cause? Counterfactual: fix DNS
  // by fiat (do(DnsFailure = 0)) — do app errors go away? Yes, but...
  auto fix_dns =
      causal::CounterfactualOutcome(scm, factual, "DnsFailure", "AppError",
                                    0.0);
  // Operator question 2: would DNS have failed anyway had the route NOT
  // been withdrawn? do(RouteWithdrawn = 0):
  auto no_withdrawal = causal::CounterfactualOutcome(
      scm, factual, "RouteWithdrawn", "DnsFailure", 0.0);

  std::printf("\ncounterfactual 1 — do(DnsFailure=0): AppError %.2f -> "
              "%.2f. Patching the symptom works, but explains nothing.\n",
              factual.at("AppError"), fix_dns.value());
  std::printf("counterfactual 2 — do(RouteWithdrawn=0): DnsFailure %.2f "
              "-> %.2f. No withdrawal, no DNS failure: the routing change "
              "is the root cause.\n",
              factual.at("DnsFailure"), no_withdrawal.value());
  std::printf("\npaper: 'surface-level symptoms masked the real failure "
              "mechanism' — counterfactuals on an explicit DAG make the "
              "mechanism checkable instead of guessable.\n");
  return 0;
}
