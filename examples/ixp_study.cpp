// IXP case study, end to end on the public API — a compact version of the
// paper's "Does joining an IXP reduce latency?" analysis (Table 1).
//
//   simulate a metro with treated + donor ISPs  ->  run an M-Lab-style
//   campaign  ->  detect IXP crossings from traceroute hops  ->  build the
//   RTT panel  ->  robust synthetic control + placebo p-value.
//
// For the full eight-unit reproduction, see
// bench/table1_ixp_synth_control.
#include <cstdio>

#include "causal/placebo.h"
#include "core/rng.h"
#include "measure/panel.h"
#include "measure/platform.h"
#include "netsim/scenario_za.h"

using namespace sisyphus;

int main() {
  // A smaller, faster variant of the paper's scenario: 12 donor units,
  // 28-day panel, IXP peering goes live at day 14.
  netsim::ScenarioZaOptions options;
  options.donor_units = 12;
  options.treatment_time = core::SimTime::FromDays(14);
  options.horizon = core::SimTime::FromDays(28);
  auto scenario = netsim::BuildScenarioZa(options);

  measure::PlatformOptions platform_options;
  platform_options.server = scenario.content_jnb;
  measure::Platform platform(*scenario.simulator, platform_options);
  measure::VantageConfig vantage;
  vantage.baseline_tests_per_day = 12.0;
  vantage.user_tests_per_day = 4.0;
  for (const auto& unit : scenario.treated) {
    vantage.pop = unit.access_pop;
    platform.AddVantage(vantage);
  }
  for (auto donor : scenario.donors) {
    vantage.pop = donor;
    platform.AddVantage(vantage);
  }
  core::Rng rng(2025);
  platform.Run(options.horizon, rng);
  std::printf("campaign: %zu speed tests (%zu user-initiated)\n",
              platform.store().size(),
              platform.CountByIntent(measure::Intent::kUserInitiated));

  // Pick one unit, confirm the treatment onset from the traceroutes.
  const auto& unit = scenario.treated[1];  // 3741 / Johannesburg
  const auto onset = platform.store().FirstIxpCrossing(
      scenario.simulator->topology(), unit.name, scenario.napafrica_jnb);
  std::printf("%s first seen crossing NAPAfrica-JNB at %s\n",
              unit.name.c_str(),
              onset.has_value() ? onset->ToText().c_str() : "(never)");

  // Panel + robust synthetic control + placebo inference.
  measure::PanelOptions panel_options;
  panel_options.bucket = core::SimTime::FromHours(6);
  panel_options.periods = 4 * 28;
  const auto panel = measure::BuildRttPanel(platform.store(), panel_options);
  auto input = measure::MakeSyntheticControlInput(
      panel, unit.name, scenario.donor_names, options.treatment_time);
  if (!input.ok()) {
    std::printf("panel error: %s\n", input.error().ToText().c_str());
    return 1;
  }
  auto result = causal::RunPlaceboAnalysis(input.value());
  if (!result.ok()) {
    std::printf("estimation error: %s\n", result.error().ToText().c_str());
    return 1;
  }
  const auto& fit = result.value().treated_fit;
  std::printf("\nrobust synthetic control for %s:\n", unit.name.c_str());
  std::printf("  RTT delta:  %+.2f ms   (paper's Table 1 row: %+.2f ms)\n",
              fit.average_effect, unit.paper_delta_ms);
  std::printf("  RMSE ratio: %.1f\n", fit.rmse_ratio);
  std::printf("  placebo p:  %.3f over %zu donor placebos\n",
              result.value().p_value, result.value().placebo_ratios.size());
  std::printf("  active donors: ");
  for (const auto& donor : fit.ActiveDonors(0.05)) {
    std::printf("%s ", donor.c_str());
  }
  std::printf("\n\npaper's conclusion: the effect is neither consistent "
              "nor robust — a small delta with a high p-value is the "
              "expected outcome here.\n");
  return 0;
}
