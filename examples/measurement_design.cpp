// Measurement design with the causal protocol (paper §4):
//
//   1. specify the causal graph BEFORE collecting data;
//   2. check identifiability — discover that the planned passive design
//      cannot answer the question;
//   3. find an instrument / design an intervention instead;
//   4. run the intervention through the exogenous-intervention API
//      (PEERING-style) with an audited justification, and tag the
//      resulting measurements with their trigger context.
#include <cstdio>

#include "causal/dag_parser.h"
#include "causal/identification.h"
#include "core/rng.h"
#include "measure/intervention.h"
#include "measure/platform.h"
#include "stats/descriptive.h"

using namespace sisyphus;
using core::Asn;

int main() {
  // ---- 1. The question and the graph --------------------------------
  // "Does routing via upstream B (instead of A) hurt latency?" with
  // unobserved peering-policy pressure driving both the choice and the
  // load on each upstream.
  auto dag = causal::ParseDag(
      "Policy [latent]; Policy -> ViaB; Policy -> LatencyMs;"
      "ViaB -> LatencyMs");
  std::printf("planned study DAG: %s\n\n", dag.value().ToText().c_str());

  // ---- 2. Identifiability check on the PASSIVE design ----------------
  auto passive = causal::Identify(dag.value(), "ViaB", "LatencyMs");
  std::printf("passive (observational) design: %s\n%s\n\n",
              causal::ToString(passive.value().strategy),
              passive.value().explanation.c_str());

  // ---- 3. Redesign: add a controllable exogenous knob ----------------
  // The platform can poison announcements (PEERING-style), which moves
  // the route and touches latency only through it.
  auto dag2 = causal::ParseDag(
      "Policy [latent]; Policy -> ViaB; Policy -> LatencyMs;"
      "ViaB -> LatencyMs; PoisonKnob -> ViaB");
  auto active = causal::Identify(dag2.value(), "ViaB", "LatencyMs");
  std::printf("with an intervention knob: %s\n%s\n\n",
              causal::ToString(active.value().strategy),
              active.value().explanation.c_str());

  // ---- 4. Execute on the simulated network ---------------------------
  netsim::Topology topo;
  const auto city = topo.cities().Add({"X", {0, 0}, 2.0});
  const auto user = topo.AddPop(Asn{100}, city, netsim::AsRole::kAccess).value();
  const auto a = topo.AddPop(Asn{20}, city, netsim::AsRole::kTransit).value();
  const auto b = topo.AddPop(Asn{30}, city, netsim::AsRole::kTransit).value();
  const auto server =
      topo.AddPop(Asn{40}, city, netsim::AsRole::kMeasurement).value();
  (void)topo.AddLink(user, a, netsim::Relationship::kCustomerToProvider,
                     std::nullopt, 0.5);
  (void)topo.AddLink(user, b, netsim::Relationship::kCustomerToProvider,
                     std::nullopt, 1.8);
  (void)topo.AddLink(server, a, netsim::Relationship::kCustomerToProvider,
                     std::nullopt, 0.3);
  (void)topo.AddLink(server, b, netsim::Relationship::kCustomerToProvider,
                     std::nullopt, 0.3);
  netsim::NetworkSimulator sim(std::move(topo));

  measure::InterventionApi api(sim);
  core::Rng rng(3);

  auto measure_phase = [&](const char* label, int tests,
                           measure::Intent intent) {
    std::vector<double> rtts;
    for (int i = 0; i < tests; ++i) {
      auto record = measure::RunSpeedTest(sim, user, server, intent, rng);
      if (record.ok()) rtts.push_back(record.value().rtt_ms);
    }
    std::printf("  %-22s median RTT %.2f ms over %zu tests\n", label,
                stats::Median(rtts), rtts.size());
    return stats::Median(rtts);
  };

  std::printf("controlled experiment (all measurements tagged "
              "event_triggered):\n");
  const double on_a =
      measure_phase("phase 1: via A", 150, measure::Intent::kEventTriggered);
  (void)api.PoisonAsns(server, {Asn{20}},
                       "experiment EXP-042: exclusion restriction argued in "
                       "design doc — knob moves only this route");
  const double on_b =
      measure_phase("phase 2: via B", 150, measure::Intent::kEventTriggered);
  (void)api.ClearPoison(server, "EXP-042 complete");

  std::printf("\ncausal effect of routing via B: %+.2f ms\n", on_b - on_a);
  std::printf("audit trail (%zu entries):\n", api.audit_log().size());
  for (const auto& entry : api.audit_log()) {
    std::printf("  [%s] %s — %s\n", entry.time.ToText().c_str(),
                entry.action.c_str(), entry.justification.c_str());
  }
  return 0;
}
