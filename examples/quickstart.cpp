// Quickstart: the sisyphus workflow in one file.
//
//   1. write down your causal assumptions as a DAG (the paper's §4
//      "causal protocol" starts here);
//   2. ask the identification engine HOW the effect can be estimated;
//   3. simulate (or load) data and run the prescribed estimator;
//   4. compare against the naive answer to see what the adjustment fixed.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "causal/dag_parser.h"
#include "causal/estimators.h"
#include "causal/identification.h"
#include "causal/implications.h"
#include "causal/refutation.h"
#include "causal/scm.h"
#include "core/rng.h"
#include "stats/logistic.h"

using namespace sisyphus;

int main() {
  // 1. Assumptions. Congestion drives both route shifts and latency: the
  //    classic confounded triangle from the paper's running example.
  auto dag = causal::ParseDag(
      "Congestion -> RouteShift;"
      "Congestion -> LatencyMs;"
      "RouteShift -> LatencyMs");
  if (!dag.ok()) {
    std::printf("parse error: %s\n", dag.error().ToText().c_str());
    return 1;
  }

  // 2. Identification: how can E[LatencyMs | do(RouteShift)] be computed?
  auto how = causal::Identify(dag.value(), "RouteShift", "LatencyMs");
  std::printf("strategy: %s\n%s\n\n", causal::ToString(how.value().strategy),
              how.value().explanation.c_str());

  // 3. Data. Here we simulate from a ground-truth SCM so the right answer
  //    is known (+2 ms); with real measurements you would load a Dataset
  //    instead. RouteShift is binarized through a custom mechanism.
  causal::Scm scm(dag.value());
  (void)scm.SetLinear("Congestion", 0.0, {}, 1.0);
  causal::CustomEquation shift;
  shift.mechanism = [](std::span<const double> parents) {
    // P(shift) rises with congestion; thresholded latent index.
    return parents[0] > 0.6 ? 1.0 : 0.0;
  };
  (void)scm.SetCustom(dag.value().Node("RouteShift").value(), shift);
  (void)scm.SetLinear("LatencyMs", 30.0,
                      {{"Congestion", 3.0}, {"RouteShift", 2.0}}, 0.7);

  core::Rng rng(1);
  const causal::Dataset data = scm.Sample(50000, rng);

  // 4. Estimate: naive vs backdoor-adjusted.
  auto naive = causal::NaiveDifference(data, "RouteShift", "LatencyMs");
  auto adjusted = causal::RegressionAdjustment(data, "RouteShift",
                                               "LatencyMs", {"Congestion"});
  std::printf("true effect of the route shift:  +2.00 ms\n");
  std::printf("naive difference in means:       %+.2f ms  <- confounded\n",
              naive.value().effect);
  std::printf("backdoor-adjusted estimate:      %+.2f ms  (95%% CI "
              "[%+.2f, %+.2f])\n\n",
              adjusted.value().effect, adjusted.value().ci_lower(),
              adjusted.value().ci_upper());

  // 5. Validate the model (paper section 4: "validate assumptions"):
  //    (a) the DAG's testable implications against the data,
  //    (b) the refutation battery on the estimate itself.
  auto implications = causal::TestImpliedIndependencies(dag.value(), data);
  std::printf("testable implications: %zu checked, ",
              implications.value().size());
  std::size_t rejected = 0;
  for (const auto& result : implications.value()) {
    if (result.rejected) ++rejected;
  }
  std::printf("%zu rejected by the data\n", rejected);

  auto battery = causal::RunRefutationBattery(
      data, "RouteShift", "LatencyMs", {"Congestion"},
      causal::MakeRegressionAdjustmentEstimator(), rng);
  for (const auto& result : battery.value()) {
    std::printf("refuter %-22s %s\n", result.refuter.c_str(),
                result.passed ? "pass" : "FAIL");
  }

  // 6. For the paper/appendix: export the DAG as Graphviz.
  std::printf("\nGraphviz of the model (pipe into `dot -Tsvg`):\n%s",
              dag.value()
                  .ToDot(dag.value().Node("RouteShift").value(),
                         dag.value().Node("LatencyMs").value())
                  .c_str());
  return 0;
}
