// What can — and cannot — be inferred: partial identification and the
// dual-stack natural experiment.
//
// The paper ends §4 with: even when perfect isolation is unattainable, we
// should provide "a structured way to articulate what can, and cannot, be
// inferred from the data." Two tools here:
//
//   1. Manski bounds: with NO identification strategy, the data still
//      bound the effect of IXP-like peering on reaching a 'good QoE'
//      threshold — and the bounds honestly refuse to be a point.
//   2. The IPv4/IPv6 toggle as a within-user experiment: the two families
//      converge onto different AS paths (a real phenomenon this library's
//      simulator reproduces), so per-test random family assignment
//      measures a path contrast without any confounding story.
#include <cstdio>
#include <memory>

#include "causal/bounds.h"
#include "core/rng.h"
#include "measure/speedtest.h"
#include "netsim/simulator.h"
#include "stats/descriptive.h"
#include "stats/logistic.h"

using namespace sisyphus;
using core::Asn;

int main() {
  core::Rng rng(11);

  // ---- Part 1: bounds when nothing identifies the effect -------------
  // Observational cross-section: "is peered" vs "P(good QoE)", with a
  // hidden quality driver that selects better networks into peering.
  const std::size_t n = 50000;
  std::vector<double> peered(n), good_qoe(n);
  double true_ate = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double engineering_quality = rng.Gaussian();
    peered[i] =
        rng.Bernoulli(stats::Sigmoid(1.2 * engineering_quality)) ? 1.0 : 0.0;
    const double p1 = stats::Sigmoid(0.4 + 1.5 * engineering_quality);
    const double p0 = stats::Sigmoid(0.0 + 1.5 * engineering_quality);
    true_ate += p1 - p0;
    good_qoe[i] =
        rng.Bernoulli(peered[i] == 1.0 ? p1 : p0) ? 1.0 : 0.0;
  }
  true_ate /= static_cast<double>(n);
  causal::Dataset data;
  (void)data.AddColumn("Peered", std::move(peered));
  (void)data.AddColumn("GoodQoe", std::move(good_qoe));

  std::printf("Part 1 — effect of peering on P(good QoE), true ATE "
              "%+.3f, hidden confounding, no instrument:\n",
              true_ate);
  causal::BoundsOptions options;  // binary outcome in [0,1]
  auto worst = causal::ManskiBounds(data, "Peered", "GoodQoe", options);
  std::printf("  no assumptions:        [%+.3f, %+.3f]  (width %.2f — a "
              "point estimate would be dishonest)\n",
              worst.value().lower, worst.value().upper,
              worst.value().width());
  options.monotone_treatment_response = true;
  options.monotone_treatment_selection = true;
  auto tightened = causal::ManskiBounds(data, "Peered", "GoodQoe", options);
  std::printf("  + MTR and MTS:         [%+.3f, %+.3f]  (truth %+.3f "
              "inside: %s)\n\n",
              tightened.value().lower, tightened.value().upper, true_ate,
              tightened.value().Contains(true_ate) ? "yes" : "NO");

  // ---- Part 2: the dual-stack toggle ---------------------------------
  // v6 peering exists only via one upstream: toggling the family per
  // test randomizes the path.
  netsim::Topology topo;
  const auto city = topo.cities().Add({"X", {0, 0}, 2.0});
  const auto user = topo.AddPop(Asn{100}, city, netsim::AsRole::kAccess).value();
  const auto p1 = topo.AddPop(Asn{20}, city, netsim::AsRole::kTransit).value();
  const auto p2 = topo.AddPop(Asn{30}, city, netsim::AsRole::kTransit).value();
  const auto server =
      topo.AddPop(Asn{40}, city, netsim::AsRole::kMeasurement).value();
  const auto via1 =
      topo.AddLink(user, p1, netsim::Relationship::kCustomerToProvider,
                   std::nullopt, 0.5)
          .value();
  (void)topo.AddLink(user, p2, netsim::Relationship::kCustomerToProvider,
                     std::nullopt, 2.2);
  const auto p1s =
      topo.AddLink(server, p1, netsim::Relationship::kCustomerToProvider,
                   std::nullopt, 0.3)
          .value();
  (void)topo.AddLink(server, p2, netsim::Relationship::kCustomerToProvider,
                     std::nullopt, 0.3);
  // Upstream 20 never deployed IPv6.
  topo.MutableLink(via1).ipv6 = false;
  topo.MutableLink(p1s).ipv6 = false;
  auto sim = std::make_unique<netsim::NetworkSimulator>(std::move(topo));

  std::vector<double> v4_rtts, v6_rtts;
  for (int i = 0; i < 400; ++i) {
    const bool use_v6 = rng.Bernoulli(0.5);  // happy-eyeballs coin
    auto record = measure::RunSpeedTest(
        *sim, user, server, measure::Intent::kBaseline, rng, {},
        use_v6 ? netsim::AddressFamily::kIpv6
               : netsim::AddressFamily::kIpv4);
    if (!record.ok()) continue;
    (use_v6 ? v6_rtts : v4_rtts).push_back(record.value().rtt_ms);
  }
  std::printf("Part 2 — dual-stack toggle as a natural experiment:\n");
  std::printf("  IPv4 path (via AS20):  median RTT %.2f ms over %zu tests\n",
              stats::Median(v4_rtts), v4_rtts.size());
  std::printf("  IPv6 path (via AS30):  median RTT %.2f ms over %zu tests\n",
              stats::Median(v6_rtts), v6_rtts.size());
  std::printf("  causal path contrast:  %+.2f ms — identified by the "
              "random per-test family assignment alone.\n",
              stats::Median(v6_rtts) - stats::Median(v4_rtts));
  return 0;
}
