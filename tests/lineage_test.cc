// Tests for the measurement lineage ledger: IdRunSet encoding, the
// conservation invariant (every emitted record lands in exactly one
// terminal state, and the waterfall reconciles with the store and the
// platform) under every fault scenario, and the determinism headline —
// the lineage artifact is byte-identical at 1 and 8 lanes.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "causal/placebo.h"
#include "causal/robust_synthetic_control.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "measure/faults.h"
#include "measure/panel.h"
#include "measure/platform.h"
#include "netsim/scenario_za.h"
#include "obs/lineage.h"

namespace sisyphus {
namespace {

using core::SimTime;
using core::ThreadPool;
using measure::FaultPlan;
using obs::IdRunSet;
using obs::Lineage;
using obs::LineageWaterfall;

TEST(IdRunSetTest, RoundTripsSortedIds) {
  const std::vector<std::uint64_t> ids = {1, 2, 3, 7, 8, 20};
  const IdRunSet set = IdRunSet::FromSorted(ids);
  EXPECT_EQ(set.size(), ids.size());
  EXPECT_EQ(set.Expand(), ids);
  // Three runs -> six encoded values ([gap, len] pairs).
  EXPECT_EQ(set.encoded().size(), 6u);
}

TEST(IdRunSetTest, CollapsesDuplicates) {
  const IdRunSet set = IdRunSet::FromSorted({5, 5, 6, 6, 6, 7});
  EXPECT_EQ(set.Expand(), (std::vector<std::uint64_t>{5, 6, 7}));
  EXPECT_EQ(set.encoded(), (std::vector<std::uint64_t>{5, 3}));
}

TEST(IdRunSetTest, EmptyAndDigest) {
  const IdRunSet empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  const IdRunSet a = IdRunSet::FromSorted({1, 2, 3});
  const IdRunSet b = IdRunSet::FromSorted({1, 2, 3});
  const IdRunSet c = IdRunSet::FromSorted({1, 2, 4});
  // The digest is a pure function of the member set.
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

/// RAII: turns the lineage ledger on for one test, off afterwards so the
/// remaining tests in this binary see the default-disabled fast path.
struct ScopedLineage {
  ScopedLineage() {
    Lineage::Enable(true);
    Lineage::Global().Reset();
  }
  ~ScopedLineage() { Lineage::Enable(false); }
};

/// Runs a small ZA campaign under `plan` (nullptr = no faults), builds the
/// panel, and fits the robust estimator for the first treated unit, which
/// exercises the full emit -> panel -> estimate lineage path.
struct CampaignOutcome {
  std::size_t archived = 0;
  std::size_t quarantined = 0;
  std::size_t probe_failures = 0;
};

CampaignOutcome RunLineageCampaign(const FaultPlan* plan) {
  netsim::ScenarioZaOptions options;
  options.donor_units = 6;
  options.treatment_time = SimTime::FromDays(3);
  options.horizon = SimTime::FromDays(6);
  auto scenario = netsim::BuildScenarioZa(options);
  measure::PlatformOptions platform_options;
  platform_options.server = scenario.content_jnb;
  measure::Platform platform(*scenario.simulator, platform_options);
  measure::FaultInjector injector(plan != nullptr ? *plan : FaultPlan{});
  if (plan != nullptr) platform.SetFaultInjector(&injector);
  measure::VantageConfig vantage;
  vantage.baseline_tests_per_day = 10.0;
  vantage.user_tests_per_day = 3.0;
  for (const auto& unit : scenario.treated) {
    vantage.pop = unit.access_pop;
    platform.AddVantage(vantage);
  }
  for (auto donor : scenario.donors) {
    vantage.pop = donor;
    platform.AddVantage(vantage);
  }
  core::Rng rng(29);
  platform.Run(options.horizon, rng);

  measure::PanelOptions panel_options;
  panel_options.bucket = SimTime::FromHours(6);
  panel_options.periods = 4 * 6;
  panel_options.max_missing_fraction = 0.9;
  const auto panel = measure::BuildRttPanel(platform.store(), panel_options);
  auto input = measure::MakeSyntheticControlInput(
      panel, scenario.treated[0].name, scenario.donor_names,
      options.treatment_time);
  if (input.ok()) {
    (void)causal::FitRobustSyntheticControl(input.value());
  }

  CampaignOutcome outcome;
  outcome.archived = platform.store().records().size();
  outcome.quarantined = platform.store().quarantine().size();
  outcome.probe_failures = platform.failures().size();
  return outcome;
}

/// The conservation invariant, checked against ground truth from the
/// platform itself: terminal stages partition the emitted records, and
/// copy counts reconcile with what the store actually archived and
/// quarantined.
void ExpectConservation(const CampaignOutcome& outcome) {
  const LineageWaterfall totals = Lineage::Global().Totals();
  EXPECT_EQ(totals.untracked, 0u);
  EXPECT_EQ(totals.probes_failed, outcome.probe_failures);
  EXPECT_EQ(totals.probes_attempted, totals.emitted + totals.probes_failed);
  std::uint64_t terminal_sum = 0;
  for (std::uint64_t count : totals.terminal) terminal_sum += count;
  EXPECT_EQ(terminal_sum, totals.emitted);
  EXPECT_EQ(totals.archived_copies, outcome.archived);
  EXPECT_EQ(totals.quarantined_copies, outcome.quarantined);
  EXPECT_EQ(totals.delivered, totals.archived_copies + totals.quarantined_copies);
  EXPECT_GT(totals.emitted, 0u);
}

class LineageConservationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!Lineage::enabled()) {
      // Enable() is a no-op under SISYPHUS_OBS=OFF; nothing to test there.
      Lineage::Enable(true);
      if (!Lineage::enabled()) GTEST_SKIP() << "lineage compiled out";
      Lineage::Enable(false);
    }
  }
};

TEST_F(LineageConservationTest, CleanCampaign) {
  ScopedLineage scoped;
  Lineage::Global().BeginRun("clean");
  ExpectConservation(RunLineageCampaign(nullptr));
}

TEST_F(LineageConservationTest, ProbeLoss) {
  FaultPlan plan;
  plan.seed = 99;
  plan.probe_loss_probability = 0.3;
  ScopedLineage scoped;
  Lineage::Global().BeginRun("probe_loss");
  const auto outcome = RunLineageCampaign(&plan);
  ExpectConservation(outcome);
  EXPECT_GT(outcome.probe_failures, 0u);
}

TEST_F(LineageConservationTest, MnarLoss) {
  FaultPlan plan;
  plan.seed = 5;
  plan.probe_loss_probability = 0.05;
  plan.mnar_loss_gain = 20.0;
  ScopedLineage scoped;
  Lineage::Global().BeginRun("mnar");
  ExpectConservation(RunLineageCampaign(&plan));
}

TEST_F(LineageConservationTest, Outages) {
  FaultPlan plan;
  plan.seed = 7;
  plan.vantage_outages.push_back(
      {0, {{SimTime::FromHours(10), SimTime::FromHours(30)}}});
  plan.collector_outages.push_back(
      {SimTime::FromHours(50), SimTime::FromHours(60)});
  ScopedLineage scoped;
  Lineage::Global().BeginRun("outages");
  ExpectConservation(RunLineageCampaign(&plan));
}

TEST_F(LineageConservationTest, Truncation) {
  FaultPlan plan;
  plan.seed = 11;
  plan.traceroute_truncation_probability = 1.0;
  plan.truncation_min_hops = 2;
  ScopedLineage scoped;
  Lineage::Global().BeginRun("truncation");
  ExpectConservation(RunLineageCampaign(&plan));
}

TEST_F(LineageConservationTest, CorruptionFillsQuarantine) {
  FaultPlan plan;
  plan.seed = 13;
  plan.corruption_probability = 1.0;
  ScopedLineage scoped;
  Lineage::Global().BeginRun("corruption");
  const auto outcome = RunLineageCampaign(&plan);
  ExpectConservation(outcome);
  EXPECT_GT(outcome.quarantined, 0u);
  // Every record was corrupted in flight, so every record carries the bit.
  const LineageWaterfall totals = Lineage::Global().Totals();
  EXPECT_EQ(totals.terminal[static_cast<std::size_t>(
                obs::LineageStage::kQuarantined)],
            totals.emitted);
}

TEST_F(LineageConservationTest, ClockSkew) {
  FaultPlan plan;
  plan.seed = 17;
  plan.max_clock_skew = SimTime(5);
  ScopedLineage scoped;
  Lineage::Global().BeginRun("skew");
  ExpectConservation(RunLineageCampaign(&plan));
}

TEST_F(LineageConservationTest, DuplicationDeliversExtraCopies) {
  FaultPlan plan;
  plan.seed = 19;
  plan.duplicate_probability = 0.5;
  ScopedLineage scoped;
  Lineage::Global().BeginRun("duplication");
  ExpectConservation(RunLineageCampaign(&plan));
  const LineageWaterfall totals = Lineage::Global().Totals();
  // ~half the records were delivered twice; copies exceed distinct ids.
  EXPECT_GT(totals.delivered, totals.emitted);
}

TEST_F(LineageConservationTest, CombinedPlan) {
  FaultPlan plan;
  plan.seed = 23;
  plan.probe_loss_probability = 0.1;
  plan.mnar_loss_gain = 5.0;
  plan.traceroute_truncation_probability = 0.2;
  plan.truncation_min_hops = 2;
  plan.corruption_probability = 0.05;
  plan.duplicate_probability = 0.1;
  plan.max_clock_skew = SimTime(3);
  plan.collector_outages.push_back(
      {SimTime::FromHours(40), SimTime::FromHours(44)});
  ScopedLineage scoped;
  Lineage::Global().BeginRun("combined");
  ExpectConservation(RunLineageCampaign(&plan));
}

TEST_F(LineageConservationTest, ArtifactByteIdenticalAt1And8Lanes) {
  FaultPlan plan;
  plan.seed = 31;
  plan.probe_loss_probability = 0.1;
  plan.duplicate_probability = 0.1;
  plan.corruption_probability = 0.02;
  const auto run = [&](std::size_t lanes) {
    ThreadPool::SetGlobalThreadCount(lanes);
    ScopedLineage scoped;
    Lineage::Global().BeginRun("identity");
    RunLineageCampaign(&plan);
    std::string artifact = Lineage::Global().ToJson(/*indent=*/1);
    ThreadPool::SetGlobalThreadCount(0);
    return artifact;
  };
  const std::string serial = run(1);
  const std::string parallel = run(8);
  // The whole artifact — per-record stages, cell id-sets, digests,
  // estimate compositions — is byte-identical regardless of lane count.
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"schema\": \"sisyphus.lineage/1\""),
            std::string::npos);
}

TEST_F(LineageConservationTest, PlaceboAnalysisMarksRotatedDonors) {
  ScopedLineage scoped;
  Lineage::Global().BeginRun("placebo");
  netsim::ScenarioZaOptions options;
  options.donor_units = 8;
  options.treatment_time = SimTime::FromDays(3);
  options.horizon = SimTime::FromDays(6);
  auto scenario = netsim::BuildScenarioZa(options);
  measure::PlatformOptions platform_options;
  platform_options.server = scenario.content_jnb;
  measure::Platform platform(*scenario.simulator, platform_options);
  measure::VantageConfig vantage;
  vantage.baseline_tests_per_day = 10.0;
  for (const auto& unit : scenario.treated) {
    vantage.pop = unit.access_pop;
    platform.AddVantage(vantage);
  }
  for (auto donor : scenario.donors) {
    vantage.pop = donor;
    platform.AddVantage(vantage);
  }
  core::Rng rng(17);
  platform.Run(options.horizon, rng);
  measure::PanelOptions panel_options;
  panel_options.bucket = SimTime::FromHours(6);
  panel_options.periods = 4 * 6;
  const auto panel = measure::BuildRttPanel(platform.store(), panel_options);
  auto input = measure::MakeSyntheticControlInput(
      panel, scenario.treated[0].name, scenario.donor_names,
      options.treatment_time);
  ASSERT_TRUE(input.ok());
  ASSERT_TRUE(causal::RunPlaceboAnalysis(input.value()).ok());
  // Placebo rotations fit each donor as a pseudo-treated unit, but those
  // fits must not promote donors to the treated terminal stage: only the
  // real treated unit's records end as kTreated.
  const LineageWaterfall totals = Lineage::Global().Totals();
  EXPECT_EQ(totals.untracked, 0u);
  EXPECT_GT(totals.terminal[static_cast<std::size_t>(
                obs::LineageStage::kTreated)],
            0u);
  EXPECT_GT(totals.terminal[static_cast<std::size_t>(
                obs::LineageStage::kDonor)],
            0u);
}

}  // namespace
}  // namespace sisyphus
