// Tests for the DAG DSL parser.
#include <gtest/gtest.h>

#include "causal/dag_parser.h"

namespace sisyphus::causal {
namespace {

TEST(DagParserTest, SimpleEdges) {
  auto dag = ParseDag("C -> R; C -> L; R -> L");
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag.value().NodeCount(), 3u);
  EXPECT_EQ(dag.value().EdgeCount(), 3u);
}

TEST(DagParserTest, ChainSyntax) {
  auto dag = ParseDag("A -> B -> C -> D");
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag.value().EdgeCount(), 3u);
  EXPECT_TRUE(dag.value().HasEdge(dag.value().Node("B").value(),
                                  dag.value().Node("C").value()));
}

TEST(DagParserTest, NewlinesAsSeparators) {
  auto dag = ParseDag("A -> B\nB -> C\n");
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag.value().EdgeCount(), 2u);
}

TEST(DagParserTest, CommentsIgnored) {
  auto dag = ParseDag("# routing example\nA -> B # effect\n# done");
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag.value().EdgeCount(), 1u);
}

TEST(DagParserTest, LatentTag) {
  auto dag = ParseDag("Policy [latent]; Policy -> Route");
  ASSERT_TRUE(dag.ok());
  EXPECT_FALSE(dag.value().IsObserved(dag.value().Node("Policy").value()));
}

TEST(DagParserTest, BidirectedCreatesLatent) {
  auto dag = ParseDag("R <-> L");
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag.value().NodeCount(), 3u);
  ASSERT_TRUE(dag.value().Node("U(R,L)").ok());
  EXPECT_FALSE(dag.value().IsObserved(dag.value().Node("U(R,L)").value()));
}

TEST(DagParserTest, BareDeclaration) {
  auto dag = ParseDag("Lonely; A -> B");
  ASSERT_TRUE(dag.ok());
  EXPECT_TRUE(dag.value().Node("Lonely").ok());
  EXPECT_EQ(dag.value().NodeCount(), 3u);
}

TEST(DagParserTest, DottedAndUnderscoreNames) {
  auto dag = ParseDag("as3741.jnb -> m_lab_server");
  ASSERT_TRUE(dag.ok());
  EXPECT_TRUE(dag.value().Node("as3741.jnb").ok());
}

TEST(DagParserTest, EmptyInputGivesEmptyDag) {
  auto dag = ParseDag("  \n ; ; \n");
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag.value().NodeCount(), 0u);
}

TEST(DagParserTest, CycleReportedAsInvalidArgument) {
  auto dag = ParseDag("A -> B; B -> A");
  ASSERT_FALSE(dag.ok());
  EXPECT_EQ(dag.error().code(), core::ErrorCode::kInvalidArgument);
}

TEST(DagParserTest, DanglingArrowIsParseError) {
  auto dag = ParseDag("A ->");
  ASSERT_FALSE(dag.ok());
  EXPECT_EQ(dag.error().code(), core::ErrorCode::kParseError);
  EXPECT_NE(dag.error().message().find("offset"), std::string::npos);
}

TEST(DagParserTest, UnexpectedCharacterIsParseError) {
  auto dag = ParseDag("A -> B @ C");
  ASSERT_FALSE(dag.ok());
  EXPECT_EQ(dag.error().code(), core::ErrorCode::kParseError);
}

TEST(DagParserTest, MissingSeparatorIsParseError) {
  auto dag = ParseDag("A -> B C -> D");
  ASSERT_FALSE(dag.ok());
  EXPECT_EQ(dag.error().code(), core::ErrorCode::kParseError);
}

TEST(DagParserTest, RunningExampleRoundTrips) {
  // The paper's running example with a latent policy driver.
  const char* text =
      "Congestion -> Route; Congestion -> Latency; Route -> Latency;"
      "Policy [latent]; Policy -> Route";
  auto dag = ParseDag(text);
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag.value().ObservedNodes().size(), 3u);
  // Re-parse the canonical text form: same structure.
  auto round = ParseDag(dag.value().ToText());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value().NodeCount(), dag.value().NodeCount());
  EXPECT_EQ(round.value().EdgeCount(), dag.value().EdgeCount());
}

}  // namespace
}  // namespace sisyphus::causal
