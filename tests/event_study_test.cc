// Tests for the event-study view of synthetic control.
#include <gtest/gtest.h>

#include <cmath>

#include "causal/event_study.h"
#include "core/rng.h"

namespace sisyphus::causal {
namespace {

SyntheticControlInput MakeInput(std::size_t periods, std::size_t pre,
                                std::size_t donors, double effect,
                                double noise_sd, core::Rng& rng) {
  SyntheticControlInput input;
  input.pre_periods = pre;
  input.donors = stats::Matrix(periods, donors);
  std::vector<double> loading(donors);
  for (std::size_t j = 0; j < donors; ++j) loading[j] = 0.5 + rng.NextDouble();
  for (std::size_t t = 0; t < periods; ++t) {
    const double factor = std::sin(2.0 * M_PI * static_cast<double>(t) / 10.0);
    for (std::size_t j = 0; j < donors; ++j) {
      input.donors(t, j) =
          20.0 + 5.0 * loading[j] * factor + noise_sd * rng.Gaussian();
    }
  }
  input.treated.resize(periods);
  for (std::size_t t = 0; t < periods; ++t) {
    const double factor = std::sin(2.0 * M_PI * static_cast<double>(t) / 10.0);
    input.treated[t] = 20.0 + 5.0 * 0.9 * factor + noise_sd * rng.Gaussian() +
                       (t >= pre ? effect : 0.0);
  }
  return input;
}

TEST(EventStudyTest, PointsCoverAllPeriodsWithRelativeIndex) {
  core::Rng rng(1);
  const auto input = MakeInput(60, 40, 12, 5.0, 0.3, rng);
  auto study = RunEventStudy(input);
  ASSERT_TRUE(study.ok());
  ASSERT_EQ(study.value().points.size(), 60u);
  EXPECT_EQ(study.value().points.front().relative_period, -40);
  EXPECT_EQ(study.value().points[40].relative_period, 0);
  EXPECT_EQ(study.value().points.back().relative_period, 19);
}

TEST(EventStudyTest, RealEffectLeavesBandOnlyPostTreatment) {
  core::Rng rng(2);
  const auto input = MakeInput(80, 50, 16, 8.0, 0.4, rng);
  auto study = RunEventStudy(input);
  ASSERT_TRUE(study.ok());
  EXPECT_GT(study.value().post_exceedance, 0.8);
  EXPECT_LT(study.value().pre_exceedance, 0.35);
  // Post-treatment gaps hover near the injected effect.
  double post_gap_sum = 0.0;
  std::size_t post_count = 0;
  for (const auto& point : study.value().points) {
    if (point.relative_period >= 0) {
      post_gap_sum += point.gap;
      ++post_count;
    }
  }
  EXPECT_NEAR(post_gap_sum / static_cast<double>(post_count), 8.0, 1.5);
}

TEST(EventStudyTest, NullEffectStaysMostlyInsideBand) {
  core::Rng rng(3);
  const auto input = MakeInput(80, 50, 16, 0.0, 0.4, rng);
  auto study = RunEventStudy(input);
  ASSERT_TRUE(study.ok());
  EXPECT_LT(study.value().post_exceedance, 0.4);
}

TEST(EventStudyTest, BandsAreOrdered) {
  core::Rng rng(4);
  const auto input = MakeInput(40, 25, 10, 2.0, 0.5, rng);
  auto study = RunEventStudy(input);
  ASSERT_TRUE(study.ok());
  for (const auto& point : study.value().points) {
    EXPECT_LE(point.band_low, point.band_high);
    EXPECT_EQ(point.outside_band,
              point.gap < point.band_low || point.gap > point.band_high);
  }
}

TEST(EventStudyTest, TooFewDonorsRejected) {
  core::Rng rng(5);
  auto tiny = MakeInput(40, 25, 1, 2.0, 0.5, rng);
  EXPECT_FALSE(RunEventStudy(tiny).ok());
}

TEST(EventStudyTest, BadQuantilesRejected) {
  core::Rng rng(6);
  const auto input = MakeInput(40, 25, 10, 2.0, 0.5, rng);
  EventStudyOptions options;
  options.band_lower_quantile = 0.9;
  options.band_upper_quantile = 0.1;
  auto study = RunEventStudy(input, options);
  ASSERT_FALSE(study.ok());
  EXPECT_EQ(study.error().code(), core::ErrorCode::kInvalidArgument);
}

TEST(EventStudyTest, ClassicalMethodSupported) {
  core::Rng rng(7);
  const auto input = MakeInput(60, 40, 12, 6.0, 0.4, rng);
  EventStudyOptions options;
  options.placebo.method = SyntheticControlMethod::kClassical;
  auto study = RunEventStudy(input, options);
  ASSERT_TRUE(study.ok());
  EXPECT_GT(study.value().post_exceedance, 0.5);
}

}  // namespace
}  // namespace sisyphus::causal
