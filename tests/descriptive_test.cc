// Tests for descriptive statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.h"

namespace sisyphus::stats {
namespace {

TEST(DescriptiveTest, MeanVarianceStdDev) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_NEAR(Variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(DescriptiveTest, EmptyMeanThrows) {
  const std::vector<double> xs;
  EXPECT_THROW(Mean(xs), std::logic_error);
}

TEST(DescriptiveTest, QuantileInterpolates) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0 / 3.0), 2.0);
}

TEST(DescriptiveTest, QuantileUnsortedInput) {
  const std::vector<double> xs{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(Median(xs), 2.5);
}

TEST(DescriptiveTest, QuantileSingleton) {
  const std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.3), 42.0);
}

TEST(DescriptiveTest, MedianOddCount) {
  const std::vector<double> xs{5, 1, 9};
  EXPECT_DOUBLE_EQ(Median(xs), 5.0);
}

TEST(DescriptiveTest, MadRobustToOutlier) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> with_outlier{1, 2, 3, 4, 1000};
  // MAD barely moves; SD explodes.
  EXPECT_NEAR(MedianAbsoluteDeviation(xs),
              MedianAbsoluteDeviation(with_outlier), 0.01);
  EXPECT_GT(StdDev(with_outlier), 100.0 * StdDev(xs));
}

TEST(DescriptiveTest, MadMatchesSdUnderNormalityScale) {
  // For symmetric spread {-1, 0, 1} MAD = 1 * 1.4826.
  const std::vector<double> xs{-1, 0, 1};
  EXPECT_NEAR(MedianAbsoluteDeviation(xs), 1.4826, 1e-12);
}

TEST(DescriptiveTest, CovarianceAndCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs{8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, zs), -1.0, 1e-12);
  EXPECT_NEAR(Covariance(xs, ys), 2.0 * Variance(xs), 1e-12);
}

TEST(DescriptiveTest, CorrelationDegenerateThrows) {
  const std::vector<double> xs{1, 1, 1};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_THROW(PearsonCorrelation(xs, ys), std::logic_error);
}

TEST(DescriptiveTest, RmseAndMae) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{2, 2, 1};
  EXPECT_NEAR(Rmse(a, b), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_NEAR(MeanAbsoluteError(a, b), 1.0, 1e-12);
}

TEST(DescriptiveTest, RmseIdenticalSeriesIsZero) {
  const std::vector<double> a{1.5, -2, 0};
  EXPECT_DOUBLE_EQ(Rmse(a, a), 0.0);
}

TEST(DescriptiveTest, MinMax) {
  const std::vector<double> xs{3, -1, 7, 0};
  EXPECT_DOUBLE_EQ(Min(xs), -1.0);
  EXPECT_DOUBLE_EQ(Max(xs), 7.0);
}

TEST(DescriptiveTest, MovingAverageSmoothsAndPreservesLength) {
  const std::vector<double> xs{0, 10, 0, 10, 0};
  const auto smoothed = MovingAverage(xs, 3);
  ASSERT_EQ(smoothed.size(), xs.size());
  EXPECT_DOUBLE_EQ(smoothed[2], 20.0 / 3.0);
  // Edges use partial windows.
  EXPECT_DOUBLE_EQ(smoothed[0], 5.0);
}

TEST(DescriptiveTest, MovingAverageWindowOneIsIdentity) {
  const std::vector<double> xs{1, 2, 3};
  EXPECT_EQ(MovingAverage(xs, 1), xs);
}

TEST(DescriptiveTest, StandardizeHasZeroMeanUnitVariance) {
  const std::vector<double> xs{10, 20, 30, 40};
  const auto z = Standardize(xs);
  EXPECT_NEAR(Mean(z), 0.0, 1e-12);
  EXPECT_NEAR(Variance(z), 1.0, 1e-12);
}

}  // namespace
}  // namespace sisyphus::stats
