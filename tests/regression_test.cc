// Tests for OLS (coefficients, classical + HC1 robust SEs, R^2) and Ridge.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "stats/regression.h"

namespace sisyphus::stats {
namespace {

TEST(OlsTest, RecoversLineExactly) {
  const Matrix x{{0}, {1}, {2}, {3}};
  const Vector y{1, 3, 5, 7};  // y = 1 + 2x
  auto fit = Ols(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().coefficients[0], 1.0, 1e-10);
  EXPECT_NEAR(fit.value().coefficients[1], 2.0, 1e-10);
  EXPECT_NEAR(fit.value().r_squared, 1.0, 1e-12);
}

TEST(OlsTest, RecoversCoefficientsUnderNoise) {
  core::Rng rng(42);
  const std::size_t n = 5000;
  Matrix x(n, 2);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Gaussian();
    x(i, 1) = rng.Gaussian();
    y[i] = 0.5 - 1.5 * x(i, 0) + 3.0 * x(i, 1) + rng.Gaussian(0.0, 0.5);
  }
  auto fit = Ols(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().coefficients[0], 0.5, 0.05);
  EXPECT_NEAR(fit.value().coefficients[1], -1.5, 0.05);
  EXPECT_NEAR(fit.value().coefficients[2], 3.0, 0.05);
}

TEST(OlsTest, StandardErrorsCoverTruth) {
  // Repeat small regressions; the true slope should fall inside the 95% CI
  // roughly 95% of the time.
  core::Rng rng(7);
  int covered = 0;
  const int reps = 300;
  for (int rep = 0; rep < reps; ++rep) {
    const std::size_t n = 60;
    Matrix x(n, 1);
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
      x(i, 0) = rng.Gaussian();
      y[i] = 2.0 * x(i, 0) + rng.Gaussian();
    }
    auto fit = Ols(x, y);
    ASSERT_TRUE(fit.ok());
    const double slope = fit.value().coefficients[1];
    const double se = fit.value().standard_errors[1];
    if (std::abs(slope - 2.0) <= 1.96 * se) ++covered;
  }
  EXPECT_NEAR(covered / static_cast<double>(reps), 0.95, 0.05);
}

TEST(OlsTest, RobustSeLargerUnderHeteroskedasticity) {
  // Error variance grows with |x|: HC1 SEs should exceed classical ones
  // for the slope.
  core::Rng rng(9);
  const std::size_t n = 4000;
  Matrix x(n, 1);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Gaussian();
    y[i] = x(i, 0) + rng.Gaussian(0.0, 0.2 + 2.0 * std::abs(x(i, 0)));
  }
  auto fit = Ols(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(fit.value().robust_errors[1], fit.value().standard_errors[1]);
}

TEST(OlsTest, PValueSignificantSlopeInsignificantNoise) {
  core::Rng rng(11);
  const std::size_t n = 500;
  Matrix x(n, 2);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Gaussian();
    x(i, 1) = rng.Gaussian();  // pure noise regressor
    y[i] = 1.0 * x(i, 0) + rng.Gaussian();
  }
  auto fit = Ols(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit.value().PValue(1), 1e-6);
  EXPECT_GT(fit.value().PValue(2), 0.01);
}

TEST(OlsTest, PredictMatchesFitted) {
  const Matrix x{{0.0}, {1.0}, {2.0}, {3.0}};
  const Vector y{1, 3, 5, 7};
  auto fit = Ols(x, y);
  ASSERT_TRUE(fit.ok());
  const Vector row{2.0};
  EXPECT_NEAR(fit.value().Predict(row), 5.0, 1e-9);
}

TEST(OlsTest, NoInterceptOption) {
  const Matrix x{{1.0}, {2.0}, {3.0}, {4.0}};
  const Vector y{2, 4, 6, 8};
  OlsOptions options;
  options.add_intercept = false;
  auto fit = Ols(x, y, options);
  ASSERT_TRUE(fit.ok());
  ASSERT_EQ(fit.value().coefficients.size(), 1u);
  EXPECT_NEAR(fit.value().coefficients[0], 2.0, 1e-10);
}

TEST(OlsTest, TooFewObservationsRejected) {
  const Matrix x{{1.0}, {2.0}};
  const Vector y{1, 2};
  EXPECT_FALSE(Ols(x, y).ok());  // n == p with intercept
}

TEST(OlsTest, LengthMismatchRejected) {
  const Matrix x{{1.0}, {2.0}, {3.0}};
  const Vector y{1, 2};
  EXPECT_FALSE(Ols(x, y).ok());
}

TEST(OlsTest, CollinearDesignRejected) {
  Matrix x(10, 2);
  Vector y(10);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = static_cast<double>(i);
    x(i, 1) = 2.0 * static_cast<double>(i);  // collinear
    y[i] = static_cast<double>(i);
  }
  EXPECT_FALSE(Ols(x, y).ok());
}

TEST(OlsTest, AdjustedRSquaredBelowRSquared) {
  core::Rng rng(21);
  const std::size_t n = 50;
  Matrix x(n, 3);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 3; ++j) x(i, j) = rng.Gaussian();
    y[i] = x(i, 0) + rng.Gaussian();
  }
  auto fit = Ols(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit.value().adjusted_r_squared, fit.value().r_squared);
}

// ---- Ridge ------------------------------------------------------------------

TEST(RidgeTest, ZeroLambdaMatchesOls) {
  core::Rng rng(31);
  const std::size_t n = 200;
  Matrix x(n, 2);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Gaussian();
    x(i, 1) = rng.Gaussian();
    y[i] = 1.0 + 2.0 * x(i, 0) - 1.0 * x(i, 1) + rng.Gaussian(0.0, 0.1);
  }
  auto ols = Ols(x, y);
  auto ridge = Ridge(x, y, 0.0);
  ASSERT_TRUE(ols.ok());
  ASSERT_TRUE(ridge.ok());
  for (std::size_t j = 0; j < 3; ++j)
    EXPECT_NEAR(ridge.value()[j], ols.value().coefficients[j], 1e-6);
}

TEST(RidgeTest, ShrinksCoefficients) {
  core::Rng rng(33);
  const std::size_t n = 100;
  Matrix x(n, 1);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Gaussian();
    y[i] = 5.0 * x(i, 0) + rng.Gaussian(0.0, 0.1);
  }
  auto small = Ridge(x, y, 1.0);
  auto large = Ridge(x, y, 1000.0);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(std::abs(small.value()[1]), std::abs(large.value()[1]));
  EXPECT_LT(std::abs(large.value()[1]), 5.0);
}

TEST(RidgeTest, HandlesCollinearDesign) {
  // Where OLS fails, ridge regularizes through.
  Matrix x(10, 2);
  Vector y(10);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = static_cast<double>(i);
    x(i, 1) = 2.0 * static_cast<double>(i);
    y[i] = 3.0 * static_cast<double>(i);
  }
  auto fit = Ridge(x, y, 0.1);
  ASSERT_TRUE(fit.ok());
  // Combined effect ~ 3 split across the two collinear columns.
  EXPECT_NEAR(fit.value()[1] + 2.0 * fit.value()[2], 3.0, 0.1);
}

TEST(RidgeTest, NegativeLambdaThrows) {
  const Matrix x{{1.0}, {2.0}, {3.0}};
  const Vector y{1, 2, 3};
  EXPECT_THROW(Ridge(x, y, -1.0), std::logic_error);
}

}  // namespace
}  // namespace sisyphus::stats
