// Tests for classical and robust synthetic control: both must recover a
// known counterfactual when the treated unit is a combination of donors.
#include <gtest/gtest.h>

#include <cmath>

#include "causal/robust_synthetic_control.h"
#include "causal/synthetic_control.h"
#include "core/rng.h"

namespace sisyphus::causal {
namespace {

/// Panel where the treated unit is exactly 0.6*donor0 + 0.4*donor1 before
/// treatment, with `effect` added to post periods. Donor factors are
/// smooth trends + diurnal-ish cycles, like RTT series.
struct SyntheticPanel {
  SyntheticControlInput input;
  double true_effect;
};

SyntheticPanel MakePanel(std::size_t periods, std::size_t pre,
                         double effect, double noise_sd, core::Rng& rng,
                         std::size_t extra_donors = 2) {
  SyntheticPanel out;
  out.true_effect = effect;
  const std::size_t donors = 2 + extra_donors;
  stats::Matrix donor_matrix(periods, donors);
  for (std::size_t t = 0; t < periods; ++t) {
    const double cycle = std::sin(2.0 * M_PI * static_cast<double>(t) / 8.0);
    donor_matrix(t, 0) = 20.0 + 3.0 * cycle + noise_sd * rng.Gaussian();
    donor_matrix(t, 1) =
        30.0 + 0.05 * static_cast<double>(t) + noise_sd * rng.Gaussian();
    for (std::size_t j = 2; j < donors; ++j) {
      donor_matrix(t, j) = 15.0 + 2.0 * std::cos(0.3 * static_cast<double>(t) +
                                                 static_cast<double>(j)) +
                           noise_sd * rng.Gaussian();
    }
  }
  out.input.donors = donor_matrix;
  out.input.pre_periods = pre;
  out.input.treated.resize(periods);
  for (std::size_t t = 0; t < periods; ++t) {
    out.input.treated[t] =
        0.6 * donor_matrix(t, 0) + 0.4 * donor_matrix(t, 1) +
        noise_sd * rng.Gaussian() + (t >= pre ? effect : 0.0);
  }
  for (std::size_t j = 0; j < donors; ++j) {
    out.input.donor_names.push_back("donor" + std::to_string(j));
  }
  return out;
}

// ---- Input validation ---------------------------------------------------------

TEST(SyntheticControlInputTest, ValidationCatchesShapeErrors) {
  SyntheticControlInput input;
  input.treated = {1, 2, 3};
  input.donors = stats::Matrix(4, 2);  // wrong period count
  input.pre_periods = 2;
  EXPECT_FALSE(input.Validate().ok());

  input.donors = stats::Matrix(3, 0);  // empty pool
  EXPECT_FALSE(input.Validate().ok());

  input.donors = stats::Matrix(3, 2);
  input.pre_periods = 1;  // too few pre periods
  EXPECT_FALSE(input.Validate().ok());
  input.pre_periods = 3;  // no post periods
  EXPECT_FALSE(input.Validate().ok());

  input.pre_periods = 2;
  input.donor_names = {"a"};  // name count mismatch
  EXPECT_FALSE(input.Validate().ok());
  input.donor_names = {"a", "b"};
  EXPECT_TRUE(input.Validate().ok());
}

// ---- Classical estimator --------------------------------------------------------

TEST(ClassicalSyntheticControlTest, RecoversKnownWeightsNoiseless) {
  core::Rng rng(1);
  const auto panel = MakePanel(60, 40, 5.0, 0.0, rng);
  auto fit = FitSyntheticControl(panel.input);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().weights[0], 0.6, 0.02);
  EXPECT_NEAR(fit.value().weights[1], 0.4, 0.02);
  EXPECT_NEAR(fit.value().average_effect, 5.0, 0.1);
  EXPECT_LT(fit.value().rmse_pre, 0.05);
}

TEST(ClassicalSyntheticControlTest, WeightsOnSimplex) {
  core::Rng rng(2);
  const auto panel = MakePanel(50, 30, 2.0, 0.5, rng, 5);
  auto fit = FitSyntheticControl(panel.input);
  ASSERT_TRUE(fit.ok());
  double sum = 0.0;
  for (double w : fit.value().weights) {
    EXPECT_GE(w, -1e-9);
    sum += w;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(ClassicalSyntheticControlTest, RecoversEffectUnderNoise) {
  core::Rng rng(3);
  const auto panel = MakePanel(120, 80, 4.0, 0.8, rng);
  auto fit = FitSyntheticControl(panel.input);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().average_effect, 4.0, 0.8);
  EXPECT_GT(fit.value().rmse_ratio, 2.0);  // clear post divergence
}

TEST(ClassicalSyntheticControlTest, NullEffectGivesRatioNearOne) {
  core::Rng rng(4);
  const auto panel = MakePanel(120, 80, 0.0, 0.8, rng);
  auto fit = FitSyntheticControl(panel.input);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().average_effect, 0.0, 0.5);
  EXPECT_LT(fit.value().rmse_ratio, 2.0);
}

TEST(ClassicalSyntheticControlTest, ActiveDonorsFormatting) {
  core::Rng rng(5);
  const auto panel = MakePanel(40, 30, 1.0, 0.0, rng);
  auto fit = FitSyntheticControl(panel.input);
  ASSERT_TRUE(fit.ok());
  const auto active = fit.value().ActiveDonors(0.05);
  ASSERT_EQ(active.size(), 2u);
  EXPECT_EQ(active[0].substr(0, 7), "donor0:");
}

// ---- Robust estimator -------------------------------------------------------------

TEST(RobustSyntheticControlTest, RecoversEffect) {
  core::Rng rng(6);
  const auto panel = MakePanel(120, 80, 4.0, 0.8, rng, 6);
  auto fit = FitRobustSyntheticControl(panel.input);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().base.average_effect, 4.0, 0.8);
  EXPECT_GE(fit.value().retained_rank, 1u);
  EXPECT_LE(fit.value().retained_rank, panel.input.donors.cols());
}

TEST(RobustSyntheticControlTest, DenoisingHelpsUnderHeavyNoise) {
  // With very noisy donors, RSC's low-rank step should track the latent
  // structure at least as well as the classical estimator on average.
  core::Rng rng(7);
  double rsc_error = 0.0, classical_error = 0.0;
  const int reps = 10;
  for (int rep = 0; rep < reps; ++rep) {
    const auto panel = MakePanel(120, 80, 3.0, 2.0, rng, 8);
    auto rsc = FitRobustSyntheticControl(panel.input);
    auto classical = FitSyntheticControl(panel.input);
    ASSERT_TRUE(rsc.ok());
    ASSERT_TRUE(classical.ok());
    rsc_error += std::abs(rsc.value().base.average_effect - 3.0);
    classical_error += std::abs(classical.value().average_effect - 3.0);
  }
  EXPECT_LT(rsc_error / reps, classical_error / reps + 0.5);
}

TEST(RobustSyntheticControlTest, WeightsMayLeaveSimplex) {
  // Treated = 1.5*donor0 - 0.5*donor1: outside the convex hull. The
  // classical estimator cannot fit this pre-period; RSC can.
  core::Rng rng(8);
  const std::size_t periods = 80, pre = 60;
  stats::Matrix donors(periods, 3);
  stats::Vector treated(periods);
  for (std::size_t t = 0; t < periods; ++t) {
    donors(t, 0) = 20.0 + std::sin(0.4 * static_cast<double>(t));
    donors(t, 1) = 10.0 + std::cos(0.3 * static_cast<double>(t));
    donors(t, 2) = 5.0 + 0.01 * static_cast<double>(t);
    treated[t] = 1.5 * donors(t, 0) - 0.5 * donors(t, 1);
  }
  SyntheticControlInput input;
  input.treated = treated;
  input.donors = donors;
  input.pre_periods = pre;
  RobustSyntheticControlOptions options;
  options.singular_value_threshold = 0.0;  // keep full rank: exact fit
  options.ridge_lambda = 1e-8;
  auto rsc = FitRobustSyntheticControl(input, options);
  auto classical = FitSyntheticControl(input);
  ASSERT_TRUE(rsc.ok());
  ASSERT_TRUE(classical.ok());
  EXPECT_LT(rsc.value().base.rmse_pre, 1e-3);
  EXPECT_GT(classical.value().rmse_pre, 0.5);
}

TEST(RobustSyntheticControlTest, ExplicitThresholdControlsRank) {
  core::Rng rng(9);
  const auto panel = MakePanel(60, 40, 0.0, 0.1, rng, 6);
  RobustSyntheticControlOptions options;
  options.singular_value_threshold = 1e9;  // everything below threshold
  options.min_rank = 2;
  auto fit = FitRobustSyntheticControl(panel.input, options);
  ASSERT_TRUE(fit.ok());
  EXPECT_EQ(fit.value().retained_rank, 2u);  // floor respected
}

// ---- Masked (missing-data) robust estimator -------------------------------

/// Marks a fraction of donor entries unobserved, plus optionally some
/// treated pre-periods. Values stay in place: the estimator must ignore
/// them through the mask, not through luck.
void MaskPanel(SyntheticControlInput& input, double donor_missing,
               core::Rng& rng, std::size_t treated_pre_missing = 0) {
  input.donor_observed =
      stats::Matrix(input.donors.rows(), input.donors.cols(), 1.0);
  for (std::size_t r = 0; r < input.donors.rows(); ++r) {
    for (std::size_t c = 0; c < input.donors.cols(); ++c) {
      if (rng.Bernoulli(donor_missing)) input.donor_observed(r, c) = 0.0;
    }
  }
  input.treated_observed.assign(input.treated.size(), 1.0);
  for (std::size_t i = 0; i < treated_pre_missing; ++i) {
    input.treated_observed[(i * 7) % input.pre_periods] = 0.0;
  }
}

TEST(MaskedRobustSyntheticControlTest, RecoversEffectWithMissingEntries) {
  core::Rng rng(20);
  auto panel = MakePanel(120, 80, 4.0, 0.5, rng, 6);
  MaskPanel(panel.input, 0.25, rng, /*treated_pre_missing=*/10);
  auto fit = FitRobustSyntheticControl(panel.input);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().observed_fraction, 0.75, 0.05);
  // A quarter of the donor entries are gone: expect the right sign and
  // rough size, not clean-data precision (the end-to-end bar lives in
  // fault_resilience_test.cc).
  EXPECT_NEAR(fit.value().base.average_effect, 4.0, 2.0);
  EXPECT_GT(fit.value().base.average_effect, 2.0);
}

TEST(MaskedRobustSyntheticControlTest, MaskCanBeDisabled) {
  core::Rng rng(21);
  auto panel = MakePanel(100, 70, 3.0, 0.3, rng, 4);
  MaskPanel(panel.input, 0.2, rng);
  RobustSyntheticControlOptions options;
  options.use_mask = false;
  auto fit = FitRobustSyntheticControl(panel.input, options);
  ASSERT_TRUE(fit.ok());
  EXPECT_DOUBLE_EQ(fit.value().observed_fraction, 1.0);
}

TEST(MaskedRobustSyntheticControlTest, AllMissingDonorMatrixIsAnError) {
  core::Rng rng(22);
  auto panel = MakePanel(60, 40, 2.0, 0.1, rng);
  panel.input.donor_observed =
      stats::Matrix(panel.input.donors.rows(), panel.input.donors.cols(),
                    0.0);
  auto fit = FitRobustSyntheticControl(panel.input);
  ASSERT_FALSE(fit.ok());
  EXPECT_EQ(fit.error().code(), core::ErrorCode::kNumericalFailure);
  EXPECT_NE(fit.error().message().find("unobserved"), std::string::npos);
}

TEST(MaskedRobustSyntheticControlTest, TooSparseDonorMatrixIsAnError) {
  core::Rng rng(23);
  auto panel = MakePanel(60, 40, 2.0, 0.1, rng);
  // 2% observed < default 5% floor.
  panel.input.donor_observed =
      stats::Matrix(panel.input.donors.rows(), panel.input.donors.cols(),
                    0.0);
  for (std::size_t r = 0; r < panel.input.donors.rows(); r += 50) {
    panel.input.donor_observed(r, 0) = 1.0;
  }
  auto fit = FitRobustSyntheticControl(panel.input);
  ASSERT_FALSE(fit.ok());
  EXPECT_EQ(fit.error().code(), core::ErrorCode::kNumericalFailure);
  EXPECT_NE(fit.error().message().find("too sparse"), std::string::npos);
}

TEST(MaskedRobustSyntheticControlTest, AllMissingTreatedPreIsAnError) {
  core::Rng rng(24);
  auto panel = MakePanel(60, 40, 2.0, 0.1, rng);
  MaskPanel(panel.input, 0.0, rng);
  for (std::size_t t = 0; t < panel.input.pre_periods; ++t) {
    panel.input.treated_observed[t] = 0.0;
  }
  auto fit = FitRobustSyntheticControl(panel.input);
  ASSERT_FALSE(fit.ok());
  EXPECT_EQ(fit.error().code(), core::ErrorCode::kNumericalFailure);
  EXPECT_NE(fit.error().message().find("observed treated pre-periods"),
            std::string::npos);
}

TEST(MaskedRobustSyntheticControlTest, ValidationCatchesMaskShapeErrors) {
  core::Rng rng(25);
  auto panel = MakePanel(40, 30, 1.0, 0.1, rng);
  panel.input.treated_observed.assign(10, 1.0);  // wrong length
  EXPECT_FALSE(panel.input.Validate().ok());
  panel.input.treated_observed.clear();
  panel.input.donor_observed = stats::Matrix(3, 3, 1.0);  // wrong shape
  EXPECT_FALSE(panel.input.Validate().ok());
}

TEST(DiagnoseWeightsTest, EffectAndRmseArithmetic) {
  SyntheticControlInput input;
  input.treated = {1, 1, 3, 3};
  input.donors = stats::Matrix(4, 1, 1.0);  // constant donor
  input.pre_periods = 2;
  auto fit = DiagnoseWeights(input, {1.0});
  EXPECT_DOUBLE_EQ(fit.rmse_pre, 0.0);
  EXPECT_DOUBLE_EQ(fit.rmse_post, 2.0);
  EXPECT_DOUBLE_EQ(fit.average_effect, 2.0);
  ASSERT_EQ(fit.post_effects.size(), 2u);
  EXPECT_GT(fit.rmse_ratio, 1e6);  // guarded division by ~0 pre-RMSE
}

}  // namespace
}  // namespace sisyphus::causal
