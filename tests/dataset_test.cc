// Tests for the Dataset table.
#include <gtest/gtest.h>

#include "causal/dataset.h"

namespace sisyphus::causal {
namespace {

TEST(DatasetTest, AddAndReadColumns) {
  Dataset data;
  ASSERT_TRUE(data.AddColumn("x", {1, 2, 3}).ok());
  ASSERT_TRUE(data.AddColumn("y", {4, 5, 6}).ok());
  EXPECT_EQ(data.rows(), 3u);
  EXPECT_EQ(data.cols(), 2u);
  auto col = data.Column("y");
  ASSERT_TRUE(col.ok());
  EXPECT_DOUBLE_EQ(col.value()[2], 6.0);
}

TEST(DatasetTest, LengthMismatchRejected) {
  Dataset data;
  ASSERT_TRUE(data.AddColumn("x", {1, 2, 3}).ok());
  const auto status = data.AddColumn("y", {1});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code(), core::ErrorCode::kInvalidArgument);
}

TEST(DatasetTest, ReplaceExistingColumn) {
  Dataset data;
  ASSERT_TRUE(data.AddColumn("x", {1, 2}).ok());
  ASSERT_TRUE(data.AddColumn("x", {7, 8}).ok());
  EXPECT_EQ(data.cols(), 1u);
  EXPECT_DOUBLE_EQ(data.ColumnOrDie("x")[0], 7.0);
}

TEST(DatasetTest, MissingColumnErrors) {
  Dataset data;
  ASSERT_TRUE(data.AddColumn("x", {1}).ok());
  EXPECT_FALSE(data.HasColumn("z"));
  EXPECT_FALSE(data.Column("z").ok());
  EXPECT_THROW(data.ColumnOrDie("z"), std::logic_error);
}

TEST(DatasetTest, FilterByMask) {
  Dataset data;
  ASSERT_TRUE(data.AddColumn("x", {1, 2, 3, 4}).ok());
  ASSERT_TRUE(data.AddColumn("y", {10, 20, 30, 40}).ok());
  const Dataset filtered = data.Filter({true, false, false, true});
  EXPECT_EQ(filtered.rows(), 2u);
  EXPECT_DOUBLE_EQ(filtered.ColumnOrDie("y")[1], 40.0);
}

TEST(DatasetTest, FilterEquals) {
  Dataset data;
  ASSERT_TRUE(data.AddColumn("treated", {0, 1, 1, 0}).ok());
  ASSERT_TRUE(data.AddColumn("y", {1, 2, 3, 4}).ok());
  const Dataset treated = data.FilterEquals("treated", 1.0);
  EXPECT_EQ(treated.rows(), 2u);
  EXPECT_DOUBLE_EQ(treated.ColumnOrDie("y")[0], 2.0);
}

TEST(DatasetTest, MaskSizeMismatchThrows) {
  Dataset data;
  ASSERT_TRUE(data.AddColumn("x", {1, 2}).ok());
  EXPECT_THROW(data.Filter({true}), std::logic_error);
}

TEST(DatasetTest, HeadRendersWithoutCrashing) {
  Dataset data;
  ASSERT_TRUE(data.AddColumn("a", {1.5, 2.5}).ok());
  const std::string head = data.Head(1);
  EXPECT_NE(head.find("a"), std::string::npos);
  EXPECT_NE(head.find("1.5"), std::string::npos);
}

}  // namespace
}  // namespace sisyphus::causal
