// Tests for speed-test execution and the measurement store.
#include <gtest/gtest.h>

#include <limits>

#include "measure/store.h"
#include "netsim/simulator.h"

namespace sisyphus::measure {
namespace {

using core::Asn;
using core::SimTime;
using netsim::AsRole;
using netsim::NetworkSimulator;
using netsim::Relationship;
using netsim::Topology;

struct Fixture {
  std::unique_ptr<NetworkSimulator> sim;
  netsim::PopIndex user = 0, server = 0;
  core::LinkId peering;
  core::IxpId ixp;

  Fixture() {
    Topology topo;
    const auto jnb = topo.cities().Add({"Johannesburg", {-26.2, 28.0}, 2.0});
    user = topo.AddPop(Asn{3741}, jnb, AsRole::kAccess).value();
    const auto transit = topo.AddPop(Asn{2}, jnb, AsRole::kTransit).value();
    server = topo.AddPop(Asn{3}, jnb, AsRole::kMeasurement).value();
    ixp = topo.AddIxp("NAPAfrica-JNB", jnb);
    EXPECT_TRUE(
        topo.AddLink(user, transit, Relationship::kCustomerToProvider).ok());
    EXPECT_TRUE(
        topo.AddLink(server, transit, Relationship::kCustomerToProvider)
            .ok());
    peering =
        topo.AddLink(user, server, Relationship::kPeerToPeer, ixp).value();
    topo.MutableLink(peering).up = false;
    sim = std::make_unique<NetworkSimulator>(std::move(topo));
  }
};

TEST(SpeedTestTest, RecordFieldsPopulated) {
  Fixture f;
  core::Rng rng(1);
  auto record =
      RunSpeedTest(*f.sim, f.user, f.server, Intent::kBaseline, rng);
  ASSERT_TRUE(record.ok());
  const auto& r = record.value();
  EXPECT_EQ(r.asn, Asn{3741});
  EXPECT_EQ(r.city, "Johannesburg");
  EXPECT_EQ(r.UnitKey(), "3741 / Johannesburg");
  EXPECT_GT(r.rtt_ms, 0.0);
  EXPECT_GT(r.throughput_mbps, 0.0);
  EXPECT_LT(r.throughput_mbps, 150.0);
  EXPECT_EQ(r.intent, Intent::kBaseline);
  EXPECT_EQ(r.asn_path.size(), 3u);
  EXPECT_EQ(r.traceroute.hops.size(), 3u);
}

TEST(SpeedTestTest, RttIncludesLastMileOverhead) {
  Fixture f;
  core::Rng rng(2);
  auto route = f.sim->RouteBetween(f.user, f.server);
  ASSERT_TRUE(route.ok());
  const double path_rtt =
      f.sim->latency().PathRttMs(route.value(), f.sim->Now());
  double sum = 0.0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    auto record =
        RunSpeedTest(*f.sim, f.user, f.server, Intent::kBaseline, rng);
    ASSERT_TRUE(record.ok());
    sum += record.value().rtt_ms;
  }
  // Mean last-mile overhead ~2 ms plus occasional spikes.
  EXPECT_GT(sum / n, path_rtt + 1.0);
  EXPECT_LT(sum / n, path_rtt + 6.0);
}

TEST(SpeedTestTest, ThroughputDecreasesWithRtt) {
  SpeedTestModelOptions options;
  // Compare two fixtures: one direct, one with a long link.
  Fixture fast;
  core::Rng rng(3);
  // Slow path: add shock... simpler: compare model formula monotonicity
  // through samples at different path RTTs by toggling peering (shorter).
  fast.sim->topology().MutableLink(fast.peering).up = true;
  fast.sim->bgp().InvalidateCache();
  double fast_sum = 0.0, slow_sum = 0.0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    auto record = RunSpeedTest(*fast.sim, fast.user, fast.server,
                               Intent::kBaseline, rng, options);
    ASSERT_TRUE(record.ok());
    fast_sum += record.value().throughput_mbps;
  }
  fast.sim->topology().MutableLink(fast.peering).up = false;
  fast.sim->bgp().InvalidateCache();
  for (int i = 0; i < n; ++i) {
    auto record = RunSpeedTest(*fast.sim, fast.user, fast.server,
                               Intent::kBaseline, rng, options);
    ASSERT_TRUE(record.ok());
    slow_sum += record.value().throughput_mbps;
  }
  EXPECT_GT(fast_sum, slow_sum);
}

TEST(SpeedTestTest, UnreachableDestinationFails) {
  Fixture f;
  // Partition the user.
  for (core::LinkId link : f.sim->topology().LinksOf(f.user)) {
    f.sim->topology().MutableLink(link).up = false;
  }
  f.sim->bgp().InvalidateCache();
  core::Rng rng(4);
  auto record =
      RunSpeedTest(*f.sim, f.user, f.server, Intent::kUserInitiated, rng);
  ASSERT_FALSE(record.ok());
  EXPECT_EQ(record.error().code(), core::ErrorCode::kNotFound);
}

TEST(IntentTest, NamesStable) {
  EXPECT_STREQ(ToString(Intent::kBaseline), "baseline");
  EXPECT_STREQ(ToString(Intent::kUserInitiated), "user_initiated");
  EXPECT_STREQ(ToString(Intent::kEventTriggered), "event_triggered");
}

TEST(StoreTest, UnitsIndexedAndOrdered) {
  Fixture f;
  core::Rng rng(5);
  MeasurementStore store;
  for (int i = 0; i < 5; ++i) {
    f.sim->AdvanceTo(SimTime::FromHours(static_cast<double>(i + 1)));
    auto record =
        RunSpeedTest(*f.sim, f.user, f.server, Intent::kBaseline, rng);
    ASSERT_TRUE(record.ok());
    store.Add(std::move(record).value());
  }
  EXPECT_EQ(store.size(), 5u);
  ASSERT_EQ(store.Units().size(), 1u);
  EXPECT_EQ(store.Units()[0], "3741 / Johannesburg");
  const auto unit_records = store.ForUnit("3741 / Johannesburg");
  ASSERT_EQ(unit_records.size(), 5u);
  for (std::size_t i = 1; i < unit_records.size(); ++i) {
    EXPECT_LE(unit_records[i - 1]->time, unit_records[i]->time);
  }
  EXPECT_TRUE(store.ForUnit("nope").empty());
}

TEST(StoreTest, SelectByPredicate) {
  Fixture f;
  core::Rng rng(6);
  MeasurementStore store;
  for (int i = 0; i < 4; ++i) {
    auto record = RunSpeedTest(*f.sim, f.user, f.server,
                               i % 2 == 0 ? Intent::kBaseline
                                          : Intent::kUserInitiated,
                               rng);
    ASSERT_TRUE(record.ok());
    store.Add(std::move(record).value());
  }
  const auto baseline = store.Select([](const SpeedTestRecord& r) {
    return r.intent == Intent::kBaseline;
  });
  EXPECT_EQ(baseline.size(), 2u);
}

TEST(StoreTest, FirstIxpCrossingDetectsTreatmentOnset) {
  Fixture f;
  core::Rng rng(7);
  MeasurementStore store;
  // Two pre-treatment tests.
  for (int i = 0; i < 2; ++i) {
    f.sim->AdvanceTo(SimTime::FromHours(static_cast<double>(i + 1)));
    auto record =
        RunSpeedTest(*f.sim, f.user, f.server, Intent::kBaseline, rng);
    ASSERT_TRUE(record.ok());
    store.Add(std::move(record).value());
  }
  // Peering turns up at t = 3h.
  f.sim->AdvanceTo(SimTime::FromHours(3.0));
  f.sim->topology().MutableLink(f.peering).up = true;
  f.sim->bgp().InvalidateCache();
  for (int i = 0; i < 2; ++i) {
    f.sim->AdvanceTo(SimTime::FromHours(4.0 + i));
    auto record =
        RunSpeedTest(*f.sim, f.user, f.server, Intent::kBaseline, rng);
    ASSERT_TRUE(record.ok());
    store.Add(std::move(record).value());
  }
  const auto& topo = f.sim->topology();
  const auto first =
      store.FirstIxpCrossing(topo, "3741 / Johannesburg", f.ixp);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, SimTime::FromHours(4.0));
  // Crossing share: 0 before, 1 after.
  EXPECT_DOUBLE_EQ(store.IxpCrossingShare(topo, "3741 / Johannesburg", f.ixp,
                                          SimTime(0), SimTime::FromHours(3.0)),
                   0.0);
  EXPECT_DOUBLE_EQ(
      store.IxpCrossingShare(topo, "3741 / Johannesburg", f.ixp,
                             SimTime::FromHours(3.5), SimTime::FromHours(6.0)),
      1.0);
  // Empty window: share 0.
  EXPECT_DOUBLE_EQ(
      store.IxpCrossingShare(topo, "3741 / Johannesburg", f.ixp,
                             SimTime::FromHours(50), SimTime::FromHours(60)),
      0.0);
}

// ---- Validating ingest / quarantine ---------------------------------------

SpeedTestRecord PlausibleRecord() {
  SpeedTestRecord record;
  record.time = SimTime::FromHours(3);
  record.asn = Asn{100};
  record.city = "X";
  record.rtt_ms = 20.0;
  record.loss_rate = 0.01;
  record.throughput_mbps = 50.0;
  return record;
}

TEST(StoreValidationTest, ValidateRecordCatchesEachDefect) {
  EXPECT_TRUE(ValidateRecord(PlausibleRecord()).ok());

  auto negative_rtt = PlausibleRecord();
  negative_rtt.rtt_ms = -5.0;
  EXPECT_FALSE(ValidateRecord(negative_rtt).ok());

  auto huge_rtt = PlausibleRecord();
  huge_rtt.rtt_ms = 1e9;
  EXPECT_FALSE(ValidateRecord(huge_rtt).ok());

  auto impossible_loss = PlausibleRecord();
  impossible_loss.loss_rate = 2.0;
  EXPECT_FALSE(ValidateRecord(impossible_loss).ok());

  auto nan_throughput = PlausibleRecord();
  nan_throughput.throughput_mbps =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ValidateRecord(nan_throughput).ok());

  auto pre_epoch = PlausibleRecord();
  pre_epoch.time = SimTime(-10);
  EXPECT_FALSE(ValidateRecord(pre_epoch).ok());

  StoreValidationOptions window;
  window.max_time = SimTime::FromHours(1);
  EXPECT_FALSE(ValidateRecord(PlausibleRecord(), window).ok());
}

TEST(StoreValidationTest, CorruptRecordsQuarantinedWithReason) {
  MeasurementStore store;
  store.Add(PlausibleRecord());

  auto negative_rtt = PlausibleRecord();
  negative_rtt.rtt_ms = -1.0;
  store.Add(negative_rtt);

  auto pre_epoch = PlausibleRecord();
  pre_epoch.time = SimTime(-99);
  store.Add(pre_epoch);

  EXPECT_EQ(store.size(), 1u);
  ASSERT_EQ(store.quarantine().size(), 2u);
  EXPECT_NE(store.quarantine()[0].reason.find("rtt"), std::string::npos);
  EXPECT_NE(store.quarantine()[1].reason.find("timestamp"),
            std::string::npos);
  EXPECT_DOUBLE_EQ(store.quarantine()[0].record.rtt_ms, -1.0);
  // Quarantined units never surface in queries.
  for (const auto& record : store.records()) {
    EXPECT_TRUE(ValidateRecord(record).ok());
  }
}

TEST(StoreValidationTest, CustomBoundsRespected) {
  StoreValidationOptions validation;
  validation.max_rtt_ms = 100.0;
  validation.min_time = SimTime::FromHours(1);
  validation.max_time = SimTime::FromHours(10);
  MeasurementStore store(validation);

  auto ok_record = PlausibleRecord();
  store.Add(ok_record);

  auto slow = PlausibleRecord();
  slow.rtt_ms = 500.0;  // valid by default bounds, not by these
  store.Add(slow);

  auto late = PlausibleRecord();
  late.time = SimTime::FromHours(11);
  store.Add(late);

  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.quarantine().size(), 2u);
}

}  // namespace
}  // namespace sisyphus::measure
