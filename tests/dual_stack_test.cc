// Tests for dual-stack routing: the IPv6 topology is the subgraph of
// v6-enabled links, so toggling the address family alters AS paths —
// the paper's §4 "toggle IPv4 vs IPv6" knob.
#include <gtest/gtest.h>

#include <memory>

#include "measure/speedtest.h"
#include "netsim/simulator.h"

namespace sisyphus::netsim {
namespace {

using core::Asn;

/// src multihomed to P1 (v4-only peering with dst's side) and P2
/// (dual stack). v4 prefers P1 (shorter prop/tiebreak); v6 must use P2.
struct Fixture {
  std::unique_ptr<NetworkSimulator> sim;
  PopIndex src = 0, dst = 0;
  core::LinkId src_p1, src_p2;

  Fixture() {
    Topology topo;
    const auto city = topo.cities().Add({"X", {0, 0}, 0});
    src = topo.AddPop(Asn{10}, city, AsRole::kAccess).value();
    const auto p1 = topo.AddPop(Asn{20}, city, AsRole::kTransit).value();
    const auto p2 = topo.AddPop(Asn{30}, city, AsRole::kTransit).value();
    dst = topo.AddPop(Asn{40}, city, AsRole::kContent).value();
    src_p1 = topo.AddLink(src, p1, Relationship::kCustomerToProvider).value();
    src_p2 = topo.AddLink(src, p2, Relationship::kCustomerToProvider).value();
    auto p1_dst = topo.AddLink(dst, p1, Relationship::kCustomerToProvider);
    EXPECT_TRUE(topo.AddLink(dst, p2, Relationship::kCustomerToProvider).ok());
    // P1's side never turned on v6.
    topo.MutableLink(src_p1).ipv6 = false;
    topo.MutableLink(p1_dst.value()).ipv6 = false;
    sim = std::make_unique<NetworkSimulator>(std::move(topo));
  }
};

TEST(DualStackTest, FamiliesConvergeOntoDifferentPaths) {
  Fixture f;
  auto v4 = f.sim->RouteBetween(f.src, f.dst, AddressFamily::kIpv4);
  auto v6 = f.sim->RouteBetween(f.src, f.dst, AddressFamily::kIpv6);
  ASSERT_TRUE(v4.ok());
  ASSERT_TRUE(v6.ok());
  EXPECT_TRUE(v4.value().CrossesAsn(Asn{20}));   // tiebreak: lower PoP
  EXPECT_TRUE(v6.value().CrossesAsn(Asn{30}));   // forced around v4-only
  EXPECT_NE(v4.value().asn_path, v6.value().asn_path);
}

TEST(DualStackTest, DefaultLinksAreDualStack) {
  Fixture f;
  // dst -> p2 path identical in both families (all links dual-stack).
  auto v4 = f.sim->bgp().Route(f.src, f.dst, AddressFamily::kIpv4);
  ASSERT_TRUE(v4.ok());
  // Disable the v4-only alternative entirely: now both families agree.
  f.sim->topology().MutableLink(f.src_p1).up = false;
  f.sim->bgp().InvalidateCache();
  auto v4b = f.sim->bgp().Route(f.src, f.dst, AddressFamily::kIpv4);
  auto v6b = f.sim->bgp().Route(f.src, f.dst, AddressFamily::kIpv6);
  ASSERT_TRUE(v4b.ok());
  ASSERT_TRUE(v6b.ok());
  EXPECT_EQ(v4b.value().asn_path, v6b.value().asn_path);
}

TEST(DualStackTest, V6OnlyPartitionReturnsNotFound) {
  Fixture f;
  // Kill v6 on the remaining dual-stack access link: v6 unreachable, v4
  // fine.
  f.sim->topology().MutableLink(f.src_p2).ipv6 = false;
  f.sim->bgp().InvalidateCache();
  EXPECT_TRUE(f.sim->RouteBetween(f.src, f.dst, AddressFamily::kIpv4).ok());
  auto v6 = f.sim->RouteBetween(f.src, f.dst, AddressFamily::kIpv6);
  ASSERT_FALSE(v6.ok());
  EXPECT_EQ(v6.error().code(), core::ErrorCode::kNotFound);
}

TEST(DualStackTest, CachesArePerFamily) {
  Fixture f;
  (void)f.sim->bgp().RoutesTo(f.dst, AddressFamily::kIpv4);
  (void)f.sim->bgp().RoutesTo(f.dst, AddressFamily::kIpv6);
  // Poisoning invalidates both family caches for that destination.
  f.sim->bgp().SetPoisonedAsns(f.dst, {Asn{30}});
  auto v4 = f.sim->bgp().Route(f.src, f.dst, AddressFamily::kIpv4);
  ASSERT_TRUE(v4.ok());
  EXPECT_FALSE(v4.value().CrossesAsn(Asn{30}));
  // v6 needed ASN 30 (its only v6 path): now unreachable.
  EXPECT_FALSE(f.sim->bgp().Route(f.src, f.dst, AddressFamily::kIpv6).ok());
}

TEST(DualStackTest, SpeedTestCarriesFamilyAndPath) {
  Fixture f;
  core::Rng rng(1);
  auto v4 = measure::RunSpeedTest(*f.sim, f.src, f.dst,
                                  measure::Intent::kBaseline, rng, {},
                                  AddressFamily::kIpv4);
  auto v6 = measure::RunSpeedTest(*f.sim, f.src, f.dst,
                                  measure::Intent::kBaseline, rng, {},
                                  AddressFamily::kIpv6);
  ASSERT_TRUE(v4.ok());
  ASSERT_TRUE(v6.ok());
  EXPECT_EQ(v4.value().address_family, AddressFamily::kIpv4);
  EXPECT_EQ(v6.value().address_family, AddressFamily::kIpv6);
  EXPECT_NE(v4.value().asn_path, v6.value().asn_path);
}

TEST(DualStackTest, FamilyToggleActsAsInstrument) {
  // The paper's use case: per-test random AF assignment induces exogenous
  // path variation. Confirm the two families see different mean RTTs
  // when the v6 path is longer.
  Fixture f;
  f.sim->topology().MutableLink(f.src_p2).propagation_ms = 3.0;
  core::Rng rng(2);
  double v4_sum = 0.0, v6_sum = 0.0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    v4_sum += f.sim->SampleRtt(f.src, f.dst, rng,
                               AddressFamily::kIpv4).value();
    v6_sum += f.sim->SampleRtt(f.src, f.dst, rng,
                               AddressFamily::kIpv6).value();
  }
  EXPECT_GT(v6_sum / n, v4_sum / n + 3.0);
}

TEST(DualStackTest, FamilyNamesStable) {
  EXPECT_STREQ(ToString(AddressFamily::kIpv4), "ipv4");
  EXPECT_STREQ(ToString(AddressFamily::kIpv6), "ipv6");
}

}  // namespace
}  // namespace sisyphus::netsim
