// End-to-end degraded-data acceptance: the Table 1 pipeline (ScenarioZa
// campaign -> panel -> masked robust synthetic control) run under the
// fault plan from DESIGN.md's failure model — 20% random probe loss plus
// two 10-period vantage outages — must stay within 25% relative error of
// the clean estimate, and a fixed FaultPlan seed must replay a
// byte-identical record stream. Mirrors bench/exp_fault_resilience.cc.
#include <gtest/gtest.h>

#include <cmath>

#include "causal/robust_synthetic_control.h"
#include "measure/export.h"
#include "measure/faults.h"
#include "measure/panel.h"
#include "measure/platform.h"
#include "netsim/scenario_za.h"

namespace sisyphus {
namespace {

struct CampaignResult {
  double mean_effect = 0.0;
  std::size_t units_fit = 0;
  std::size_t quarantined = 0;
  std::string store_csv;
};

CampaignResult RunCampaign(const measure::FaultPlan* plan,
                           bool keep_csv = false) {
  netsim::ScenarioZaOptions scenario_options;
  netsim::ScenarioZa scenario = netsim::BuildScenarioZa(scenario_options);

  measure::PlatformOptions platform_options;
  platform_options.server = scenario.content_jnb;
  platform_options.step = core::SimTime::FromHours(1);
  measure::Platform platform(*scenario.simulator, platform_options);

  // Dense schedule: per-bucket medians must be tight enough that the
  // 25% budget measures fault-induced bias, not sampling noise (the
  // bench prints the reseeding noise floor for exactly this reason).
  measure::VantageConfig vantage;
  vantage.baseline_tests_per_day = 40.0;
  vantage.user_tests_per_day = 4.0;
  for (const auto& unit : scenario.treated) {
    vantage.pop = unit.access_pop;
    platform.AddVantage(vantage);
  }
  for (netsim::PopIndex donor : scenario.donors) {
    vantage.pop = donor;
    platform.AddVantage(vantage);
  }

  measure::FaultInjector injector(plan != nullptr ? *plan
                                                  : measure::FaultPlan{});
  if (plan != nullptr) platform.SetFaultInjector(&injector);

  core::Rng rng(scenario_options.seed);
  platform.Run(scenario_options.horizon, rng);

  measure::PanelOptions panel_options;
  panel_options.bucket = core::SimTime::FromHours(6);
  panel_options.periods = static_cast<std::size_t>(
      scenario_options.horizon.minutes() / panel_options.bucket.minutes());
  const measure::Panel panel =
      measure::BuildRttPanel(platform.store(), panel_options);

  CampaignResult out;
  out.quarantined = platform.store().quarantine().size();
  if (keep_csv) out.store_csv = measure::StoreToCsv(platform.store());
  double sum = 0.0;
  for (const auto& unit : scenario.treated) {
    auto input = measure::MakeSyntheticControlInput(
        panel, unit.name, scenario.donor_names,
        scenario_options.treatment_time);
    if (!input.ok()) continue;
    auto fit = causal::FitRobustSyntheticControl(input.value());
    if (!fit.ok()) continue;
    sum += fit.value().base.average_effect;
    ++out.units_fit;
  }
  if (out.units_fit > 0) {
    out.mean_effect = sum / static_cast<double>(out.units_fit);
  }
  return out;
}

/// 20% probe loss + two 10-period (60h at 6h buckets) vantage outages.
measure::FaultPlan AcceptancePlan(std::uint64_t seed) {
  const netsim::ScenarioZa scenario = netsim::BuildScenarioZa({});
  measure::FaultPlan plan;
  plan.seed = seed;
  plan.probe_loss_probability = 0.20;
  const core::SimTime duration = core::SimTime::FromHours(60);
  plan.vantage_outages.push_back(
      {scenario.treated[0].access_pop,
       {{core::SimTime::FromDays(10),
         core::SimTime::FromDays(10) + duration}}});
  plan.vantage_outages.push_back(
      {scenario.treated[1].access_pop,
       {{core::SimTime::FromDays(40),
         core::SimTime::FromDays(40) + duration}}});
  return plan;
}

TEST(FaultResilienceTest, MaskedEstimateWithin25PercentOfClean) {
  const CampaignResult clean = RunCampaign(nullptr);
  ASSERT_EQ(clean.units_fit, 8u);
  ASSERT_LT(clean.mean_effect, 0.0);  // Table 1: IXP lowered mean RTT

  const measure::FaultPlan plan = AcceptancePlan(42);
  const CampaignResult faulty = RunCampaign(&plan);
  ASSERT_EQ(faulty.units_fit, 8u);
  const double rel_err = std::abs(faulty.mean_effect - clean.mean_effect) /
                         std::abs(clean.mean_effect);
  EXPECT_LE(rel_err, 0.25)
      << "clean " << clean.mean_effect << " ms vs faulty "
      << faulty.mean_effect << " ms";
}

TEST(FaultResilienceTest, FixedSeedReplaysByteIdenticalStream) {
  const measure::FaultPlan plan = AcceptancePlan(42);
  const CampaignResult a = RunCampaign(&plan, /*keep_csv=*/true);
  const CampaignResult b = RunCampaign(&plan, /*keep_csv=*/true);
  ASSERT_GT(a.store_csv.size(), 1000u);
  EXPECT_EQ(a.store_csv, b.store_csv);
}

TEST(FaultResilienceTest, DirtyCollectorNeverPoisonsThePanel) {
  measure::FaultPlan plan;
  plan.seed = 77;
  plan.corruption_probability = 0.05;
  plan.duplicate_probability = 0.03;
  plan.max_clock_skew = core::SimTime(3);
  const CampaignResult dirty = RunCampaign(&plan);
  EXPECT_GT(dirty.quarantined, 100u);
  // The estimator still runs on all treated units: corrupt records were
  // intercepted at ingest, not passed through the panel.
  EXPECT_EQ(dirty.units_fit, 8u);
}

}  // namespace
}  // namespace sisyphus
