// Tests for the PoP-level topology: construction rules, addressing plan,
// IXP LANs, adjacency queries.
#include <gtest/gtest.h>

#include "netsim/topology.h"

namespace sisyphus::netsim {
namespace {

using core::Asn;

struct Fixture {
  Topology topo;
  core::CityId jnb, cpt;
  PopIndex a_jnb, a_cpt, b_jnb, content;
  core::IxpId ixp;

  Fixture() {
    jnb = topo.cities().Add({"Johannesburg", {-26.20, 28.04}, 2.0});
    cpt = topo.cities().Add({"Cape Town", {-33.92, 18.42}, 2.0});
    a_jnb = topo.AddPop(Asn{100}, jnb, AsRole::kAccess).value();
    a_cpt = topo.AddPop(Asn{100}, cpt, AsRole::kAccess).value();
    b_jnb = topo.AddPop(Asn{200}, jnb, AsRole::kTransit).value();
    content = topo.AddPop(Asn{300}, jnb, AsRole::kContent).value();
    ixp = topo.AddIxp("NAPAfrica-JNB", jnb);
  }
};

TEST(Ipv4Test, FormattingAndPrefixMatch) {
  const Ipv4 addr = Ipv4::FromOctets(196, 60, 3, 17);
  EXPECT_EQ(addr.ToText(), "196.60.3.17");
  EXPECT_TRUE(InPrefix(addr, Ipv4::FromOctets(196, 60, 3, 0), 24));
  EXPECT_FALSE(InPrefix(addr, Ipv4::FromOctets(196, 60, 4, 0), 24));
  EXPECT_TRUE(InPrefix(addr, Ipv4::FromOctets(196, 60, 0, 0), 16));
  EXPECT_TRUE(InPrefix(addr, Ipv4::FromOctets(0, 0, 0, 0), 0));
  EXPECT_TRUE(InPrefix(addr, addr, 32));
}

TEST(TopologyTest, DuplicatePopRejected) {
  Fixture f;
  EXPECT_FALSE(f.topo.AddPop(Asn{100}, f.jnb, AsRole::kAccess).ok());
  EXPECT_EQ(f.topo.PopCount(), 4u);
}

TEST(TopologyTest, PopLookupAndLabels) {
  Fixture f;
  auto pop = f.topo.FindPop(Asn{100}, f.cpt);
  ASSERT_TRUE(pop.ok());
  EXPECT_EQ(pop.value(), f.a_cpt);
  EXPECT_EQ(f.topo.GetPop(f.a_cpt).label, "AS100/Cape Town");
  EXPECT_FALSE(f.topo.FindPop(Asn{999}, f.jnb).ok());
  EXPECT_EQ(f.topo.PopsOfAs(Asn{100}).size(), 2u);
}

TEST(TopologyTest, LinkRules) {
  Fixture f;
  // Intra-AS between different ASNs rejected.
  EXPECT_FALSE(
      f.topo.AddLink(f.a_jnb, f.b_jnb, Relationship::kIntraAs).ok());
  // Cross-AS link flagged kIntraAs rejected... and same-ASN link must be
  // intra.
  EXPECT_FALSE(
      f.topo.AddLink(f.a_jnb, f.a_cpt, Relationship::kPeerToPeer).ok());
  // Valid links.
  ASSERT_TRUE(f.topo.AddLink(f.a_jnb, f.a_cpt, Relationship::kIntraAs).ok());
  auto c2p =
      f.topo.AddLink(f.a_jnb, f.b_jnb, Relationship::kCustomerToProvider);
  ASSERT_TRUE(c2p.ok());
  // Duplicate rejected either direction.
  EXPECT_FALSE(
      f.topo.AddLink(f.b_jnb, f.a_jnb, Relationship::kPeerToPeer).ok());
  EXPECT_EQ(f.topo.LinkCount(), 2u);
  // Provider side identification: a (=a_jnb) is customer, b (=b_jnb)
  // provider.
  EXPECT_TRUE(f.topo.IsProviderSide(c2p.value(), f.b_jnb));
  EXPECT_FALSE(f.topo.IsProviderSide(c2p.value(), f.a_jnb));
}

TEST(TopologyTest, SelfLinkRejected) {
  Fixture f;
  EXPECT_FALSE(f.topo.AddLink(f.a_jnb, f.a_jnb, Relationship::kIntraAs).ok());
}

TEST(TopologyTest, PropagationDerivedFromGeographyWithMetroFloor) {
  Fixture f;
  auto same_city =
      f.topo.AddLink(f.a_jnb, f.b_jnb, Relationship::kCustomerToProvider);
  ASSERT_TRUE(same_city.ok());
  EXPECT_DOUBLE_EQ(f.topo.GetLink(same_city.value()).propagation_ms, 0.2);
  auto long_haul = f.topo.AddLink(f.a_jnb, f.a_cpt, Relationship::kIntraAs);
  ASSERT_TRUE(long_haul.ok());
  // ~1260 km * 1.6 / 204 ~ 9.9 ms.
  EXPECT_NEAR(f.topo.GetLink(long_haul.value()).propagation_ms, 9.9, 0.5);
}

TEST(TopologyTest, ExplicitPropagationOverride) {
  Fixture f;
  auto link = f.topo.AddLink(f.a_jnb, f.a_cpt, Relationship::kIntraAs,
                             std::nullopt, 42.0);
  ASSERT_TRUE(link.ok());
  EXPECT_DOUBLE_EQ(f.topo.GetLink(link.value()).propagation_ms, 42.0);
}

TEST(TopologyTest, AdjacencyAndNeighbor) {
  Fixture f;
  auto l1 = f.topo.AddLink(f.a_jnb, f.b_jnb, Relationship::kCustomerToProvider);
  auto l2 = f.topo.AddLink(f.a_jnb, f.a_cpt, Relationship::kIntraAs);
  ASSERT_TRUE(l1.ok());
  ASSERT_TRUE(l2.ok());
  EXPECT_EQ(f.topo.LinksOf(f.a_jnb).size(), 2u);
  EXPECT_EQ(f.topo.LinksOf(f.content).size(), 0u);
  EXPECT_EQ(f.topo.Neighbor(l1.value(), f.a_jnb), f.b_jnb);
  EXPECT_EQ(f.topo.Neighbor(l1.value(), f.b_jnb), f.a_jnb);
}

TEST(TopologyTest, RouterAddressingPlan) {
  Fixture f;
  EXPECT_EQ(f.topo.RouterAddress(0).ToText(), "10.0.0.1");
  EXPECT_EQ(f.topo.RouterAddress(1).ToText(), "10.0.1.1");
  // Distinct PoPs get distinct addresses.
  EXPECT_FALSE(f.topo.RouterAddress(0) == f.topo.RouterAddress(3));
}

TEST(TopologyTest, IxpLanAddressing) {
  Fixture f;
  const Ipv4 prefix = f.topo.IxpLanPrefix(f.ixp);
  EXPECT_EQ(prefix.ToText(), "196.60.0.0");
  const Ipv4 member = f.topo.IxpLanAddress(f.ixp, f.a_jnb);
  EXPECT_TRUE(InPrefix(member, prefix, 24));
  core::IxpId which;
  EXPECT_TRUE(f.topo.IsIxpAddress(member, &which));
  EXPECT_EQ(which, f.ixp);
  EXPECT_FALSE(f.topo.IsIxpAddress(f.topo.RouterAddress(f.a_jnb)));
}

TEST(TopologyTest, SecondIxpGetsDistinctLan) {
  Fixture f;
  const auto ixp2 = f.topo.AddIxp("NAPAfrica-CPT", f.cpt);
  EXPECT_EQ(f.topo.IxpLanPrefix(ixp2).ToText(), "196.60.1.0");
  EXPECT_EQ(f.topo.GetIxp(ixp2).name, "NAPAfrica-CPT");
}

TEST(TopologyTest, LinkWithIxpTag) {
  Fixture f;
  auto link = f.topo.AddLink(f.a_jnb, f.content, Relationship::kPeerToPeer,
                             f.ixp, 0.3);
  ASSERT_TRUE(link.ok());
  ASSERT_TRUE(f.topo.GetLink(link.value()).ixp.has_value());
  EXPECT_EQ(*f.topo.GetLink(link.value()).ixp, f.ixp);
}

TEST(RelationshipTest, NamesStable) {
  EXPECT_STREQ(ToString(Relationship::kCustomerToProvider), "c2p");
  EXPECT_STREQ(ToString(Relationship::kPeerToPeer), "p2p");
  EXPECT_STREQ(ToString(Relationship::kIntraAs), "intra");
}

}  // namespace
}  // namespace sisyphus::netsim
