// Tests for resampling and classical inference.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "stats/descriptive.h"
#include <cmath>

#include "stats/inference.h"

namespace sisyphus::stats {
namespace {

TEST(PermutationTest, DetectsRealDifference) {
  core::Rng rng(1);
  std::vector<double> a(50), b(50);
  for (auto& x : a) x = rng.Gaussian(0.0, 1.0);
  for (auto& x : b) x = rng.Gaussian(2.0, 1.0);
  const auto result = PermutationMeanDifferenceTest(a, b, 500, rng);
  EXPECT_LT(result.p_value, 0.01);
  EXPECT_NEAR(result.observed_statistic, -2.0, 0.6);
}

TEST(PermutationTest, NullEffectGivesHighPValue) {
  core::Rng rng(2);
  std::vector<double> a(40), b(40);
  for (auto& x : a) x = rng.Gaussian();
  for (auto& x : b) x = rng.Gaussian();
  const auto result = PermutationMeanDifferenceTest(a, b, 500, rng);
  EXPECT_GT(result.p_value, 0.05);
}

TEST(PermutationTest, PValueNeverZero) {
  // The +1 correction keeps p >= 1/(m+1) even for extreme statistics.
  core::Rng rng(3);
  std::vector<double> a{100, 101, 102};
  std::vector<double> b{0, 1, 2};
  const auto result = PermutationMeanDifferenceTest(a, b, 99, rng);
  EXPECT_GE(result.p_value, 1.0 / 100.0);
}

TEST(PermutationTest, CustomStatistic) {
  core::Rng rng(4);
  std::vector<double> a(60), b(60);
  // Same mean, different variance: a median-absolute statistic sees it.
  for (auto& x : a) x = rng.Gaussian(0.0, 0.2);
  for (auto& x : b) x = rng.Gaussian(0.0, 3.0);
  const auto result = PermutationTest(
      a, b,
      [](std::span<const double> xs, std::span<const double> ys) {
        return MedianAbsoluteDeviation(xs) - MedianAbsoluteDeviation(ys);
      },
      400, rng);
  EXPECT_LT(result.p_value, 0.01);
}

TEST(BootstrapTest, CiCoversPopulationMean) {
  core::Rng rng(5);
  std::vector<double> sample(200);
  for (auto& x : sample) x = rng.Gaussian(7.0, 2.0);
  const auto ci = BootstrapCi(
      sample, [](std::span<const double> xs) { return Mean(xs); }, 800, 0.95,
      rng);
  EXPECT_LT(ci.lower, 7.0);
  EXPECT_GT(ci.upper, 7.0);
  EXPECT_NEAR(ci.estimate, 7.0, 0.5);
  EXPECT_NEAR(ci.standard_error, 2.0 / std::sqrt(200.0), 0.05);
}

TEST(BootstrapTest, IntervalWidthShrinksWithSampleSize) {
  core::Rng rng(6);
  auto width = [&](std::size_t n) {
    std::vector<double> sample(n);
    for (auto& x : sample) x = rng.Gaussian();
    const auto ci = BootstrapCi(
        sample, [](std::span<const double> xs) { return Mean(xs); }, 400,
        0.95, rng);
    return ci.upper - ci.lower;
  };
  EXPECT_GT(width(50), width(5000));
}

TEST(WelchTest, DetectsDifferenceWithUnequalVariances) {
  core::Rng rng(7);
  std::vector<double> a(100), b(60);
  for (auto& x : a) x = rng.Gaussian(0.0, 0.5);
  for (auto& x : b) x = rng.Gaussian(3.0, 3.0);
  const auto result = WelchTTest(a, b);
  EXPECT_LT(result.p_value, 0.01);
  EXPECT_LT(result.mean_difference, 0.0);
  // Welch dof is far below the pooled n-2 under variance imbalance.
  EXPECT_LT(result.dof, 100.0);
}

TEST(WelchTest, IdenticalSamplesGivePOne) {
  std::vector<double> a{1, 2, 3, 4};
  const auto result = WelchTTest(a, a);
  EXPECT_NEAR(result.statistic, 0.0, 1e-12);
  EXPECT_NEAR(result.p_value, 1.0, 1e-9);
}

TEST(KsTest, SameDistributionHighP) {
  core::Rng rng(8);
  std::vector<double> a(300), b(300);
  for (auto& x : a) x = rng.Gaussian();
  for (auto& x : b) x = rng.Gaussian();
  const auto result = KolmogorovSmirnovTest(a, b);
  EXPECT_GT(result.p_value, 0.05);
  EXPECT_LT(result.statistic, 0.15);
}

TEST(KsTest, DetectsShapeDifference) {
  core::Rng rng(9);
  std::vector<double> a(300), b(300);
  for (auto& x : a) x = rng.Gaussian();
  for (auto& x : b) x = rng.Exponential(1.0);
  const auto result = KolmogorovSmirnovTest(a, b);
  EXPECT_LT(result.p_value, 0.001);
}

TEST(KsTest, StatisticIsOneForDisjointSupports) {
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{10, 11, 12};
  const auto result = KolmogorovSmirnovTest(a, b);
  EXPECT_DOUBLE_EQ(result.statistic, 1.0);
}

TEST(EmpiricalPValueTest, RankBasedValues) {
  const std::vector<double> null_dist{1, 2, 3, 4, 5, 6, 7, 8, 9};
  // observed above all: (0+1)/(9+1).
  EXPECT_DOUBLE_EQ(EmpiricalUpperPValue(10.0, null_dist), 0.1);
  // observed below all: (9+1)/(9+1).
  EXPECT_DOUBLE_EQ(EmpiricalUpperPValue(0.0, null_dist), 1.0);
  // ties count as "at least as extreme".
  EXPECT_DOUBLE_EQ(EmpiricalUpperPValue(5.0, null_dist), 0.6);
}

}  // namespace
}  // namespace sisyphus::stats
