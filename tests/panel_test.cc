// Tests for panel construction from raw measurements.
#include <gtest/gtest.h>

#include "measure/panel.h"

namespace sisyphus::measure {
namespace {

using core::SimTime;

SpeedTestRecord MakeRecord(const std::string& unit_asn,
                           const std::string& city, SimTime time,
                           double rtt) {
  SpeedTestRecord record;
  record.asn = core::Asn{static_cast<std::uint32_t>(std::stoul(unit_asn))};
  record.city = city;
  record.time = time;
  record.rtt_ms = rtt;
  return record;
}

TEST(PanelTest, BucketedMediansPerUnit) {
  MeasurementStore store;
  // Unit A: rtt 10 in bucket 0, 20 in bucket 1.
  store.Add(MakeRecord("100", "X", SimTime::FromHours(1), 9));
  store.Add(MakeRecord("100", "X", SimTime::FromHours(2), 10));
  store.Add(MakeRecord("100", "X", SimTime::FromHours(3), 11));
  store.Add(MakeRecord("100", "X", SimTime::FromHours(7), 20));
  // Unit B: constant 30.
  store.Add(MakeRecord("200", "Y", SimTime::FromHours(1), 30));
  store.Add(MakeRecord("200", "Y", SimTime::FromHours(8), 30));

  PanelOptions options;
  options.bucket = SimTime::FromHours(6);
  options.periods = 2;
  const Panel panel = BuildRttPanel(store, options);
  ASSERT_EQ(panel.units.size(), 2u);
  auto a = panel.Find("100 / X");
  ASSERT_TRUE(a.ok());
  EXPECT_DOUBLE_EQ(panel.units[a.value()].values[0], 10.0);
  EXPECT_DOUBLE_EQ(panel.units[a.value()].values[1], 20.0);
  EXPECT_FALSE(panel.Find("300 / Z").ok());
}

TEST(PanelTest, SparseUnitsDropped) {
  MeasurementStore store;
  // Unit with data only in 1 of 8 buckets (87% missing > 25% cap).
  store.Add(MakeRecord("100", "X", SimTime::FromHours(1), 10));
  PanelOptions options;
  options.bucket = SimTime::FromHours(6);
  options.periods = 8;
  const Panel panel = BuildRttPanel(store, options);
  EXPECT_TRUE(panel.units.empty());
}

TEST(PanelTest, InterpolationFillsGaps) {
  MeasurementStore store;
  store.Add(MakeRecord("100", "X", SimTime::FromHours(1), 10));
  // bucket 1 empty
  store.Add(MakeRecord("100", "X", SimTime::FromHours(13), 30));
  PanelOptions options;
  options.bucket = SimTime::FromHours(6);
  options.periods = 3;
  options.max_missing_fraction = 0.5;
  const Panel panel = BuildRttPanel(store, options);
  ASSERT_EQ(panel.units.size(), 1u);
  EXPECT_DOUBLE_EQ(panel.units[0].values[1], 20.0);  // midpoint
  EXPECT_NEAR(panel.units[0].missing_fraction, 1.0 / 3.0, 1e-12);
}

MeasurementStore MakeStoreWithUnits(const std::vector<std::string>& asns,
                                    std::size_t periods, double base) {
  MeasurementStore store;
  for (std::size_t u = 0; u < asns.size(); ++u) {
    for (std::size_t t = 0; t < periods; ++t) {
      store.Add(MakeRecord(asns[u], "City",
                           SimTime::FromHours(6.0 * t + 1.0),
                           base + static_cast<double>(u) +
                               0.1 * static_cast<double>(t)));
    }
  }
  return store;
}

TEST(SyntheticControlInputBuilderTest, AssemblesTreatedAndDonors) {
  const auto store =
      MakeStoreWithUnits({"100", "200", "300", "400"}, 10, 20.0);
  PanelOptions options;
  options.bucket = SimTime::FromHours(6);
  options.periods = 10;
  const Panel panel = BuildRttPanel(store, options);
  std::vector<std::string> skipped;
  auto input = MakeSyntheticControlInput(
      panel, "100 / City", {"200 / City", "300 / City", "ghost / City"},
      SimTime::FromHours(36), &skipped);
  ASSERT_TRUE(input.ok());
  EXPECT_EQ(input.value().donors.cols(), 2u);
  EXPECT_EQ(input.value().pre_periods, 6u);
  EXPECT_EQ(input.value().treated.size(), 10u);
  ASSERT_EQ(skipped.size(), 1u);
  EXPECT_EQ(skipped[0], "ghost / City");
  // Treated unit in the donor list is ignored, not used as its own donor.
  auto self_input = MakeSyntheticControlInput(
      panel, "100 / City", {"100 / City", "200 / City", "300 / City"},
      SimTime::FromHours(36));
  ASSERT_TRUE(self_input.ok());
  EXPECT_EQ(self_input.value().donors.cols(), 2u);
}

TEST(SyntheticControlInputBuilderTest, ErrorsSurface) {
  const auto store = MakeStoreWithUnits({"100", "200"}, 10, 20.0);
  PanelOptions options;
  options.bucket = SimTime::FromHours(6);
  options.periods = 10;
  const Panel panel = BuildRttPanel(store, options);
  // Unknown treated unit.
  EXPECT_FALSE(MakeSyntheticControlInput(panel, "nope / X", {"200 / City"},
                                         SimTime::FromHours(36))
                   .ok());
  // No usable donors.
  EXPECT_FALSE(MakeSyntheticControlInput(panel, "100 / City", {"ghost / X"},
                                         SimTime::FromHours(36))
                   .ok());
  // Treatment before origin.
  EXPECT_FALSE(MakeSyntheticControlInput(panel, "100 / City", {"200 / City"},
                                         SimTime::FromHours(0))
                   .ok());
  // Treatment beyond the panel: no post periods -> Validate fails.
  EXPECT_FALSE(MakeSyntheticControlInput(panel, "100 / City", {"200 / City"},
                                         SimTime::FromHours(600))
                   .ok());
}

TEST(PanelTest, DroppedUnitFindNamesSparsityCause) {
  MeasurementStore store;
  // One healthy unit and one sparse unit (1 of 8 buckets observed).
  for (int t = 0; t < 8; ++t) {
    store.Add(MakeRecord("100", "X", SimTime::FromHours(6.0 * t + 1), 10));
  }
  store.Add(MakeRecord("200", "Y", SimTime::FromHours(1), 30));
  PanelOptions options;
  options.bucket = SimTime::FromHours(6);
  options.periods = 8;
  const Panel panel = BuildRttPanel(store, options);
  ASSERT_EQ(panel.units.size(), 1u);
  ASSERT_EQ(panel.dropped.size(), 1u);
  EXPECT_EQ(panel.dropped[0].unit, "200 / Y");
  EXPECT_NEAR(panel.dropped[0].missing_fraction, 7.0 / 8.0, 1e-12);

  auto found = panel.Find("200 / Y");
  ASSERT_FALSE(found.ok());
  EXPECT_EQ(found.error().code(), core::ErrorCode::kNotFound);
  EXPECT_NE(found.error().message().find("max_missing_fraction"),
            std::string::npos);
  EXPECT_NE(found.error().message().find("sparsity"), std::string::npos);
  // A unit that never existed gets the plain not-found message.
  auto ghost = panel.Find("300 / Z");
  ASSERT_FALSE(ghost.ok());
  EXPECT_EQ(ghost.error().message().find("max_missing_fraction"),
            std::string::npos);
}

TEST(PanelTest, ObservedMaskMarksInterpolatedBuckets) {
  MeasurementStore store;
  store.Add(MakeRecord("100", "X", SimTime::FromHours(1), 10));
  // bucket 1 empty -> interpolated
  store.Add(MakeRecord("100", "X", SimTime::FromHours(13), 30));
  PanelOptions options;
  options.bucket = SimTime::FromHours(6);
  options.periods = 3;
  options.max_missing_fraction = 0.5;
  const Panel panel = BuildRttPanel(store, options);
  ASSERT_EQ(panel.units.size(), 1u);
  const auto& unit = panel.units[0];
  ASSERT_EQ(unit.observed.size(), 3u);
  EXPECT_TRUE(unit.observed[0]);
  EXPECT_FALSE(unit.observed[1]);
  EXPECT_TRUE(unit.observed[2]);
}

TEST(PanelTest, OutOfOrderRecordsAreSortedBeforeBucketing) {
  // Clock-skewed / retried records arrive out of time order; the panel
  // builder must tolerate that rather than tripping the time-series
  // monotonicity requirement.
  MeasurementStore store;
  store.Add(MakeRecord("100", "X", SimTime::FromHours(13), 30));
  store.Add(MakeRecord("100", "X", SimTime::FromHours(1), 10));
  store.Add(MakeRecord("100", "X", SimTime::FromHours(7), 20));
  PanelOptions options;
  options.bucket = SimTime::FromHours(6);
  options.periods = 3;
  const Panel panel = BuildRttPanel(store, options);
  ASSERT_EQ(panel.units.size(), 1u);
  EXPECT_DOUBLE_EQ(panel.units[0].values[0], 10.0);
  EXPECT_DOUBLE_EQ(panel.units[0].values[1], 20.0);
  EXPECT_DOUBLE_EQ(panel.units[0].values[2], 30.0);
}

TEST(SyntheticControlInputBuilderTest, MissingnessMaskPropagates) {
  MeasurementStore store;
  // Treated: fully observed. Donor: bucket 1 of 4 missing.
  for (int t = 0; t < 4; ++t) {
    store.Add(MakeRecord("100", "X", SimTime::FromHours(6.0 * t + 1), 20));
    if (t != 1) {
      store.Add(MakeRecord("200", "Y", SimTime::FromHours(6.0 * t + 1), 30));
    }
  }
  store.Add(MakeRecord("300", "Z", SimTime::FromHours(1), 25));
  store.Add(MakeRecord("300", "Z", SimTime::FromHours(7), 25));
  store.Add(MakeRecord("300", "Z", SimTime::FromHours(13), 25));
  store.Add(MakeRecord("300", "Z", SimTime::FromHours(19), 25));
  PanelOptions options;
  options.bucket = SimTime::FromHours(6);
  options.periods = 4;
  options.max_missing_fraction = 0.5;
  const Panel panel = BuildRttPanel(store, options);
  auto input = MakeSyntheticControlInput(panel, "100 / X",
                                         {"200 / Y", "300 / Z"},
                                         SimTime::FromHours(14));
  ASSERT_TRUE(input.ok());
  ASSERT_TRUE(input.value().HasMask());
  ASSERT_EQ(input.value().treated_observed.size(), 4u);
  for (double v : input.value().treated_observed) {
    EXPECT_DOUBLE_EQ(v, 1.0);
  }
  const auto& donor_mask = input.value().donor_observed;
  ASSERT_EQ(donor_mask.rows(), 4u);
  ASSERT_EQ(donor_mask.cols(), 2u);
  EXPECT_DOUBLE_EQ(donor_mask(1, 0), 0.0);  // 200 / Y missing bucket 1
  EXPECT_DOUBLE_EQ(donor_mask(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(donor_mask(1, 1), 1.0);  // 300 / Z fully observed
  EXPECT_NEAR(input.value().DonorObservedFraction(), 7.0 / 8.0, 1e-12);
}

}  // namespace
}  // namespace sisyphus::measure
