// Tests for d-separation: textbook structures, the paper's running
// example, and a property sweep checking the linear-time reachability
// algorithm against the exponential path-enumeration oracle on random
// DAGs (DESIGN.md §4).
#include <gtest/gtest.h>

#include "causal/dag_parser.h"
#include "causal/dseparation.h"
#include "core/rng.h"

namespace sisyphus::causal {
namespace {

Dag MustParse(const char* text) {
  auto dag = ParseDag(text);
  EXPECT_TRUE(dag.ok()) << text;
  return std::move(dag).value();
}

NodeId N(const Dag& dag, std::string_view name) {
  return dag.Node(name).value();
}

// ---- Canonical three-node structures ---------------------------------------

TEST(DSeparationTest, ChainBlocksWhenMiddleObserved) {
  const Dag dag = MustParse("A -> B -> C");
  EXPECT_FALSE(IsDSeparated(dag, N(dag, "A"), N(dag, "C"), NodeSet{}));
  EXPECT_TRUE(
      IsDSeparated(dag, N(dag, "A"), N(dag, "C"), NodeSet{N(dag, "B")}));
}

TEST(DSeparationTest, ForkBlocksWhenRootObserved) {
  const Dag dag = MustParse("B -> A; B -> C");
  EXPECT_FALSE(IsDSeparated(dag, N(dag, "A"), N(dag, "C"), NodeSet{}));
  EXPECT_TRUE(
      IsDSeparated(dag, N(dag, "A"), N(dag, "C"), NodeSet{N(dag, "B")}));
}

TEST(DSeparationTest, ColliderBlocksUnlessObserved) {
  const Dag dag = MustParse("A -> B; C -> B");
  // Collider blocks by default...
  EXPECT_TRUE(IsDSeparated(dag, N(dag, "A"), N(dag, "C"), NodeSet{}));
  // ...and opens when conditioned on.
  EXPECT_FALSE(
      IsDSeparated(dag, N(dag, "A"), N(dag, "C"), NodeSet{N(dag, "B")}));
}

TEST(DSeparationTest, ColliderOpensViaDescendant) {
  const Dag dag = MustParse("A -> B; C -> B; B -> D");
  EXPECT_FALSE(
      IsDSeparated(dag, N(dag, "A"), N(dag, "C"), NodeSet{N(dag, "D")}));
}

TEST(DSeparationTest, RunningExample) {
  // The paper's R <- C -> L with direct R -> L.
  const Dag dag = MustParse("C -> R; C -> L; R -> L");
  // R and L connected both directly and through the backdoor.
  EXPECT_FALSE(IsDSeparated(dag, N(dag, "R"), N(dag, "L"), NodeSet{}));
  // Conditioning on C leaves only the direct edge (still connected).
  EXPECT_FALSE(
      IsDSeparated(dag, N(dag, "R"), N(dag, "L"), NodeSet{N(dag, "C")}));
  // Without the direct edge, C separates them.
  const Dag no_direct = MustParse("C -> R; C -> L");
  EXPECT_TRUE(IsDSeparated(no_direct, N(no_direct, "R"), N(no_direct, "L"),
                           NodeSet{N(no_direct, "C")}));
}

TEST(DSeparationTest, MShapeBiasStructure) {
  // The M-graph: conditioning on the collider M *creates* dependence
  // between A and B even though they are marginally independent.
  const Dag dag = MustParse("U1 -> A; U1 -> M; U2 -> M; U2 -> B");
  EXPECT_TRUE(IsDSeparated(dag, N(dag, "A"), N(dag, "B"), NodeSet{}));
  EXPECT_FALSE(
      IsDSeparated(dag, N(dag, "A"), N(dag, "B"), NodeSet{N(dag, "M")}));
}

TEST(DSeparationTest, PreconditionsEnforced) {
  const Dag dag = MustParse("A -> B");
  EXPECT_THROW(IsDSeparated(dag, N(dag, "A"), N(dag, "A"), NodeSet{}),
               std::logic_error);
  EXPECT_THROW(
      IsDSeparated(dag, N(dag, "A"), N(dag, "B"), NodeSet{N(dag, "A")}),
      std::logic_error);
}

// ---- Path enumeration --------------------------------------------------------

TEST(PathTest, EnumeratesAllSimplePaths) {
  const Dag dag = MustParse("C -> R; C -> L; R -> L");
  const auto paths = EnumeratePaths(dag, N(dag, "R"), N(dag, "L"));
  // R -> L and R <- C -> L.
  ASSERT_EQ(paths.size(), 2u);
}

TEST(PathTest, BackdoorClassification) {
  const Dag dag = MustParse("C -> R; C -> L; R -> L");
  const auto paths = EnumeratePaths(dag, N(dag, "R"), N(dag, "L"));
  std::size_t backdoor = 0;
  for (const auto& path : paths) {
    if (path.StartsWithArrowIntoStart()) ++backdoor;
  }
  EXPECT_EQ(backdoor, 1u);
}

TEST(PathTest, ToTextRendersArrows) {
  const Dag dag = MustParse("C -> R; C -> L");
  const auto paths = EnumeratePaths(dag, N(dag, "R"), N(dag, "L"));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].ToText(dag), "R <- C -> L");
}

TEST(PathTest, OpenBackdoorPathsBlockedByAdjustment) {
  const Dag dag = MustParse("C -> R; C -> L; R -> L");
  EXPECT_EQ(
      OpenBackdoorPaths(dag, N(dag, "R"), N(dag, "L"), NodeSet{}).size(), 1u);
  EXPECT_TRUE(OpenBackdoorPaths(dag, N(dag, "R"), N(dag, "L"),
                                NodeSet{N(dag, "C")})
                  .empty());
}

// ---- Property test: fast algorithm vs path-enumeration oracle ---------------

bool OracleDSeparated(const Dag& dag, NodeId x, NodeId y, const NodeSet& z) {
  for (const Path& path : EnumeratePaths(dag, x, y)) {
    if (IsPathOpen(dag, path, z)) return false;
  }
  return true;
}

class DSeparationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DSeparationPropertyTest, MatchesOracleOnRandomDags) {
  core::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 40; ++trial) {
    // Random DAG over 7 nodes: edge i->j (i<j) with probability 0.3.
    const std::size_t n = 7;
    Dag dag;
    std::vector<NodeId> nodes;
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(dag.AddNode("V" + std::to_string(trial) + "_" +
                                  std::to_string(i)));
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (rng.Bernoulli(0.3)) {
          ASSERT_TRUE(dag.AddEdge(nodes[i], nodes[j]).ok());
        }
      }
    }
    // Random query: x, y distinct, z a random subset of the rest.
    const auto xi = static_cast<std::size_t>(rng.UniformInt(0, n - 1));
    auto yi = static_cast<std::size_t>(rng.UniformInt(0, n - 2));
    if (yi >= xi) ++yi;
    NodeSet z;
    for (std::size_t k = 0; k < n; ++k) {
      if (k != xi && k != yi && rng.Bernoulli(0.3)) z.Insert(nodes[k]);
    }
    EXPECT_EQ(IsDSeparated(dag, nodes[xi], nodes[yi], z),
              OracleDSeparated(dag, nodes[xi], nodes[yi], z))
        << "trial " << trial << " x=" << xi << " y=" << yi;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DSeparationPropertyTest,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace sisyphus::causal
