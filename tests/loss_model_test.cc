// Tests for the packet-loss model and its effect on speed-test
// throughput (Mathis limit).
#include <gtest/gtest.h>

#include <memory>

#include "measure/speedtest.h"
#include "netsim/simulator.h"

namespace sisyphus::netsim {
namespace {

using core::Asn;
using core::SimTime;

struct Fixture {
  Topology topo;
  PopIndex a = 0, b = 0;
  core::LinkId link;

  Fixture() {
    const auto city = topo.cities().Add({"X", {0, 0}, 0});
    a = topo.AddPop(Asn{1}, city, AsRole::kAccess).value();
    b = topo.AddPop(Asn{2}, city, AsRole::kContent).value();
    link = topo.AddLink(a, b, Relationship::kPeerToPeer, std::nullopt, 2.0)
               .value();
  }
};

TEST(LossModelTest, FloorAtLowUtilization) {
  Fixture f;
  LatencyModel model(f.topo);
  // Base utilization 0.3 at the trough: loss = base only.
  EXPECT_NEAR(model.LinkLossRate(f.link, SimTime::FromHours(4.0)),
              model.options().base_loss, 1e-9);
}

TEST(LossModelTest, CongestionLossKicksInAboveOnset) {
  Fixture f;
  LatencyModel model(f.topo);
  model.AddUtilizationShock(f.link, SimTime(0), SimTime::FromHours(24), 0.6);
  const double congested =
      model.LinkLossRate(f.link, SimTime::FromHours(20.5));
  EXPECT_GT(congested, 10.0 * model.options().base_loss);
  EXPECT_LE(congested, 1.0);
}

TEST(LossModelTest, LossMonotoneInUtilization) {
  Fixture f;
  LatencyModel model(f.topo);
  double previous = -1.0;
  for (double extra : {0.0, 0.2, 0.4, 0.6}) {
    LatencyModel fresh(f.topo);
    fresh.AddUtilizationShock(f.link, SimTime(0), SimTime::FromHours(24),
                              extra);
    const double loss = fresh.LinkLossRate(f.link, SimTime::FromHours(20.5));
    EXPECT_GE(loss, previous);
    previous = loss;
  }
}

TEST(LossModelTest, PathLossCombinesBothDirections) {
  Fixture f;
  LatencyModel model(f.topo);
  BgpSimulator bgp(f.topo);
  auto route = bgp.Route(f.a, f.b);
  ASSERT_TRUE(route.ok());
  const SimTime t = SimTime::FromHours(4.0);
  const double link_loss = model.LinkLossRate(f.link, t);
  const double expected = 1.0 - (1.0 - link_loss) * (1.0 - link_loss);
  EXPECT_NEAR(model.PathLossRate(route.value(), t), expected, 1e-12);
}

TEST(LossModelTest, SpeedTestRecordsLossAndThroughputDrops) {
  Fixture f;
  auto sim = std::make_unique<NetworkSimulator>(std::move(f.topo));
  core::Rng rng(1);
  auto clean = measure::RunSpeedTest(*sim, f.a, f.b,
                                     measure::Intent::kBaseline, rng);
  ASSERT_TRUE(clean.ok());
  EXPECT_GT(clean.value().loss_rate, 0.0);
  EXPECT_LT(clean.value().loss_rate, 0.01);

  // Saturate the link: loss jumps, throughput collapses.
  sim->latency().AddUtilizationShock(f.link, SimTime(0),
                                     SimTime::FromHours(24), 0.7);
  double clean_sum = 0.0, lossy_sum = 0.0;
  for (int i = 0; i < 100; ++i) {
    lossy_sum += measure::RunSpeedTest(*sim, f.a, f.b,
                                       measure::Intent::kBaseline, rng)
                     .value()
                     .throughput_mbps;
  }
  sim->latency().ClearShocks();
  for (int i = 0; i < 100; ++i) {
    clean_sum += measure::RunSpeedTest(*sim, f.a, f.b,
                                       measure::Intent::kBaseline, rng)
                     .value()
                     .throughput_mbps;
  }
  EXPECT_LT(lossy_sum, 0.5 * clean_sum);
}

TEST(LossModelTest, MathisLimitScalesWithRttAndLoss) {
  // Two fixtures differing only in propagation: longer RTT -> lower
  // single-flow throughput at equal loss.
  Fixture near;
  Fixture far;
  far.topo.MutableLink(far.link).propagation_ms = 40.0;
  auto near_sim = std::make_unique<NetworkSimulator>(std::move(near.topo));
  auto far_sim = std::make_unique<NetworkSimulator>(std::move(far.topo));
  core::Rng rng(2);
  double near_sum = 0.0, far_sum = 0.0;
  for (int i = 0; i < 200; ++i) {
    near_sum += measure::RunSpeedTest(*near_sim, near.a, near.b,
                                      measure::Intent::kBaseline, rng)
                    .value()
                    .throughput_mbps;
    far_sum += measure::RunSpeedTest(*far_sim, far.a, far.b,
                                     measure::Intent::kBaseline, rng)
                   .value()
                   .throughput_mbps;
  }
  EXPECT_GT(near_sum, 1.5 * far_sum);
}

}  // namespace
}  // namespace sisyphus::netsim
