// Tests for edge steering (resolver-rotation knob) and CSV export.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "measure/edge_steering.h"
#include "measure/export.h"
#include "measure/speedtest.h"

namespace sisyphus::measure {
namespace {

using core::Asn;
using core::SimTime;
using netsim::AsRole;
using netsim::NetworkSimulator;
using netsim::Relationship;
using netsim::Topology;

struct Fixture {
  std::unique_ptr<NetworkSimulator> sim;
  netsim::PopIndex user = 0, near_site = 0, far_site = 0;
  core::LinkId near_link, far_link;

  Fixture() {
    Topology topo;
    const auto city = topo.cities().Add({"X", {0, 0}, 0});
    user = topo.AddPop(Asn{100}, city, AsRole::kAccess).value();
    const auto transit = topo.AddPop(Asn{2}, city, AsRole::kTransit).value();
    near_site = topo.AddPop(Asn{36444}, city, AsRole::kMeasurement).value();
    far_site = topo.AddPop(Asn{36445}, city, AsRole::kMeasurement).value();
    EXPECT_TRUE(topo.AddLink(user, transit,
                             Relationship::kCustomerToProvider, std::nullopt,
                             0.3)
                    .ok());
    near_link = topo.AddLink(near_site, transit,
                             Relationship::kCustomerToProvider, std::nullopt,
                             0.3)
                    .value();
    far_link = topo.AddLink(far_site, transit,
                            Relationship::kCustomerToProvider, std::nullopt,
                            5.0)
                   .value();
    sim = std::make_unique<NetworkSimulator>(std::move(topo));
  }
};

TEST(EdgeSteeringTest, NearestPicksLowerRttSite) {
  Fixture f;
  EdgeSteering steering(*f.sim, {f.near_site, f.far_site});
  core::Rng rng(1);
  auto chosen = steering.ChooseServer(f.user, rng);
  ASSERT_TRUE(chosen.ok());
  EXPECT_EQ(chosen.value(), f.near_site);
  ASSERT_EQ(steering.decisions().size(), 1u);
  EXPECT_EQ(steering.decisions()[0].mode, SteeringMode::kNearest);
}

TEST(EdgeSteeringTest, RandomModeVisitsBothSites) {
  Fixture f;
  EdgeSteering steering(*f.sim, {f.near_site, f.far_site});
  steering.SetMode(SteeringMode::kRandomSite);
  core::Rng rng(2);
  std::size_t far_count = 0;
  for (int i = 0; i < 200; ++i) {
    auto chosen = steering.ChooseServer(f.user, rng);
    ASSERT_TRUE(chosen.ok());
    if (chosen.value() == f.far_site) ++far_count;
  }
  EXPECT_GT(far_count, 60u);
  EXPECT_LT(far_count, 140u);
}

TEST(EdgeSteeringTest, PinForcesSite) {
  Fixture f;
  EdgeSteering steering(*f.sim, {f.near_site, f.far_site});
  steering.Pin(f.far_site);
  EXPECT_EQ(steering.mode(), SteeringMode::kPinned);
  core::Rng rng(3);
  for (int i = 0; i < 5; ++i) {
    auto chosen = steering.ChooseServer(f.user, rng);
    ASSERT_TRUE(chosen.ok());
    EXPECT_EQ(chosen.value(), f.far_site);
  }
  EXPECT_THROW(steering.Pin(f.user), std::logic_error);  // not a site
}

TEST(EdgeSteeringTest, UnreachableSitesSkippedOrFail) {
  Fixture f;
  const auto far_link = f.far_link;
  f.sim->topology().MutableLink(far_link).up = false;
  f.sim->bgp().InvalidateCache();
  EdgeSteering steering(*f.sim, {f.far_site});
  core::Rng rng(4);
  auto chosen = steering.ChooseServer(f.user, rng);
  ASSERT_FALSE(chosen.ok());
  EXPECT_EQ(chosen.error().code(), core::ErrorCode::kNotFound);
  // With both sites configured, the reachable one is used.
  EdgeSteering fallback(*f.sim, {f.near_site, f.far_site});
  fallback.SetMode(SteeringMode::kRandomSite);
  for (int i = 0; i < 20; ++i) {
    auto pick = fallback.ChooseServer(f.user, rng);
    ASSERT_TRUE(pick.ok());
    EXPECT_EQ(pick.value(), f.near_site);
  }
}

TEST(EdgeSteeringTest, ModeNamesStable) {
  EXPECT_STREQ(ToString(SteeringMode::kNearest), "nearest");
  EXPECT_STREQ(ToString(SteeringMode::kPinned), "pinned");
}

// ---- CSV export -----------------------------------------------------------------

TEST(ExportTest, StoreCsvHasHeaderAndRows) {
  Fixture f;
  core::Rng rng(5);
  MeasurementStore store;
  for (int i = 0; i < 3; ++i) {
    auto record =
        RunSpeedTest(*f.sim, f.user, f.near_site, Intent::kBaseline, rng);
    ASSERT_TRUE(record.ok());
    store.Add(std::move(record).value());
  }
  const std::string csv = StoreToCsv(store);
  // Header + 3 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
  EXPECT_EQ(csv.substr(0, 3), "id,");
  EXPECT_NE(csv.find("address_family"), std::string::npos);
  EXPECT_NE(csv.find("baseline,ipv4"), std::string::npos);
  EXPECT_NE(csv.find("loss_rate"), std::string::npos);
  EXPECT_NE(csv.find("100 2 36444"), std::string::npos);  // asn path
}

TEST(ExportTest, PanelCsvWideFormat) {
  Panel panel;
  panel.units.push_back({"100 / X", {1.0, 2.0}, 0.0, {}});
  panel.units.push_back({"200 / Y", {3.0, 4.0}, 0.0, {}});
  const std::string csv = PanelToCsv(panel);
  EXPECT_EQ(csv, "period,100 / X,200 / Y\n0,1,3\n1,2,4\n");
}

TEST(ExportTest, DatasetCsvAndQuoting) {
  causal::Dataset data;
  ASSERT_TRUE(data.AddColumn("plain", {1.5}).ok());
  ASSERT_TRUE(data.AddColumn("with,comma", {2.0}).ok());
  const std::string csv = DatasetToCsv(data);
  EXPECT_EQ(csv, "plain,\"with,comma\"\n1.5,2\n");
}

TEST(ExportTest, WriteTextFileRoundTrip) {
  const std::string path = "/tmp/sisyphus_export_test.csv";
  ASSERT_TRUE(WriteTextFile(path, "a,b\n1,2\n").ok());
  std::ifstream file(path);
  std::string line;
  std::getline(file, line);
  EXPECT_EQ(line, "a,b");
  std::remove(path.c_str());
}

TEST(ExportTest, WriteTextFileBadPathFails) {
  EXPECT_FALSE(WriteTextFile("/nonexistent_dir_xyz/file.csv", "x").ok());
}

}  // namespace
}  // namespace sisyphus::measure
