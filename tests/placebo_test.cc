// Tests for placebo inference: real effects get low p-values, null
// effects get high ones, and the bookkeeping (skipped donors, pool
// construction) is correct.
#include <gtest/gtest.h>

#include <cmath>

#include "causal/placebo.h"
#include "core/rng.h"

namespace sisyphus::causal {
namespace {

SyntheticControlInput MakeInput(std::size_t periods, std::size_t pre,
                                std::size_t donors, double effect,
                                double noise_sd, core::Rng& rng) {
  SyntheticControlInput input;
  input.pre_periods = pre;
  input.donors = stats::Matrix(periods, donors);
  // Donors share two latent factors, like RTT series sharing diurnal and
  // weekly structure.
  std::vector<double> loading1(donors), loading2(donors);
  for (std::size_t j = 0; j < donors; ++j) {
    loading1[j] = 0.5 + rng.NextDouble();
    loading2[j] = rng.NextDouble();
    input.donor_names.push_back("d" + std::to_string(j));
  }
  for (std::size_t t = 0; t < periods; ++t) {
    const double f1 = std::sin(2.0 * M_PI * static_cast<double>(t) / 12.0);
    const double f2 = 0.02 * static_cast<double>(t);
    for (std::size_t j = 0; j < donors; ++j) {
      input.donors(t, j) = 20.0 + 4.0 * loading1[j] * f1 +
                           10.0 * loading2[j] * f2 +
                           noise_sd * rng.Gaussian();
    }
  }
  input.treated.resize(periods);
  for (std::size_t t = 0; t < periods; ++t) {
    const double f1 = std::sin(2.0 * M_PI * static_cast<double>(t) / 12.0);
    const double f2 = 0.02 * static_cast<double>(t);
    input.treated[t] = 20.0 + 4.0 * 0.9 * f1 + 10.0 * 0.5 * f2 +
                       noise_sd * rng.Gaussian() +
                       (t >= pre ? effect : 0.0);
  }
  return input;
}

TEST(PlaceboTest, StrongEffectGetsLowPValue) {
  core::Rng rng(1);
  const auto input = MakeInput(120, 80, 20, 8.0, 0.5, rng);
  auto result = RunPlaceboAnalysis(input);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().p_value, 0.1);
  EXPECT_NEAR(result.value().treated_fit.average_effect, 8.0, 1.5);
}

TEST(PlaceboTest, NullEffectGetsHighPValue) {
  core::Rng rng(2);
  const auto input = MakeInput(120, 80, 20, 0.0, 0.5, rng);
  auto result = RunPlaceboAnalysis(input);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().p_value, 0.1);
}

TEST(PlaceboTest, PValueBoundedBelowByPoolSize) {
  core::Rng rng(3);
  const auto input = MakeInput(80, 60, 10, 50.0, 0.3, rng);
  auto result = RunPlaceboAnalysis(input);
  ASSERT_TRUE(result.ok());
  // With <= 10 placebo runs, p >= 1/11.
  EXPECT_GE(result.value().p_value, 1.0 / 11.0 - 1e-12);
}

TEST(PlaceboTest, RatioPoolHasOneEntryPerUsableDonor) {
  core::Rng rng(4);
  const auto input = MakeInput(80, 60, 12, 1.0, 0.4, rng);
  auto result = RunPlaceboAnalysis(input);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().placebo_ratios.size() +
                result.value().skipped_donors,
            12u);
}

TEST(PlaceboTest, ClassicalMethodAlsoWorks) {
  core::Rng rng(5);
  const auto input = MakeInput(120, 80, 15, 8.0, 0.5, rng);
  PlaceboOptions options;
  options.method = SyntheticControlMethod::kClassical;
  auto result = RunPlaceboAnalysis(input, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().p_value, 0.15);
}

TEST(PlaceboTest, TooFewDonorsRejected) {
  core::Rng rng(6);
  const auto input = MakeInput(40, 30, 2, 1.0, 0.2, rng);
  auto result = RunPlaceboAnalysis(input);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), core::ErrorCode::kInvalidArgument);
}

TEST(PlaceboTest, InvalidInputPropagates) {
  SyntheticControlInput bad;
  bad.treated = {1, 2};
  bad.donors = stats::Matrix(2, 3);
  bad.pre_periods = 0;
  EXPECT_FALSE(RunPlaceboAnalysis(bad).ok());
}

// Calibration sweep: under the null, the placebo p-value should be
// roughly uniform — reject at 10% no more than ~a third of the time on
// a handful of seeds (loose, but catches systematic anti-conservatism).
class PlaceboCalibrationTest : public ::testing::TestWithParam<int> {};

TEST_P(PlaceboCalibrationTest, NullNotRejectedAggressively) {
  core::Rng rng(static_cast<std::uint64_t>(50 + GetParam()));
  const auto input = MakeInput(100, 70, 16, 0.0, 0.6, rng);
  auto result = RunPlaceboAnalysis(input);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().p_value, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlaceboCalibrationTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace sisyphus::causal
