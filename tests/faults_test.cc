// Tests for the fault-injection layer: deterministic replay, outage
// window semantics, MNAR coupling, and record-level fault application.
#include <gtest/gtest.h>

#include <cmath>

#include "measure/faults.h"

namespace sisyphus::measure {
namespace {

using core::SimTime;

SpeedTestRecord MakeRecord(std::size_t hops = 5) {
  SpeedTestRecord record;
  record.time = SimTime::FromHours(12);
  record.rtt_ms = 25.0;
  record.loss_rate = 0.01;
  record.throughput_mbps = 40.0;
  for (std::size_t i = 0; i < hops; ++i) {
    record.traceroute.hops.push_back({});
  }
  return record;
}

TEST(OutageWindowTest, HalfOpenContainment) {
  const OutageWindow window{SimTime(10), SimTime(20)};
  EXPECT_FALSE(window.Contains(SimTime(9)));
  EXPECT_TRUE(window.Contains(SimTime(10)));
  EXPECT_TRUE(window.Contains(SimTime(19)));
  EXPECT_FALSE(window.Contains(SimTime(20)));
}

TEST(GenerateOutageWindowsTest, DeterministicSortedAndBounded) {
  const auto a = GenerateOutageWindows(7, SimTime::FromDays(10), 5,
                                       SimTime::FromHours(6));
  const auto b = GenerateOutageWindows(7, SimTime::FromDays(10), 5,
                                       SimTime::FromHours(6));
  ASSERT_EQ(a.size(), 5u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].end, b[i].end);
    EXPECT_EQ(a[i].end - a[i].start, SimTime::FromHours(6));
    EXPECT_GE(a[i].start, SimTime(0));
    EXPECT_LE(a[i].end, SimTime::FromDays(10));
    if (i > 0) {
      EXPECT_GE(a[i].start, a[i - 1].start);
    }
  }
  // A different seed moves the windows.
  const auto c = GenerateOutageWindows(8, SimTime::FromDays(10), 5,
                                       SimTime::FromHours(6));
  bool any_differ = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].start != c[i].start) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(FaultInjectorTest, DarkWindowQueriesAreConstAndExact) {
  FaultPlan plan;
  plan.vantage_outages.push_back(
      {3, {{SimTime::FromHours(2), SimTime::FromHours(4)}}});
  plan.collector_outages.push_back(
      {SimTime::FromHours(10), SimTime::FromHours(11)});
  const FaultInjector injector(plan);
  EXPECT_TRUE(injector.VantageDark(3, SimTime::FromHours(3)));
  EXPECT_FALSE(injector.VantageDark(3, SimTime::FromHours(4)));
  EXPECT_FALSE(injector.VantageDark(4, SimTime::FromHours(3)));
  EXPECT_TRUE(injector.CollectorDark(SimTime::FromHours(10)));
  EXPECT_FALSE(injector.CollectorDark(SimTime::FromHours(12)));
  // Pure queries leave the stats untouched.
  EXPECT_EQ(injector.stats().vantage_outage_hits, 0u);
}

TEST(FaultInjectorTest, ProbeFaultStreamIsSeedDeterministic) {
  FaultPlan plan;
  plan.seed = 99;
  plan.probe_loss_probability = 0.3;
  FaultInjector a(plan), b(plan);
  core::Rng rng_a(4242), rng_b(4242);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.SampleProbeFault(0.0, rng_a), b.SampleProbeFault(0.0, rng_b));
  }
  EXPECT_EQ(a.stats().probes_lost, b.stats().probes_lost);
  EXPECT_GT(a.stats().probes_lost, 20u);  // ~60 expected
  EXPECT_LT(a.stats().probes_lost, 120u);
}

TEST(FaultInjectorTest, PlanSeedChangesDecisionsOnTheSameStream) {
  // The plan seed is mixed into every decision, so two plans differing
  // only in seed realize different faults from identical caller streams.
  FaultPlan plan_a, plan_b;
  plan_a.seed = 1;
  plan_b.seed = 2;
  plan_a.probe_loss_probability = plan_b.probe_loss_probability = 0.5;
  FaultInjector a(plan_a), b(plan_b);
  core::Rng rng_a(7), rng_b(7);
  bool any_differ = false;
  for (int i = 0; i < 200; ++i) {
    if (a.SampleProbeFault(0.0, rng_a) != b.SampleProbeFault(0.0, rng_b)) {
      any_differ = true;
    }
  }
  EXPECT_TRUE(any_differ);
}

TEST(FaultInjectorTest, DecisionsConsumeAFixedNumberOfDraws) {
  // Stream alignment: every injector call costs the same number of caller
  // draws no matter what the plan's probabilities are or which faults
  // fire, so runs under different plans stay draw-for-draw comparable.
  FaultPlan heavy;
  heavy.seed = 23;
  heavy.probe_loss_probability = 1.0;
  heavy.traceroute_truncation_probability = 1.0;
  heavy.corruption_probability = 1.0;
  heavy.duplicate_probability = 1.0;
  heavy.max_clock_skew = SimTime(3);
  FaultInjector none(FaultPlan{}), all(heavy);
  core::Rng rng_none(31), rng_all(31);
  auto record_none = MakeRecord();
  auto record_all = MakeRecord();
  none.SampleProbeFault(0.0, rng_none);
  all.SampleProbeFault(0.0, rng_all);
  none.ApplyRecordFaults(record_none, rng_none);
  all.ApplyRecordFaults(record_all, rng_all);
  // Equal consumption leaves the two streams at the same position.
  EXPECT_EQ(rng_none.Next(), rng_all.Next());
}

TEST(FaultInjectorTest, MnarGainCouplesLossToCongestion) {
  FaultPlan plan;
  plan.seed = 5;
  plan.probe_loss_probability = 0.05;
  plan.mnar_loss_gain = 20.0;  // 2% path loss -> +40 pp probe loss
  FaultInjector calm(plan), congested(plan);
  core::Rng calm_rng(1), congested_rng(1);
  int calm_lost = 0, congested_lost = 0;
  for (int i = 0; i < 500; ++i) {
    if (calm.SampleProbeFault(0.0, calm_rng) == ProbeFault::kProbeLoss) {
      ++calm_lost;
    }
    if (congested.SampleProbeFault(0.02, congested_rng) ==
        ProbeFault::kProbeLoss) {
      ++congested_lost;
    }
  }
  EXPECT_GT(congested_lost, calm_lost + 50);
  // Gain saturates at certainty: loss probability clamps to 1.
  FaultInjector saturated(plan);
  core::Rng saturated_rng(2);
  EXPECT_EQ(saturated.SampleProbeFault(1.0, saturated_rng),
            ProbeFault::kProbeLoss);
}

TEST(FaultInjectorTest, ZeroProbabilityPlanIsTransparent) {
  FaultInjector injector(FaultPlan{});
  core::Rng rng(3);
  auto record = MakeRecord();
  const auto before = record;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(injector.SampleProbeFault(0.0, rng), ProbeFault::kNone);
    EXPECT_FALSE(injector.ApplyRecordFaults(record, rng));
  }
  EXPECT_EQ(record.time, before.time);
  EXPECT_EQ(record.rtt_ms, before.rtt_ms);
  EXPECT_EQ(record.traceroute.hops.size(), before.traceroute.hops.size());
  EXPECT_EQ(injector.stats().records_corrupted, 0u);
  EXPECT_EQ(injector.stats().records_skewed, 0u);
}

TEST(FaultInjectorTest, TruncationKeepsMinimumHops) {
  FaultPlan plan;
  plan.seed = 11;
  plan.traceroute_truncation_probability = 1.0;
  plan.truncation_min_hops = 2;
  FaultInjector injector(plan);
  core::Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    auto record = MakeRecord(6);
    injector.ApplyRecordFaults(record, rng);
    EXPECT_GE(record.traceroute.hops.size(), 2u);
    EXPECT_LE(record.traceroute.hops.size(), 6u);
  }
  EXPECT_GT(injector.stats().traceroutes_truncated, 50u);
}

TEST(FaultInjectorTest, CorruptionProducesInvalidRecords) {
  FaultPlan plan;
  plan.seed = 13;
  plan.corruption_probability = 1.0;
  FaultInjector injector(plan);
  core::Rng rng(5);
  std::size_t invalid = 0;
  for (int i = 0; i < 100; ++i) {
    auto record = MakeRecord();
    injector.ApplyRecordFaults(record, rng);
    const bool bad_rtt = record.rtt_ms <= 0.0;
    const bool bad_time = record.time < SimTime(0);
    const bool bad_loss = record.loss_rate > 1.0;
    const bool bad_throughput = !std::isfinite(record.throughput_mbps);
    if (bad_rtt || bad_time || bad_loss || bad_throughput) ++invalid;
  }
  EXPECT_EQ(invalid, 100u);
  EXPECT_EQ(injector.stats().records_corrupted, 100u);
}

TEST(FaultInjectorTest, ClockSkewIsBounded) {
  FaultPlan plan;
  plan.seed = 17;
  plan.max_clock_skew = SimTime(5);
  FaultInjector injector(plan);
  core::Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    auto record = MakeRecord();
    const SimTime original = record.time;
    injector.ApplyRecordFaults(record, rng);
    EXPECT_GE(record.time, original - SimTime(5));
    EXPECT_LE(record.time, original + SimTime(5));
  }
  EXPECT_EQ(injector.stats().records_skewed, 200u);
}

TEST(FaultInjectorTest, DuplicationFlagRateMatchesPlan) {
  FaultPlan plan;
  plan.seed = 19;
  plan.duplicate_probability = 0.5;
  FaultInjector injector(plan);
  core::Rng rng(8);
  int duplicates = 0;
  for (int i = 0; i < 400; ++i) {
    auto record = MakeRecord();
    if (injector.ApplyRecordFaults(record, rng)) ++duplicates;
  }
  EXPECT_NEAR(duplicates, 200, 60);
  EXPECT_EQ(injector.stats().records_duplicated,
            static_cast<std::size_t>(duplicates));
}

TEST(ProbeFaultTest, NamesStable) {
  EXPECT_STREQ(ToString(ProbeFault::kNone), "none");
  EXPECT_STREQ(ToString(ProbeFault::kProbeLoss), "probe_loss");
  EXPECT_STREQ(ToString(ProbeFault::kVantageOutage), "vantage_outage");
  EXPECT_STREQ(ToString(ProbeFault::kCollectorOutage), "collector_outage");
  EXPECT_STREQ(ToString(ProbeFault::kUnreachable), "unreachable");
}

}  // namespace
}  // namespace sisyphus::measure
