// Tests for the indexed audit store (src/audit): the binary artifact
// must answer every query with exactly the numbers the lineage JSON
// holds (round-trip through a real multi-campaign fault run), reject
// truncation and corruption loudly, and stay byte-identical across
// thread counts and across a durable stop/resume — the same contract
// lineage.json itself carries (DESIGN.md §12).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "audit/format.h"
#include "audit/reader.h"
#include "audit/writer.h"
#include "causal/robust_synthetic_control.h"
#include "core/json.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "durable/service.h"
#include "measure/faults.h"
#include "measure/panel.h"
#include "measure/platform.h"
#include "netsim/scenario_za.h"
#include "obs/lineage.h"
#include "obs/metrics.h"

namespace sisyphus {
namespace {

namespace fs = std::filesystem;
using core::json::Value;
using obs::Lineage;

/// RAII lineage enable/reset, as in lineage_test.
struct ScopedLineage {
  ScopedLineage() {
    Lineage::Enable(true);
    Lineage::Global().Reset();
  }
  ~ScopedLineage() { Lineage::Enable(false); }
};

/// One small ZA campaign under `plan`, panel + one robust fit — the full
/// emit -> panel -> estimate lineage path (mirrors lineage_test).
void RunCampaign(const measure::FaultPlan& plan) {
  netsim::ScenarioZaOptions options;
  options.donor_units = 6;
  options.treatment_time = core::SimTime::FromDays(3);
  options.horizon = core::SimTime::FromDays(6);
  auto scenario = netsim::BuildScenarioZa(options);
  measure::PlatformOptions platform_options;
  platform_options.server = scenario.content_jnb;
  measure::Platform platform(*scenario.simulator, platform_options);
  measure::FaultInjector injector(plan);
  platform.SetFaultInjector(&injector);
  measure::VantageConfig vantage;
  vantage.baseline_tests_per_day = 10.0;
  vantage.user_tests_per_day = 3.0;
  for (const auto& unit : scenario.treated) {
    vantage.pop = unit.access_pop;
    platform.AddVantage(vantage);
  }
  for (auto donor : scenario.donors) {
    vantage.pop = donor;
    platform.AddVantage(vantage);
  }
  core::Rng rng(29);
  platform.Run(options.horizon, rng);

  measure::PanelOptions panel_options;
  panel_options.bucket = core::SimTime::FromHours(6);
  panel_options.periods = 4 * 6;
  panel_options.max_missing_fraction = 0.9;
  const auto panel = measure::BuildRttPanel(platform.store(), panel_options);
  auto input = measure::MakeSyntheticControlInput(
      panel, scenario.treated[0].name, scenario.donor_names,
      options.treatment_time);
  if (input.ok()) {
    auto fit = causal::FitRobustSyntheticControl(input.value());
    // Register the estimate the way the shipped benches do, so the
    // artifact carries a real estimate entry with composition pools.
    if (fit.ok()) {
      Lineage::Global().AddEstimate(
          "audit.robust.unit0", scenario.treated[0].name,
          scenario.donor_names, fit.value().base.average_effect,
          std::numeric_limits<double>::quiet_NaN());
    }
  }
}

/// Two campaigns with different fault plans under one ledger: a
/// multi-run artifact with faults, drops, duplicates, and estimates.
void RunTwoCampaigns() {
  measure::FaultPlan plan_a;
  plan_a.seed = 23;
  plan_a.probe_loss_probability = 0.1;
  plan_a.duplicate_probability = 0.1;
  plan_a.corruption_probability = 0.05;
  plan_a.max_clock_skew = core::SimTime(3);
  measure::FaultPlan plan_b;
  plan_b.seed = 31;
  plan_b.probe_loss_probability = 0.2;
  plan_b.traceroute_truncation_probability = 0.2;
  plan_b.truncation_min_hops = 2;
  Lineage::Global().BeginRun("campaign-a");
  RunCampaign(plan_a);
  Lineage::Global().BeginRun("campaign-b");
  RunCampaign(plan_b);
}

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(f.is_open()) << path;
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::uint64_t U64(const Value& parent, const std::string& key) {
  const Value* v = parent.Find(key);
  EXPECT_NE(v, nullptr) << key;
  return v != nullptr ? static_cast<std::uint64_t>(v->number) : 0;
}

TEST(AuditStoreTest, RoundTripMatchesJsonLedger) {
  ScopedLineage scoped;
  RunTwoCampaigns();

  const std::string artifact = audit::BuildAuditArtifact(Lineage::Global());
  const std::string path = TempPath("audit-roundtrip.bin");
  WriteFile(path, artifact);

  auto parsed = core::json::Parse(Lineage::Global().ToJson());
  ASSERT_TRUE(parsed.ok());
  const Value& json = parsed.value();
  const Value* runs = json.Find("runs");
  ASSERT_NE(runs, nullptr);

  audit::AuditReader reader;
  const auto open = reader.Open(path);
  ASSERT_TRUE(open.ok()) << open.error().message();
  ASSERT_EQ(reader.run_count(), runs->array.size());
  ASSERT_EQ(reader.run_count(), 2u);
  EXPECT_TRUE(reader.VerifyAll().ok());

  for (std::size_t i = 0; i < reader.run_count(); ++i) {
    const Value& json_run = runs->array[i];
    const audit::RunSummary& run = reader.run(i);
    EXPECT_EQ(run.label, json_run.Find("label")->string);

    // Waterfall rollup.
    const Value* w = json_run.Find("waterfall");
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(run.waterfall.probes_attempted, U64(*w, "probes_attempted"));
    EXPECT_EQ(run.waterfall.probes_failed, U64(*w, "probes_failed"));
    EXPECT_EQ(run.waterfall.emitted, U64(*w, "emitted"));
    EXPECT_EQ(run.waterfall.delivered, U64(*w, "delivered"));
    EXPECT_EQ(run.waterfall.quarantined_copies, U64(*w, "quarantined_copies"));
    EXPECT_EQ(run.waterfall.archived_copies, U64(*w, "archived_copies"));
    EXPECT_GT(run.waterfall.emitted, 0u);

    // Columnar records: every column must equal the JSON dump.
    const Value* json_records = json_run.Find("records");
    ASSERT_NE(json_records, nullptr);
    const auto columns = reader.Records(i);
    ASSERT_TRUE(columns.ok());
    ASSERT_EQ(columns.value().count, U64(*json_records, "count"));
    const Value* stage_col = json_records->Find("stage");
    const Value* vantage_col = json_records->Find("vantage");
    const Value* copies_col = json_records->Find("copies");
    ASSERT_NE(stage_col, nullptr);
    std::vector<std::uint64_t> histogram(obs::kLineageStageCount, 0);
    for (std::uint64_t r = 0; r < columns.value().count; ++r) {
      EXPECT_EQ(columns.value().stage[r],
                static_cast<std::uint8_t>(stage_col->array[r].number));
      EXPECT_EQ(columns.value().vantage[r],
                static_cast<std::uint32_t>(vantage_col->array[r].number));
      EXPECT_EQ(columns.value().copies[r],
                static_cast<std::uint8_t>(copies_col->array[r].number));
      ++histogram[columns.value().stage[r]];
    }

    // Terminal posting lists: count per stage == per-record histogram,
    // and the decoded id set really holds ids with that resolved stage.
    for (std::size_t s = 0; s < obs::kLineageStageCount; ++s) {
      const auto slice =
          reader.Terminal(i, static_cast<obs::LineageStage>(s));
      ASSERT_TRUE(slice.ok());
      EXPECT_EQ(slice.value().count, histogram[s]) << "stage " << s;
      const auto ids =
          obs::IdRunSet::FromEncoded(slice.value().id_runs).Expand();
      ASSERT_EQ(ids.size(), histogram[s]);
      for (std::uint64_t id : ids) {
        EXPECT_EQ(columns.value().stage[id - 1], s);
      }
    }

    // Every panel unit answers identically to the JSON ledger.
    const Value* units = json_run.Find("panel_units");
    ASSERT_NE(units, nullptr);
    EXPECT_FALSE(units->object.empty());
    for (const auto& [name, json_unit] : units->object) {
      const auto unit = reader.FindUnit(i, name);
      ASSERT_TRUE(unit.ok());
      ASSERT_TRUE(unit.value().found) << name;
      EXPECT_EQ(unit.value().dropped, json_unit.Find("dropped")->boolean);
      EXPECT_DOUBLE_EQ(unit.value().missing_fraction,
                       json_unit.Find("missing_fraction")->number);
      EXPECT_EQ(unit.value().observed_cells, U64(json_unit, "observed_cells"));
      EXPECT_EQ(unit.value().masked_cells, U64(json_unit, "masked_cells"));
      const Value* cells = json_unit.Find("cells");
      ASSERT_NE(cells, nullptr);
      ASSERT_EQ(unit.value().cells.size(), cells->array.size());
      for (std::size_t c = 0; c < cells->array.size(); ++c) {
        EXPECT_EQ(unit.value().cells[c].period,
                  U64(cells->array[c], "period"));
        EXPECT_EQ(unit.value().cells[c].count, U64(cells->array[c], "count"));
        char digest[17];
        std::snprintf(digest, sizeof(digest), "%016llx",
                      static_cast<unsigned long long>(
                          unit.value().cells[c].digest));
        EXPECT_EQ(std::string(digest), cells->array[c].Find("digest")->string);
      }
    }
    const auto missing = reader.FindUnit(i, "no such unit");
    ASSERT_TRUE(missing.ok());
    EXPECT_FALSE(missing.value().found);

    // Estimates: composition pools must match the precomputed JSON ones.
    const Value* estimates = json_run.Find("estimates");
    ASSERT_NE(estimates, nullptr);
    EXPECT_EQ(run.estimate_count, estimates->array.size());
    EXPECT_GT(run.estimate_count, 0u);
    for (const Value& json_estimate : estimates->array) {
      const std::string& label = json_estimate.Find("label")->string;
      const auto estimate = reader.FindEstimate(i, label);
      ASSERT_TRUE(estimate.ok());
      ASSERT_TRUE(estimate.value().found) << label;
      EXPECT_EQ(estimate.value().treated,
                json_estimate.Find("treated")->string);
      EXPECT_DOUBLE_EQ(estimate.value().effect,
                       json_estimate.Find("effect")->number);
      EXPECT_EQ(estimate.value().treated_comp.records,
                U64(json_estimate, "treated_records"));
      EXPECT_EQ(estimate.value().treated_comp.cells,
                U64(json_estimate, "treated_cells"));
      EXPECT_EQ(estimate.value().donor_comp.records,
                U64(json_estimate, "donor_records"));
      EXPECT_EQ(estimate.value().donor_comp.cells,
                U64(json_estimate, "donor_cells"));
      char digest[17];
      std::snprintf(digest, sizeof(digest), "%016llx",
                    static_cast<unsigned long long>(
                        estimate.value().treated_comp.digest));
      EXPECT_EQ(std::string(digest),
                json_estimate.Find("treated_digest")->string);
    }
    const auto absent = reader.FindEstimate(i, "no such estimate");
    ASSERT_TRUE(absent.ok());
    EXPECT_FALSE(absent.value().found);
  }
}

TEST(AuditStoreTest, RejectsTruncationAndGrowth) {
  ScopedLineage scoped;
  Lineage::Global().BeginRun("truncation");
  measure::FaultPlan plan;
  plan.seed = 7;
  plan.probe_loss_probability = 0.1;
  RunCampaign(plan);
  const std::string artifact = audit::BuildAuditArtifact(Lineage::Global());

  // Any size change must fail Open: the header records the exact file
  // size, so truncation and appended garbage are both caught before any
  // query runs.
  for (const std::size_t size :
       {artifact.size() - 1, artifact.size() / 2, std::size_t{40},
        std::size_t{0}}) {
    const std::string path = TempPath("audit-truncated.bin");
    WriteFile(path, artifact.substr(0, size));
    audit::AuditReader reader;
    EXPECT_FALSE(reader.Open(path).ok()) << "size " << size;
    EXPECT_FALSE(reader.is_open());
  }
  {
    const std::string path = TempPath("audit-grown.bin");
    WriteFile(path, artifact + "x");
    audit::AuditReader reader;
    EXPECT_FALSE(reader.Open(path).ok());
  }
  {
    audit::AuditReader reader;
    const auto status = reader.Open(TempPath("audit-never-written.bin"));
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.error().code(), core::ErrorCode::kNotFound);
  }
}

TEST(AuditStoreTest, RejectsCorruption) {
  ScopedLineage scoped;
  Lineage::Global().BeginRun("corruption");
  measure::FaultPlan plan;
  plan.seed = 7;
  plan.duplicate_probability = 0.1;
  RunCampaign(plan);
  const std::string artifact = audit::BuildAuditArtifact(Lineage::Global());

  // A flipped byte in the header fails Open outright.
  {
    std::string bad = artifact;
    bad[9] = static_cast<char>(bad[9] ^ 0x5a);
    const std::string path = TempPath("audit-bad-header.bin");
    WriteFile(path, bad);
    audit::AuditReader reader;
    EXPECT_FALSE(reader.Open(path).ok());
  }
  // A flipped byte inside a section payload passes the O(index) Open but
  // must be caught by the lazy per-section checksum (VerifyAll forces
  // every section, as obscheck and lineageq --check do).
  {
    std::string bad = artifact;
    const std::size_t mid = bad.size() / 2;
    bad[mid] = static_cast<char>(bad[mid] ^ 0x5a);
    const std::string path = TempPath("audit-bad-section.bin");
    WriteFile(path, bad);
    audit::AuditReader reader;
    ASSERT_TRUE(reader.Open(path).ok());
    EXPECT_FALSE(reader.VerifyAll().ok());
  }
}

TEST(AuditStoreTest, ByteIdenticalAt1And8Lanes) {
  measure::FaultPlan plan;
  plan.seed = 31;
  plan.probe_loss_probability = 0.1;
  plan.duplicate_probability = 0.1;
  plan.corruption_probability = 0.02;
  const auto run = [&](std::size_t lanes) {
    core::ThreadPool::SetGlobalThreadCount(lanes);
    ScopedLineage scoped;
    Lineage::Global().BeginRun("identity");
    RunCampaign(plan);
    std::string artifact = audit::BuildAuditArtifact(Lineage::Global());
    core::ThreadPool::SetGlobalThreadCount(0);
    return artifact;
  };
  const std::string serial = run(1);
  const std::string parallel = run(8);
  // The audit artifact is a pure function of the final ledger, which the
  // capture/replay side-channel makes lane-count invariant — so the
  // whole indexed file, checksums and all, is byte-identical too.
  EXPECT_EQ(serial, parallel);
  EXPECT_GT(serial.size(), audit::kAuditHeaderSize);
}

// ---------------------------------------------------------------------------
// Durable stop/resume identity (compact copy of the durable_stream_test
// harness): a run stopped mid-campaign and resumed at a different lane
// count must emit the exact bytes of the uninterrupted run's audit.bin.

struct DurableSpec {
  std::string dir;
  bool resume = false;
  std::size_t threads = 1;
  std::uint64_t stop_after = 0;
};

/// Runs the small durable campaign; returns the audit artifact bytes for
/// completed runs, empty for stopped ones.
std::string RunDurableAudit(const DurableSpec& spec) {
  core::ThreadPool::SetGlobalThreadCount(spec.threads);
  obs::Registry::Global().ResetAll();
  Lineage::Global().Reset();
  Lineage::Global().BeginRun("durable");

  netsim::ScenarioZaOptions scenario_options;
  scenario_options.donor_units = 6;
  scenario_options.treatment_time = core::SimTime::FromDays(1);
  scenario_options.horizon = core::SimTime::FromDays(2);
  netsim::ScenarioZa scenario = netsim::BuildScenarioZa(scenario_options);

  measure::PlatformOptions platform_options;
  platform_options.server = scenario.content_jnb;
  platform_options.step = core::SimTime::FromHours(1);
  measure::Platform platform(*scenario.simulator, platform_options);
  measure::VantageConfig vantage;
  vantage.baseline_tests_per_day = 10.0;
  vantage.user_tests_per_day = 4.0;
  for (const auto& unit : scenario.treated) {
    vantage.pop = unit.access_pop;
    platform.AddVantage(vantage);
  }
  for (netsim::PopIndex donor : scenario.donors) {
    vantage.pop = donor;
    platform.AddVantage(vantage);
  }
  measure::FaultPlan plan;
  plan.seed = 42;
  plan.probe_loss_probability = 0.15;
  plan.duplicate_probability = 0.02;
  plan.corruption_probability = 0.01;
  plan.max_clock_skew = core::SimTime(3);
  measure::FaultInjector injector(plan);
  platform.SetFaultInjector(&injector);

  measure::PanelOptions panel_options;
  panel_options.bucket = core::SimTime::FromHours(6);
  panel_options.periods = static_cast<std::size_t>(
      scenario_options.horizon.minutes() / panel_options.bucket.minutes());
  measure::StreamingOptions streaming_options;
  streaming_options.panel = panel_options;
  measure::StreamingCampaign stream(platform_options.validation,
                                    streaming_options);

  durable::DurableOptions durable_options;
  durable_options.dir = spec.dir;
  durable_options.snapshot_every = 5;
  durable_options.fsync_every = 3;
  durable_options.stop_after_steps = spec.stop_after;
  durable::DurableStreamingService service(platform, stream, durable_options);
  core::Rng rng(scenario_options.seed);
  const auto run = spec.resume
                       ? service.Resume(scenario_options.horizon, rng)
                       : service.Run(scenario_options.horizon, rng);
  EXPECT_TRUE(run.ok()) << (run.ok() ? "" : run.error().message());
  std::string artifact;
  if (run.ok() &&
      run.value().outcome == durable::RunOutcome::kCompleted) {
    artifact = audit::BuildAuditArtifact(Lineage::Global());
  }
  core::ThreadPool::SetGlobalThreadCount(0);
  return artifact;
}

TEST(AuditStoreTest, StopResumeEmitsIdenticalArtifact) {
  const bool metrics_were_enabled = obs::Registry::enabled();
  obs::Registry::Enable(true);
  Lineage::Enable(true);

  const auto make_dir = [](const std::string& name) {
    const fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
  };

  DurableSpec reference;
  reference.dir = make_dir("audit-durable-reference");
  const std::string clean = RunDurableAudit(reference);
  ASSERT_FALSE(clean.empty());

  DurableSpec crash;
  crash.dir = make_dir("audit-durable-crash");
  crash.stop_after = 20;
  ASSERT_TRUE(RunDurableAudit(crash).empty());  // stopped mid-campaign
  DurableSpec resume;
  resume.dir = crash.dir;
  resume.resume = true;
  resume.threads = 8;
  const std::string resumed = RunDurableAudit(resume);

  // The resumed ledger is restored from snapshot + verified journal
  // replay, so the audit index built from it matches the clean run's
  // bytes exactly — same sections, same checksums.
  EXPECT_EQ(clean, resumed);

  obs::Registry::Global().ResetAll();
  Lineage::Global().Reset();
  obs::Registry::Enable(metrics_were_enabled);
  Lineage::Enable(false);
}

}  // namespace
}  // namespace sisyphus
