// Tests for the South Africa scenario: structure, pre/post-treatment
// routing, and the calibration invariants Table 1 depends on.
#include <gtest/gtest.h>

#include "netsim/scenario_za.h"

namespace sisyphus::netsim {
namespace {

using core::SimTime;

TEST(ScenarioZaTest, StructureMatchesPaper) {
  const ScenarioZa scenario = BuildScenarioZa();
  EXPECT_EQ(scenario.treated.size(), 8u);  // Table 1's eight units
  EXPECT_EQ(scenario.donors.size(), 30u);
  EXPECT_EQ(scenario.donor_names.size(), scenario.donors.size());
  EXPECT_EQ(scenario.simulator->topology().GetIxp(scenario.napafrica_jnb).name,
            "NAPAfrica-JNB");
  // Unit labels match the paper's rows.
  EXPECT_EQ(scenario.treated[0].name, "3741 / East London");
  EXPECT_EQ(scenario.treated[5].name, "327966 / Polokwane");
}

TEST(ScenarioZaTest, TreatmentLinksDownBeforeTreatmentTime) {
  const ScenarioZa scenario = BuildScenarioZa();
  const auto& topo = scenario.simulator->topology();
  for (const auto& unit : scenario.treated) {
    EXPECT_FALSE(topo.GetLink(unit.ixp_link).up) << unit.name;
    ASSERT_TRUE(topo.GetLink(unit.ixp_link).ixp.has_value());
    EXPECT_EQ(*topo.GetLink(unit.ixp_link).ixp, scenario.napafrica_jnb);
  }
}

TEST(ScenarioZaTest, AllUnitsReachContentPreTreatment) {
  ScenarioZa scenario = BuildScenarioZa();
  auto& bgp = scenario.simulator->bgp();
  for (const auto& unit : scenario.treated) {
    auto route = bgp.Route(unit.access_pop, scenario.content_jnb);
    ASSERT_TRUE(route.ok()) << unit.name;
    EXPECT_FALSE(route.value().CrossesIxp(scenario.simulator->topology(),
                                          scenario.napafrica_jnb))
        << unit.name;
  }
  for (std::size_t i = 0; i < scenario.donors.size(); ++i) {
    auto route = bgp.Route(scenario.donors[i], scenario.content_jnb);
    ASSERT_TRUE(route.ok()) << scenario.donor_names[i];
  }
}

TEST(ScenarioZaTest, TreatedCrossIxpAfterTreatmentDonorsNever) {
  ScenarioZa scenario = BuildScenarioZa();
  scenario.simulator->AdvanceTo(scenario.options.treatment_time +
                                SimTime::FromHours(1));
  auto& bgp = scenario.simulator->bgp();
  const auto& topo = scenario.simulator->topology();
  for (const auto& unit : scenario.treated) {
    auto route = bgp.Route(unit.access_pop, scenario.content_jnb);
    ASSERT_TRUE(route.ok()) << unit.name;
    EXPECT_TRUE(route.value().CrossesIxp(topo, scenario.napafrica_jnb))
        << unit.name;
  }
  for (std::size_t i = 0; i < scenario.donors.size(); ++i) {
    auto route = bgp.Route(scenario.donors[i], scenario.content_jnb);
    ASSERT_TRUE(route.ok());
    EXPECT_FALSE(route.value().CrossesIxp(topo, scenario.napafrica_jnb))
        << scenario.donor_names[i];
  }
}

TEST(ScenarioZaTest, TreatmentChangesAreLoggedExogenous) {
  ScenarioZa scenario = BuildScenarioZa();
  scenario.simulator->AdvanceTo(scenario.options.horizon);
  std::size_t peering_changes = 0;
  for (const auto& change : scenario.simulator->route_changes()) {
    if (change.trigger.find("NAPAfrica") != std::string::npos) {
      EXPECT_TRUE(change.exogenous);
      EXPECT_GE(change.time, scenario.options.treatment_time);
      ++peering_changes;
    }
  }
  EXPECT_GE(peering_changes, scenario.treated.size());
}

TEST(ScenarioZaTest, RttDeltasHaveCalibratedSigns) {
  // The deterministic mean-RTT shift at a fixed off-peak hour should have
  // the sign Table 1 reports for the clearly-signed units.
  ScenarioZa scenario = BuildScenarioZa();
  auto& sim = *scenario.simulator;
  const SimTime probe_pre = SimTime::FromDays(27);   // 00:00, off-peak
  std::map<std::string, double> pre_rtt;
  for (const auto& unit : scenario.treated) {
    auto route = sim.bgp().Route(unit.access_pop, scenario.content_jnb);
    ASSERT_TRUE(route.ok());
    pre_rtt[unit.name] = sim.latency().PathRttMs(route.value(), probe_pre);
  }
  sim.AdvanceTo(scenario.options.treatment_time + SimTime::FromHours(1));
  const SimTime probe_post = SimTime::FromDays(29);
  for (const auto& unit : scenario.treated) {
    auto route = sim.bgp().Route(unit.access_pop, scenario.content_jnb);
    ASSERT_TRUE(route.ok());
    const double delta =
        sim.latency().PathRttMs(route.value(), probe_post) -
        pre_rtt[unit.name];
    if (unit.paper_delta_ms > 1.0) {
      EXPECT_GT(delta, 0.0) << unit.name;
    } else if (unit.paper_delta_ms < -1.0) {
      EXPECT_LT(delta, 0.5) << unit.name;
    }
  }
}

TEST(ScenarioZaTest, DonorPoolHasTromboneHeterogeneity) {
  ScenarioZa scenario = BuildScenarioZa();
  auto& sim = *scenario.simulator;
  double min_rtt = 1e9, max_rtt = 0.0;
  for (PopIndex donor : scenario.donors) {
    auto route = sim.bgp().Route(donor, scenario.content_jnb);
    ASSERT_TRUE(route.ok());
    const double rtt =
        sim.latency().PathRttMs(route.value(), SimTime::FromDays(1));
    min_rtt = std::min(min_rtt, rtt);
    max_rtt = std::max(max_rtt, rtt);
  }
  EXPECT_LT(min_rtt, 20.0);    // domestic donors
  EXPECT_GT(max_rtt, 120.0);   // tromboned donors via London
}

TEST(ScenarioZaTest, CustomOptionsRespected) {
  ScenarioZaOptions options;
  options.donor_units = 12;
  options.treatment_time = SimTime::FromDays(10);
  options.horizon = SimTime::FromDays(20);
  const ScenarioZa scenario = BuildScenarioZa(options);
  EXPECT_EQ(scenario.donors.size(), 12u);
  EXPECT_EQ(scenario.options.treatment_time, SimTime::FromDays(10));
}

}  // namespace
}  // namespace sisyphus::netsim
