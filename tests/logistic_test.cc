// Tests for logistic regression (IRLS).
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "stats/logistic.h"

namespace sisyphus::stats {
namespace {

TEST(SigmoidTest, KnownValuesAndStability) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-12);
  // No overflow at extremes.
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
  // Symmetry.
  EXPECT_NEAR(Sigmoid(3.0) + Sigmoid(-3.0), 1.0, 1e-12);
}

TEST(LogisticTest, RecoversCoefficients) {
  core::Rng rng(5);
  const std::size_t n = 20000;
  Matrix x(n, 2);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Gaussian();
    x(i, 1) = rng.Gaussian();
    const double p = Sigmoid(-0.5 + 1.2 * x(i, 0) - 0.8 * x(i, 1));
    y[i] = rng.Bernoulli(p) ? 1.0 : 0.0;
  }
  auto fit = LogisticRegression(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(fit.value().converged);
  EXPECT_NEAR(fit.value().coefficients[0], -0.5, 0.08);
  EXPECT_NEAR(fit.value().coefficients[1], 1.2, 0.08);
  EXPECT_NEAR(fit.value().coefficients[2], -0.8, 0.08);
}

TEST(LogisticTest, PredictProbabilityMonotonic) {
  core::Rng rng(6);
  const std::size_t n = 2000;
  Matrix x(n, 1);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Gaussian();
    y[i] = rng.Bernoulli(Sigmoid(2.0 * x(i, 0))) ? 1.0 : 0.0;
  }
  auto fit = LogisticRegression(x, y);
  ASSERT_TRUE(fit.ok());
  const Vector lo{-1.0}, mid{0.0}, hi{1.0};
  EXPECT_LT(fit.value().PredictProbability(lo),
            fit.value().PredictProbability(mid));
  EXPECT_LT(fit.value().PredictProbability(mid),
            fit.value().PredictProbability(hi));
}

TEST(LogisticTest, BalancedInterceptOnlyModel) {
  core::Rng rng(8);
  const std::size_t n = 1000;
  Matrix x(n, 1);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Gaussian();  // irrelevant covariate
    y[i] = i % 2 == 0 ? 1.0 : 0.0;
  }
  auto fit = LogisticRegression(x, y);
  ASSERT_TRUE(fit.ok());
  // P(y=1) ~ 0.5 regardless of x.
  const Vector any{0.3};
  EXPECT_NEAR(fit.value().PredictProbability(any), 0.5, 0.05);
}

TEST(LogisticTest, SurvivesCompleteSeparation) {
  // Perfectly separable data diverges in unpenalized MLE; the default L2
  // penalty plus step damping must keep it finite.
  Matrix x(10, 1);
  Vector y(10);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = i < 5 ? 0.0 : 1.0;
  }
  auto fit = LogisticRegression(x, y);
  ASSERT_TRUE(fit.ok());
  for (double c : fit.value().coefficients) EXPECT_TRUE(std::isfinite(c));
  const Vector low{0.0}, high{9.0};
  EXPECT_LT(fit.value().PredictProbability(low), 0.5);
  EXPECT_GT(fit.value().PredictProbability(high), 0.5);
}

TEST(LogisticTest, RejectsNonBinaryLabels) {
  Matrix x(5, 1);
  Vector y{0, 1, 2, 0, 1};
  auto fit = LogisticRegression(x, y);
  ASSERT_FALSE(fit.ok());
  EXPECT_EQ(fit.error().code(), core::ErrorCode::kInvalidArgument);
}

TEST(LogisticTest, RejectsShapeMismatch) {
  Matrix x(5, 1);
  Vector y{0, 1, 0};
  EXPECT_FALSE(LogisticRegression(x, y).ok());
}

TEST(LogisticTest, LogLikelihoodImprovesOverNull) {
  core::Rng rng(10);
  const std::size_t n = 3000;
  Matrix x(n, 1);
  Vector y(n);
  std::size_t positives = 0;
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Gaussian();
    y[i] = rng.Bernoulli(Sigmoid(1.5 * x(i, 0))) ? 1.0 : 0.0;
    positives += static_cast<std::size_t>(y[i]);
  }
  auto fit = LogisticRegression(x, y);
  ASSERT_TRUE(fit.ok());
  const double p = static_cast<double>(positives) / static_cast<double>(n);
  const double null_ll = static_cast<double>(n) *
                         (p * std::log(p) + (1.0 - p) * std::log(1.0 - p));
  EXPECT_GT(fit.value().log_likelihood, null_ll);
}

}  // namespace
}  // namespace sisyphus::stats
