// Tests for the event schedule and the NetworkSimulator loop: event
// application, TE endogeneity, route-change logging.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "netsim/simulator.h"

namespace sisyphus::netsim {
namespace {

using core::Asn;
using core::SimTime;

TEST(EventScheduleTest, PopUntilReturnsInOrderAndRemoves) {
  EventSchedule schedule;
  NetworkEvent e1{SimTime(30), EventType::kLinkDown, true, "b", {}, 0, 0.0,
                  SimTime(0), 0.0, 0, {}};
  NetworkEvent e2{SimTime(10), EventType::kLinkUp, true, "a", {}, 0, 0.0,
                  SimTime(0), 0.0, 0, {}};
  NetworkEvent e3{SimTime(50), EventType::kLinkUp, true, "c", {}, 0, 0.0,
                  SimTime(0), 0.0, 0, {}};
  schedule.Add(e1);
  schedule.Add(e2);
  schedule.Add(e3);
  auto due = schedule.PopUntil(SimTime(40));
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].description, "a");
  EXPECT_EQ(due[1].description, "b");
  EXPECT_EQ(schedule.pending(), 1u);
}

TEST(EventTypeTest, NamesStable) {
  EXPECT_STREQ(ToString(EventType::kLinkDown), "link_down");
  EXPECT_STREQ(ToString(EventType::kPoisonAsns), "poison_asns");
}

/// Access ISP with a primary (short) and backup (long) provider path.
struct SimFixture {
  Topology topo;
  PopIndex src = 0, p1 = 0, p2 = 0, dst = 0;
  core::LinkId primary, backup, p1_dst, p2_dst;

  SimFixture() {
    const auto city = topo.cities().Add({"X", {0, 0}, 2.0});
    src = topo.AddPop(Asn{10}, city, AsRole::kAccess).value();
    p1 = topo.AddPop(Asn{20}, city, AsRole::kTransit).value();
    p2 = topo.AddPop(Asn{30}, city, AsRole::kTransit).value();
    dst = topo.AddPop(Asn{40}, city, AsRole::kContent).value();
    primary = topo.AddLink(src, p1, Relationship::kCustomerToProvider,
                           std::nullopt, 0.5)
                  .value();
    backup = topo.AddLink(src, p2, Relationship::kCustomerToProvider,
                          std::nullopt, 2.0)
                 .value();
    p1_dst =
        topo.AddLink(p1, dst, Relationship::kPeerToPeer, std::nullopt, 0.3)
            .value();
    p2_dst =
        topo.AddLink(p2, dst, Relationship::kPeerToPeer, std::nullopt, 0.3)
            .value();
    // Primary preferred by AS-path tie -> lower pop index (p1).
  }
};

TEST(SimulatorTest, TimeAdvancesMonotonically) {
  SimFixture f;
  NetworkSimulator sim(std::move(f.topo));
  EXPECT_EQ(sim.Now().minutes(), 0);
  sim.AdvanceTo(SimTime::FromHours(2.0));
  EXPECT_EQ(sim.Now(), SimTime::FromHours(2.0));
  EXPECT_THROW(sim.AdvanceTo(SimTime::FromHours(1.0)), std::logic_error);
}

TEST(SimulatorTest, ScheduledLinkDownCausesLoggedRouteChange) {
  SimFixture f;
  const auto primary = f.primary;
  NetworkSimulator sim(std::move(f.topo));
  sim.WatchPath(f.src, f.dst);

  NetworkEvent event;
  event.time = SimTime::FromHours(1.0);
  event.type = EventType::kLinkDown;
  event.exogenous = true;
  event.description = "fiber cut on primary";
  event.link = primary;
  sim.schedule().Add(event);

  sim.AdvanceTo(SimTime::FromHours(2.0));
  ASSERT_EQ(sim.route_changes().size(), 1u);
  const auto& change = sim.route_changes()[0];
  EXPECT_EQ(change.trigger, "fiber cut on primary");
  EXPECT_TRUE(change.exogenous);
  EXPECT_EQ(change.old_asn_path[1], Asn{20});
  EXPECT_EQ(change.new_asn_path[1], Asn{30});

  auto route = sim.RouteBetween(f.src, f.dst);
  ASSERT_TRUE(route.ok());
  EXPECT_TRUE(route.value().CrossesAsn(Asn{30}));
}

TEST(SimulatorTest, LinkUpRestoresPrimary) {
  SimFixture f;
  const auto primary = f.primary;
  NetworkSimulator sim(std::move(f.topo));
  sim.WatchPath(f.src, f.dst);
  NetworkEvent down;
  down.time = SimTime::FromHours(1.0);
  down.type = EventType::kLinkDown;
  down.link = primary;
  down.description = "maintenance start";
  sim.schedule().Add(down);
  NetworkEvent up;
  up.time = SimTime::FromHours(3.0);
  up.type = EventType::kLinkUp;
  up.link = primary;
  up.description = "maintenance end";
  sim.schedule().Add(up);
  sim.AdvanceTo(SimTime::FromHours(4.0));
  EXPECT_EQ(sim.route_changes().size(), 2u);
  auto route = sim.RouteBetween(f.src, f.dst);
  ASSERT_TRUE(route.ok());
  EXPECT_TRUE(route.value().CrossesAsn(Asn{20}));
}

TEST(SimulatorTest, CongestionShockEventRaisesRtt) {
  SimFixture f;
  const auto primary = f.primary;
  NetworkSimulator sim(std::move(f.topo));
  core::Rng rng(1);
  NetworkEvent shock;
  shock.time = SimTime::FromHours(1.0);
  shock.type = EventType::kCongestionShock;
  shock.link = primary;
  shock.shock_end = SimTime::FromHours(5.0);
  shock.shock_extra = 0.5;
  sim.schedule().Add(shock);

  sim.AdvanceTo(SimTime::FromHours(0.5));
  auto route = sim.RouteBetween(f.src, f.dst);
  ASSERT_TRUE(route.ok());
  const double before = sim.latency().PathRttMs(route.value(), sim.Now());
  sim.AdvanceTo(SimTime::FromHours(2.0));
  const double during = sim.latency().PathRttMs(route.value(), sim.Now());
  EXPECT_GT(during, before + 0.3);
}

TEST(SimulatorTest, TePolicyShiftsAwayUnderCongestionAndBack) {
  SimFixture f;
  const auto primary = f.primary;
  NetworkSimulator sim(std::move(f.topo));
  sim.WatchPath(f.src, f.dst);

  TePolicy policy;
  policy.pop = f.src;
  policy.watched_link = primary;
  policy.threshold = 0.6;
  policy.hysteresis = 0.1;
  sim.AddTePolicy(policy);

  // Congestion shock pushes primary utilization over threshold for 2h.
  NetworkEvent shock;
  shock.time = SimTime::FromHours(1.0);
  shock.type = EventType::kCongestionShock;
  shock.exogenous = false;
  shock.description = "demand surge";
  shock.link = primary;
  shock.shock_end = SimTime::FromHours(3.0);
  shock.shock_extra = 0.5;
  sim.schedule().Add(shock);

  sim.AdvanceTo(SimTime::FromHours(2.0));
  auto route = sim.RouteBetween(f.src, f.dst);
  ASSERT_TRUE(route.ok());
  EXPECT_TRUE(route.value().CrossesAsn(Asn{30}));  // shifted away

  sim.AdvanceTo(SimTime::FromHours(5.0));
  route = sim.RouteBetween(f.src, f.dst);
  ASSERT_TRUE(route.ok());
  EXPECT_TRUE(route.value().CrossesAsn(Asn{20}));  // shifted back

  // Both TE shifts logged as ENDOGENOUS.
  ASSERT_GE(sim.route_changes().size(), 2u);
  for (const auto& change : sim.route_changes()) {
    EXPECT_FALSE(change.exogenous);
    EXPECT_EQ(change.trigger.substr(0, 3), "te:");
  }
}

TEST(SimulatorTest, ApplyNowTakesEffectImmediately) {
  SimFixture f;
  const auto primary = f.primary;
  NetworkSimulator sim(std::move(f.topo));
  sim.WatchPath(f.src, f.dst);
  NetworkEvent event;
  event.time = sim.Now();
  event.type = EventType::kLinkDown;
  event.exogenous = true;
  event.description = "manual drain";
  event.link = primary;
  sim.ApplyNow(event);
  EXPECT_EQ(sim.route_changes().size(), 1u);
  auto route = sim.RouteBetween(f.src, f.dst);
  ASSERT_TRUE(route.ok());
  EXPECT_TRUE(route.value().CrossesAsn(Asn{30}));
}

TEST(SimulatorTest, WatchPathRecordsUnreachableBaseline) {
  // Watching a pair with no current route must not silently swallow the
  // lookup error: the pair starts in unreachable_at_watch, and the first
  // route appearance is logged as a change from an empty old path.
  SimFixture f;
  f.topo.MutableLink(f.primary).up = false;
  f.topo.MutableLink(f.backup).up = false;
  const auto primary = f.primary;
  NetworkSimulator sim(std::move(f.topo));
  sim.WatchPath(f.src, f.dst);
  EXPECT_EQ(sim.UnreachableWatchCount(), 1u);
  EXPECT_TRUE(sim.route_changes().empty());

  NetworkEvent event;
  event.time = sim.Now();
  event.type = EventType::kLinkUp;
  event.exogenous = true;
  event.description = "repair";
  event.link = primary;
  sim.ApplyNow(event);
  EXPECT_EQ(sim.UnreachableWatchCount(), 0u);
  ASSERT_EQ(sim.route_changes().size(), 1u);
  EXPECT_TRUE(sim.route_changes()[0].old_asn_path.empty());
  EXPECT_FALSE(sim.route_changes()[0].new_asn_path.empty());
}

TEST(SimulatorTest, SampleRttPositiveAndVariable) {
  SimFixture f;
  NetworkSimulator sim(std::move(f.topo));
  core::Rng rng(2);
  auto s1 = sim.SampleRtt(f.src, f.dst, rng);
  auto s2 = sim.SampleRtt(f.src, f.dst, rng);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_GT(s1.value(), 0.0);
  EXPECT_NE(s1.value(), s2.value());
}

}  // namespace
}  // namespace sisyphus::netsim
