// Tests for distribution functions against known reference values.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/distributions.h"

namespace sisyphus::stats {
namespace {

TEST(NormalTest, PdfAtZero) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804, 1e-9);
}

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-8);
  EXPECT_NEAR(NormalCdf(-1.0), 0.1586552539, 1e-8);
}

TEST(NormalTest, QuantileInvertsCdf) {
  for (double p : {0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-7) << "p=" << p;
  }
}

TEST(NormalTest, QuantileEdgesThrow) {
  EXPECT_THROW(NormalQuantile(0.0), std::logic_error);
  EXPECT_THROW(NormalQuantile(1.0), std::logic_error);
}

TEST(LogGammaTest, MatchesFactorials) {
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-10);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(LogGamma(0.5), std::log(std::sqrt(M_PI)), 1e-10);
}

TEST(IncompleteBetaTest, EdgesAndSymmetry) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  const double x = 0.37;
  EXPECT_NEAR(RegularizedIncompleteBeta(2.5, 1.5, x),
              1.0 - RegularizedIncompleteBeta(1.5, 2.5, 1.0 - x), 1e-10);
}

TEST(IncompleteBetaTest, UniformSpecialCase) {
  // I_x(1,1) = x.
  EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, 0.42), 0.42, 1e-10);
}

TEST(StudentTTest, CdfSymmetricAtZero) {
  EXPECT_NEAR(StudentTCdf(0.0, 7.0), 0.5, 1e-12);
}

TEST(StudentTTest, KnownCriticalValues) {
  // t_{0.975, 10} = 2.228139.
  EXPECT_NEAR(StudentTCdf(2.228139, 10.0), 0.975, 1e-5);
  // t with 1 dof is Cauchy: CDF(1) = 0.75.
  EXPECT_NEAR(StudentTCdf(1.0, 1.0), 0.75, 1e-8);
}

TEST(StudentTTest, ApproachesNormalForLargeDof) {
  EXPECT_NEAR(StudentTCdf(1.96, 1e6), NormalCdf(1.96), 1e-4);
}

TEST(PValueTest, TwoSidedValues) {
  EXPECT_NEAR(TwoSidedZPValue(1.959964), 0.05, 1e-5);
  EXPECT_NEAR(TwoSidedZPValue(0.0), 1.0, 1e-12);
  EXPECT_NEAR(TwoSidedTPValue(2.228139, 10.0), 0.05, 1e-4);
  // Sign-symmetric.
  EXPECT_DOUBLE_EQ(TwoSidedZPValue(-2.0), TwoSidedZPValue(2.0));
}

TEST(GammaTest, RegularizedLowerKnownValues) {
  // P(1, x) = 1 - e^-x.
  EXPECT_NEAR(RegularizedLowerGamma(1.0, 2.0), 1.0 - std::exp(-2.0), 1e-10);
  EXPECT_NEAR(RegularizedLowerGamma(3.0, 0.0), 0.0, 1e-12);
}

TEST(ChiSquaredTest, SurvivalKnownValues) {
  // Chi2 with 1 dof: P(X > 3.841459) = 0.05.
  EXPECT_NEAR(ChiSquaredSurvival(3.841459, 1.0), 0.05, 1e-5);
  // Chi2 with 2 dof is Exponential(1/2): P(X > x) = e^{-x/2}.
  EXPECT_NEAR(ChiSquaredSurvival(4.0, 2.0), std::exp(-2.0), 1e-10);
  EXPECT_DOUBLE_EQ(ChiSquaredSurvival(-1.0, 3.0), 1.0);
}

}  // namespace
}  // namespace sisyphus::stats
