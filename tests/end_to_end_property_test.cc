// End-to-end property tests tying the layers together:
//
//  1. On random linear-Gaussian SCMs, the total causal effect computed by
//     interventional Monte Carlo equals the sum over directed paths of
//     coefficient products (Wright's path rules).
//  2. When Identify() prescribes a backdoor set, regression adjustment on
//     samples recovers that true effect; the naive regression generally
//     does not (checked to diverge on at least some instances).
//  3. BGP convergence is deterministic: identical topologies yield
//     identical route tables.
#include <gtest/gtest.h>

#include <cmath>

#include "causal/estimators.h"
#include "causal/identification.h"
#include "causal/scm.h"
#include "core/rng.h"
#include "stats/regression.h"
#include "netsim/bgp.h"

namespace sisyphus {
namespace {

using causal::Dag;
using causal::NodeId;

/// Random DAG over n nodes (edges i->j for i<j w.p. p) with random linear
/// coefficients in [-1.5, 1.5] and unit noise.
struct RandomScm {
  causal::Scm scm;
  std::vector<NodeId> nodes;
};

RandomScm MakeRandomScm(std::size_t n, double edge_probability,
                        core::Rng& rng) {
  Dag dag;
  std::vector<NodeId> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(dag.AddNode("V" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(edge_probability)) {
        EXPECT_TRUE(dag.AddEdge(nodes[i], nodes[j]).ok());
      }
    }
  }
  causal::Scm scm(dag);
  for (NodeId node : scm.dag().AllNodes()) {
    causal::LinearEquation eq;
    eq.intercept = rng.Uniform(-1.0, 1.0);
    eq.noise_sd = 1.0;
    eq.coefficients.resize(scm.dag().Parents(node).size());
    for (auto& c : eq.coefficients) c = rng.Uniform(-1.5, 1.5);
    EXPECT_TRUE(scm.SetLinear(node, std::move(eq)).ok());
  }
  return {std::move(scm), std::move(nodes)};
}

/// Wright's rule: total effect = sum over directed paths t -> ... -> y of
/// the product of edge coefficients.
double PathEffect(const causal::Scm& scm, NodeId from, NodeId to) {
  if (from == to) return 1.0;
  double total = 0.0;
  for (NodeId child : scm.dag().Children(from)) {
    total += scm.LinearCoefficient(from, child) * PathEffect(scm, child, to);
  }
  return total;
}

class EndToEndPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EndToEndPropertyTest, InterventionalEffectMatchesPathRules) {
  core::Rng rng(static_cast<std::uint64_t>(1000 + GetParam()));
  const auto world = MakeRandomScm(6, 0.4, rng);
  // Pick the first pair with a directed path.
  for (std::size_t i = 0; i < world.nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < world.nodes.size(); ++j) {
      const NodeId t = world.nodes[i];
      const NodeId y = world.nodes[j];
      const double truth = PathEffect(world.scm, t, y);
      if (truth == 0.0) continue;
      const double mc =
          world.scm.AverageTreatmentEffect(t, y, 1.0, 0.0, 60000, rng);
      EXPECT_NEAR(mc, truth, 0.15 * std::max(1.0, std::abs(truth)))
          << "effect " << world.scm.dag().Name(t) << " -> "
          << world.scm.dag().Name(y);
      return;  // one pair per seed keeps runtime bounded
    }
  }
}

TEST_P(EndToEndPropertyTest, BackdoorAdjustmentRecoversTrueEffect) {
  core::Rng rng(static_cast<std::uint64_t>(2000 + GetParam()));
  const auto world = MakeRandomScm(6, 0.4, rng);
  const causal::Dataset data = world.scm.Sample(40000, rng);
  for (std::size_t i = 0; i < world.nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < world.nodes.size(); ++j) {
      const NodeId t = world.nodes[i];
      const NodeId y = world.nodes[j];
      auto how = causal::Identify(world.scm.dag(), t, y);
      if (!how.ok()) continue;
      if (how.value().strategy !=
              causal::IdentificationStrategy::kBackdoor &&
          how.value().strategy !=
              causal::IdentificationStrategy::kNoConfounding) {
        continue;
      }
      const double truth = PathEffect(world.scm, t, y);
      std::vector<std::string> covariates;
      for (NodeId id : how.value().adjustment_set) {
        covariates.push_back(world.scm.dag().Name(id));
      }
      // Continuous treatment: regression of y on [t, covariates]; the t
      // coefficient identifies the effect under linearity.
      std::vector<stats::Vector> columns;
      columns.emplace_back(data.ColumnOrDie(world.scm.dag().Name(t)).begin(),
                           data.ColumnOrDie(world.scm.dag().Name(t)).end());
      for (const auto& name : covariates) {
        columns.emplace_back(data.ColumnOrDie(name).begin(),
                             data.ColumnOrDie(name).end());
      }
      auto fit = stats::Ols(stats::Matrix::FromColumns(columns),
                            data.ColumnOrDie(world.scm.dag().Name(y)));
      ASSERT_TRUE(fit.ok());
      EXPECT_NEAR(fit.value().coefficients[1], truth,
                  0.1 * std::max(1.0, std::abs(truth)))
          << world.scm.dag().Name(t) << " -> " << world.scm.dag().Name(y)
          << " adjusting for " << covariates.size() << " covariates";
      return;  // one identified pair per seed
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndPropertyTest, ::testing::Range(0, 8));

TEST(BgpDeterminismTest, IdenticalTopologiesConvergeIdentically) {
  auto build = [] {
    netsim::Topology topo;
    const auto city = topo.cities().Add({"X", {0, 0}, 0});
    std::vector<netsim::PopIndex> pops;
    for (std::uint32_t i = 0; i < 12; ++i) {
      pops.push_back(topo.AddPop(core::Asn{i + 1}, city,
                                 netsim::AsRole::kAccess)
                         .value());
    }
    for (std::uint32_t i = 1; i < 12; ++i) {
      (void)topo.AddLink(pops[i], pops[i / 2],
                         netsim::Relationship::kCustomerToProvider);
    }
    (void)topo.AddLink(pops[1], pops[2], netsim::Relationship::kPeerToPeer);
    return topo;
  };
  const auto topo_a = build();
  const auto topo_b = build();
  netsim::BgpSimulator bgp_a(topo_a);
  netsim::BgpSimulator bgp_b(topo_b);
  for (netsim::PopIndex dst = 0; dst < topo_a.PopCount(); ++dst) {
    const auto& table_a = bgp_a.RoutesTo(dst);
    const auto& table_b = bgp_b.RoutesTo(dst);
    for (netsim::PopIndex src = 0; src < topo_a.PopCount(); ++src) {
      ASSERT_EQ(table_a.best[src].has_value(),
                table_b.best[src].has_value());
      if (table_a.best[src].has_value()) {
        EXPECT_EQ(table_a.best[src]->pop_path, table_b.best[src]->pop_path);
        EXPECT_EQ(table_a.best[src]->asn_path, table_b.best[src]->asn_path);
      }
    }
  }
}

}  // namespace
}  // namespace sisyphus
