// Tests for the identification engine: backdoor/frontdoor criteria,
// adjustment-set enumeration, instrument discovery, and the one-call
// Identify() strategy selection.
#include <gtest/gtest.h>

#include "causal/dag_parser.h"
#include "causal/identification.h"

namespace sisyphus::causal {
namespace {

Dag MustParse(const char* text) {
  auto dag = ParseDag(text);
  EXPECT_TRUE(dag.ok()) << text;
  return std::move(dag).value();
}

NodeId N(const Dag& dag, std::string_view name) {
  return dag.Node(name).value();
}

// ---- Backdoor criterion ------------------------------------------------------

TEST(BackdoorTest, ClassicConfounderNeedsAdjustment) {
  const Dag dag = MustParse("C -> R; C -> L; R -> L");
  EXPECT_FALSE(
      SatisfiesBackdoorCriterion(dag, N(dag, "R"), N(dag, "L"), NodeSet{}));
  EXPECT_TRUE(SatisfiesBackdoorCriterion(dag, N(dag, "R"), N(dag, "L"),
                                         NodeSet{N(dag, "C")}));
}

TEST(BackdoorTest, DescendantOfTreatmentInvalid) {
  const Dag dag = MustParse("C -> R; C -> L; R -> L; R -> M; M -> L");
  // M is a mediator (descendant of R): never a valid backdoor member.
  EXPECT_FALSE(SatisfiesBackdoorCriterion(
      dag, N(dag, "R"), N(dag, "L"), NodeSet{N(dag, "C"), N(dag, "M")}));
}

TEST(BackdoorTest, ColliderAdjustmentInvalid) {
  // M-graph: empty set is valid; conditioning on the collider M is not.
  const Dag dag = MustParse("U1 -> T; U1 -> M; U2 -> M; U2 -> Y; T -> Y");
  EXPECT_TRUE(
      SatisfiesBackdoorCriterion(dag, N(dag, "T"), N(dag, "Y"), NodeSet{}));
  EXPECT_FALSE(SatisfiesBackdoorCriterion(dag, N(dag, "T"), N(dag, "Y"),
                                          NodeSet{N(dag, "M")}));
}

TEST(BackdoorTest, TreatmentOrOutcomeInSetInvalid) {
  const Dag dag = MustParse("C -> R; C -> L; R -> L");
  EXPECT_FALSE(SatisfiesBackdoorCriterion(dag, N(dag, "R"), N(dag, "L"),
                                          NodeSet{N(dag, "R")}));
}

// ---- Minimal adjustment sets --------------------------------------------------

TEST(AdjustmentSetsTest, FindsSingletonConfounder) {
  const Dag dag = MustParse("C -> R; C -> L; R -> L");
  const auto sets = MinimalAdjustmentSets(dag, N(dag, "R"), N(dag, "L"));
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_TRUE(sets[0].Contains(N(dag, "C")));
  EXPECT_EQ(sets[0].size(), 1u);
}

TEST(AdjustmentSetsTest, EmptySetWhenUnconfounded) {
  const Dag dag = MustParse("R -> L; R -> M");
  const auto sets = MinimalAdjustmentSets(dag, N(dag, "R"), N(dag, "L"));
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_TRUE(sets[0].empty());
}

TEST(AdjustmentSetsTest, TwoIndependentConfounders) {
  const Dag dag =
      MustParse("C1 -> R; C1 -> L; C2 -> R; C2 -> L; R -> L");
  const auto sets = MinimalAdjustmentSets(dag, N(dag, "R"), N(dag, "L"));
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].size(), 2u);  // both needed
}

TEST(AdjustmentSetsTest, AlternativeMinimalSets) {
  // Confounding path R <- A -> B -> L can be blocked at A or at B.
  const Dag dag = MustParse("A -> R; A -> B; B -> L; R -> L");
  const auto sets = MinimalAdjustmentSets(dag, N(dag, "R"), N(dag, "L"));
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].size(), 1u);
  EXPECT_EQ(sets[1].size(), 1u);
}

TEST(AdjustmentSetsTest, NoObservedSetWhenConfounderLatent) {
  const Dag dag = MustParse("R <-> L; R -> L");
  const auto sets = MinimalAdjustmentSets(dag, N(dag, "R"), N(dag, "L"));
  EXPECT_TRUE(sets.empty());
}

// ---- Frontdoor ----------------------------------------------------------------

TEST(FrontdoorTest, ClassicStructureAccepted) {
  // Pearl's smoking -> tar -> cancer with latent confounding.
  const Dag dag = MustParse("T <-> Y; T -> M; M -> Y");
  EXPECT_TRUE(SatisfiesFrontdoorCriterion(dag, N(dag, "T"), N(dag, "Y"),
                                          NodeSet{N(dag, "M")}));
  const auto mediators = FindFrontdoorMediators(dag, N(dag, "T"), N(dag, "Y"));
  ASSERT_EQ(mediators.size(), 1u);
  EXPECT_EQ(mediators[0], N(dag, "M"));
}

TEST(FrontdoorTest, RejectsWhenMediatorConfoundedWithTreatment) {
  const Dag dag = MustParse("T <-> Y; T -> M; M -> Y; T <-> M");
  EXPECT_FALSE(SatisfiesFrontdoorCriterion(dag, N(dag, "T"), N(dag, "Y"),
                                           NodeSet{N(dag, "M")}));
}

TEST(FrontdoorTest, RejectsWhenDirectPathBypassesMediator) {
  const Dag dag = MustParse("T <-> Y; T -> M; M -> Y; T -> Y");
  EXPECT_FALSE(SatisfiesFrontdoorCriterion(dag, N(dag, "T"), N(dag, "Y"),
                                           NodeSet{N(dag, "M")}));
}

// ---- Instruments ----------------------------------------------------------------

TEST(InstrumentTest, ValidInstrumentRecognized) {
  // Z -> T, latent T-Y confounding: the IV textbook graph.
  const Dag dag = MustParse("Z -> T; T -> Y; T <-> Y");
  EXPECT_TRUE(
      IsValidInstrument(dag, N(dag, "Z"), N(dag, "T"), N(dag, "Y"), NodeSet{}));
  const auto instruments = FindInstruments(dag, N(dag, "T"), N(dag, "Y"));
  ASSERT_EQ(instruments.size(), 1u);
  EXPECT_EQ(instruments[0], N(dag, "Z"));
}

TEST(InstrumentTest, ExclusionViolationRejected) {
  // Z also hits Y directly: exclusion restriction fails.
  const Dag dag = MustParse("Z -> T; Z -> Y; T -> Y; T <-> Y");
  EXPECT_FALSE(
      IsValidInstrument(dag, N(dag, "Z"), N(dag, "T"), N(dag, "Y"), NodeSet{}));
}

TEST(InstrumentTest, RelevanceViolationRejected) {
  // Z unrelated to T.
  const Dag dag = MustParse("Z; T -> Y; T <-> Y");
  EXPECT_FALSE(
      IsValidInstrument(dag, N(dag, "Z"), N(dag, "T"), N(dag, "Y"), NodeSet{}));
}

TEST(InstrumentTest, ConfoundedInstrumentRejected) {
  // Z <-> Y latent confounding: Z reaches Y outside T.
  const Dag dag = MustParse("Z -> T; T -> Y; T <-> Y; Z <-> Y");
  EXPECT_FALSE(
      IsValidInstrument(dag, N(dag, "Z"), N(dag, "T"), N(dag, "Y"), NodeSet{}));
}

TEST(InstrumentTest, ConditionalInstrument) {
  // Z and T share observed confounder W; conditioning on W validates Z.
  const Dag dag = MustParse("W -> Z; W -> Y; Z -> T; T -> Y; T <-> Y");
  EXPECT_FALSE(
      IsValidInstrument(dag, N(dag, "Z"), N(dag, "T"), N(dag, "Y"), NodeSet{}));
  EXPECT_TRUE(IsValidInstrument(dag, N(dag, "Z"), N(dag, "T"), N(dag, "Y"),
                                NodeSet{N(dag, "W")}));
}

// ---- Identify() ----------------------------------------------------------------

TEST(IdentifyTest, NoConfoundingStrategy) {
  const Dag dag = MustParse("R -> L");
  auto result = Identify(dag, "R", "L");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().strategy, IdentificationStrategy::kNoConfounding);
  EXPECT_TRUE(result.value().identifiable());
}

TEST(IdentifyTest, BackdoorStrategyWithSmallestSet) {
  const Dag dag = MustParse("C -> R; C -> L; R -> L");
  auto result = Identify(dag, "R", "L");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().strategy, IdentificationStrategy::kBackdoor);
  EXPECT_TRUE(result.value().adjustment_set.Contains(N(dag, "C")));
}

TEST(IdentifyTest, FrontdoorStrategy) {
  const Dag dag = MustParse("T <-> Y; T -> M; M -> Y");
  auto result = Identify(dag, "T", "Y");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().strategy, IdentificationStrategy::kFrontdoor);
  ASSERT_EQ(result.value().frontdoor_mediators.size(), 1u);
}

TEST(IdentifyTest, InstrumentStrategy) {
  const Dag dag = MustParse("Z -> T; T -> Y; T <-> Y");
  auto result = Identify(dag, "T", "Y");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().strategy, IdentificationStrategy::kInstrument);
  ASSERT_EQ(result.value().instruments.size(), 1u);
  EXPECT_EQ(result.value().instruments[0], N(dag, "Z"));
}

TEST(IdentifyTest, NotIdentifiableExplainsOpenPaths) {
  const Dag dag = MustParse("T <-> Y; T -> Y");
  auto result = Identify(dag, "T", "Y");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().strategy,
            IdentificationStrategy::kNotIdentifiable);
  EXPECT_FALSE(result.value().identifiable());
  EXPECT_NE(result.value().explanation.find("U(T,Y)"), std::string::npos);
}

TEST(IdentifyTest, RejectsLatentEndpointsAndSelfQueries) {
  const Dag dag = MustParse("H [latent]; H -> Y; T -> Y");
  EXPECT_FALSE(Identify(dag, "H", "Y").ok());
  EXPECT_FALSE(Identify(dag, "T", "T").ok());
  EXPECT_FALSE(Identify(dag, "Nope", "Y").ok());
}

TEST(IdentifyTest, StrategyNamesStable) {
  EXPECT_STREQ(ToString(IdentificationStrategy::kBackdoor), "backdoor");
  EXPECT_STREQ(ToString(IdentificationStrategy::kNotIdentifiable),
               "not_identifiable");
}

}  // namespace
}  // namespace sisyphus::causal
