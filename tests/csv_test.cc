// Tests for CSV parsing into Datasets.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "causal/csv.h"

namespace sisyphus::causal {
namespace {

TEST(CsvTest, ParsesSimpleTable) {
  auto data = ParseCsvDataset("a,b\n1,2\n3.5,-4e2\n");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value().rows(), 2u);
  EXPECT_EQ(data.value().cols(), 2u);
  EXPECT_DOUBLE_EQ(data.value().ColumnOrDie("a")[1], 3.5);
  EXPECT_DOUBLE_EQ(data.value().ColumnOrDie("b")[1], -400.0);
}

TEST(CsvTest, HandlesQuotedHeadersAndCrlf) {
  auto data = ParseCsvDataset("\"with,comma\",plain\r\n1,2\r\n");
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(data.value().HasColumn("with,comma"));
  EXPECT_DOUBLE_EQ(data.value().ColumnOrDie("plain")[0], 2.0);
}

TEST(CsvTest, EscapedQuoteInHeader) {
  auto data = ParseCsvDataset("\"say \"\"hi\"\"\"\n7\n");
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(data.value().HasColumn("say \"hi\""));
}

TEST(CsvTest, NoTrailingNewlineOk) {
  auto data = ParseCsvDataset("x\n1\n2");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value().rows(), 2u);
}

TEST(CsvTest, EmptyDataRowsOk) {
  auto data = ParseCsvDataset("x,y\n");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value().rows(), 0u);
  EXPECT_EQ(data.value().cols(), 2u);
}

TEST(CsvTest, RejectsRaggedRows) {
  auto data = ParseCsvDataset("a,b\n1\n");
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.error().code(), core::ErrorCode::kParseError);
  EXPECT_NE(data.error().message().find("line 2"), std::string::npos);
}

TEST(CsvTest, RejectsNonNumericAndEmptyValues) {
  EXPECT_FALSE(ParseCsvDataset("a\nhello\n").ok());
  EXPECT_FALSE(ParseCsvDataset("a,b\n1,\n").ok());
  EXPECT_FALSE(ParseCsvDataset("a\n1.2.3\n").ok());
}

TEST(CsvTest, RejectsBadHeaders) {
  EXPECT_FALSE(ParseCsvDataset("a,a\n1,2\n").ok());   // duplicate
  EXPECT_FALSE(ParseCsvDataset("a,\n1,2\n").ok());    // empty name
  EXPECT_FALSE(ParseCsvDataset("").ok());             // no header
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  auto data = ParseCsvDataset("\"open\n1\n");
  ASSERT_FALSE(data.ok());
  EXPECT_NE(data.error().message().find("quote"), std::string::npos);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = "/tmp/sisyphus_csv_test.csv";
  {
    std::ofstream file(path);
    file << "rtt,treated\n10.5,0\n12.5,1\n";
  }
  auto data = ReadCsvDataset(path);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value().rows(), 2u);
  EXPECT_DOUBLE_EQ(data.value().ColumnOrDie("rtt")[1], 12.5);
  std::remove(path.c_str());
  EXPECT_FALSE(ReadCsvDataset("/nonexistent_dir/x.csv").ok());
}

}  // namespace
}  // namespace sisyphus::causal
