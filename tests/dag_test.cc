// Tests for the causal DAG container.
#include <gtest/gtest.h>

#include "causal/dag.h"

namespace sisyphus::causal {
namespace {

TEST(NodeSetTest, InsertEraseContains) {
  NodeSet set;
  set.Insert(NodeId(3));
  set.Insert(NodeId(1));
  set.Insert(NodeId(3));  // duplicate
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.Contains(NodeId(1)));
  set.Erase(NodeId(1));
  EXPECT_FALSE(set.Contains(NodeId(1)));
  set.Erase(NodeId(99));  // no-op
  EXPECT_EQ(set.size(), 1u);
}

TEST(NodeSetTest, IterationIsSorted) {
  NodeSet set{NodeId(5), NodeId(2), NodeId(9)};
  std::vector<NodeId> seen(set.begin(), set.end());
  EXPECT_EQ(seen, (std::vector<NodeId>{NodeId(2), NodeId(5), NodeId(9)}));
}

TEST(DagTest, AddNodeIdempotent) {
  Dag dag;
  const NodeId a1 = dag.AddNode("A");
  const NodeId a2 = dag.AddNode("A");
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(dag.NodeCount(), 1u);
}

TEST(DagTest, NodeLookup) {
  Dag dag;
  dag.AddNode("Latency");
  ASSERT_TRUE(dag.Node("Latency").ok());
  EXPECT_FALSE(dag.Node("Nope").ok());
  EXPECT_EQ(dag.Node("Nope").error().code(), core::ErrorCode::kNotFound);
}

TEST(DagTest, EdgesAndAdjacency) {
  Dag dag;
  ASSERT_TRUE(dag.AddEdge("C", "R").ok());
  ASSERT_TRUE(dag.AddEdge("C", "L").ok());
  ASSERT_TRUE(dag.AddEdge("R", "L").ok());
  EXPECT_EQ(dag.EdgeCount(), 3u);
  const NodeId c = dag.Node("C").value();
  const NodeId l = dag.Node("L").value();
  const NodeId r = dag.Node("R").value();
  EXPECT_TRUE(dag.HasEdge(c, r));
  EXPECT_FALSE(dag.HasEdge(r, c));
  EXPECT_EQ(dag.Parents(l).size(), 2u);
  EXPECT_EQ(dag.Children(c).size(), 2u);
}

TEST(DagTest, DuplicateEdgeIsIdempotent) {
  Dag dag;
  ASSERT_TRUE(dag.AddEdge("A", "B").ok());
  ASSERT_TRUE(dag.AddEdge("A", "B").ok());
  EXPECT_EQ(dag.EdgeCount(), 1u);
}

TEST(DagTest, SelfLoopRejected) {
  Dag dag;
  const NodeId a = dag.AddNode("A");
  EXPECT_FALSE(dag.AddEdge(a, a).ok());
}

TEST(DagTest, CycleRejected) {
  Dag dag;
  ASSERT_TRUE(dag.AddEdge("A", "B").ok());
  ASSERT_TRUE(dag.AddEdge("B", "C").ok());
  const auto status = dag.AddEdge("C", "A");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code(), core::ErrorCode::kInvalidArgument);
  EXPECT_EQ(dag.EdgeCount(), 2u);  // graph unchanged
}

TEST(DagTest, TwoNodeCycleRejected) {
  Dag dag;
  ASSERT_TRUE(dag.AddEdge("A", "B").ok());
  EXPECT_FALSE(dag.AddEdge("B", "A").ok());
}

TEST(DagTest, AncestorsAndDescendants) {
  Dag dag;
  dag.AddEdge("A", "B").ok();
  dag.AddEdge("B", "C").ok();
  dag.AddEdge("D", "C").ok();
  const NodeId a = dag.Node("A").value();
  const NodeId c = dag.Node("C").value();
  const NodeId d = dag.Node("D").value();
  const NodeSet anc = dag.Ancestors(c);
  EXPECT_TRUE(anc.Contains(a));
  EXPECT_TRUE(anc.Contains(d));
  EXPECT_FALSE(anc.Contains(c));
  const NodeSet desc = dag.Descendants(a);
  EXPECT_TRUE(desc.Contains(c));
  EXPECT_EQ(desc.size(), 2u);
}

TEST(DagTest, AncestorsOfSetIncludesMembers) {
  Dag dag;
  dag.AddEdge("A", "B").ok();
  const NodeId b = dag.Node("B").value();
  const NodeSet closure = dag.AncestorsOfSet(NodeSet{b});
  EXPECT_TRUE(closure.Contains(b));
  EXPECT_TRUE(closure.Contains(dag.Node("A").value()));
}

TEST(DagTest, TopologicalOrderRespectsEdges) {
  Dag dag;
  dag.AddEdge("C", "R").ok();
  dag.AddEdge("C", "L").ok();
  dag.AddEdge("R", "L").ok();
  const auto order = dag.TopologicalOrder();
  ASSERT_EQ(order.size(), 3u);
  auto position = [&](std::string_view name) {
    const NodeId id = dag.Node(name).value();
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == id) return i;
    }
    return order.size();
  };
  EXPECT_LT(position("C"), position("R"));
  EXPECT_LT(position("R"), position("L"));
}

TEST(DagTest, LatentConfounderCreatesHiddenParent) {
  Dag dag;
  const NodeId r = dag.AddNode("R");
  const NodeId l = dag.AddNode("L");
  ASSERT_TRUE(dag.AddLatentConfounder(r, l).ok());
  EXPECT_EQ(dag.NodeCount(), 3u);
  const auto u = dag.Node("U(R,L)");
  ASSERT_TRUE(u.ok());
  EXPECT_FALSE(dag.IsObserved(u.value()));
  EXPECT_TRUE(dag.HasEdge(u.value(), r));
  EXPECT_TRUE(dag.HasEdge(u.value(), l));
  EXPECT_EQ(dag.ObservedNodes().size(), 2u);
}

TEST(DagTest, IsColliderDetectsTwoParents) {
  Dag dag;
  dag.AddEdge("A", "C").ok();
  dag.AddEdge("B", "C").ok();
  EXPECT_TRUE(dag.IsCollider(dag.Node("C").value()));
  EXPECT_FALSE(dag.IsCollider(dag.Node("A").value()));
}

TEST(DagTest, ToTextListsEdgesAndLatents) {
  Dag dag;
  dag.AddEdge("A", "B").ok();
  dag.AddNode("H", /*observed=*/false);
  const std::string text = dag.ToText();
  EXPECT_NE(text.find("A -> B"), std::string::npos);
  EXPECT_NE(text.find("H [latent]"), std::string::npos);
}

}  // namespace
}  // namespace sisyphus::causal
