// Tests for stats::Matrix and the free-function vector algebra.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/matrix.h"

namespace sisyphus::stats {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(MatrixTest, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::logic_error);
}

TEST(MatrixTest, Identity) {
  const Matrix eye = Matrix::Identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(eye(r, c), r == c ? 1.0 : 0.0);
}

TEST(MatrixTest, FromColumnsAndColumn) {
  const Matrix m = Matrix::FromColumns({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.Column(1), (Vector{4, 5, 6}));
}

TEST(MatrixTest, SetColumnAndRow) {
  Matrix m(2, 2);
  const Vector col{7, 8};
  m.SetColumn(0, col);
  EXPECT_DOUBLE_EQ(m(1, 0), 8.0);
  const Vector row{1, 2};
  m.SetRow(0, row);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
}

TEST(MatrixTest, Transposed) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, Block) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const Matrix b = m.Block(1, 3, 0, 2);
  EXPECT_EQ(b.rows(), 2u);
  EXPECT_EQ(b.cols(), 2u);
  EXPECT_DOUBLE_EQ(b(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(b(1, 1), 8.0);
}

TEST(MatrixTest, Multiplication) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MultiplicationShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, std::logic_error);
}

/// Deterministic pseudo-random fill (no RNG dependency in this test).
Matrix Filled(std::size_t rows, std::size_t cols, double phase) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      m(r, c) = std::sin(phase + 0.7 * static_cast<double>(r) +
                         1.3 * static_cast<double>(c));
  return m;
}

TEST(MatrixTest, BlockedMultiplyMatchesReferenceExactly) {
  // The cache-blocked operator* iterates k ascending within each (i, j),
  // so it must be bit-identical to the naive kernel — including at sizes
  // that exercise partial blocks and the 256 case the benchmark pins.
  for (const std::size_t n : {1u, 3u, 63u, 64u, 65u, 130u, 256u}) {
    const Matrix a = Filled(n, n, 0.1);
    const Matrix b = Filled(n, n, 2.5);
    EXPECT_EQ((a * b).MaxAbsDiff(MultiplyReference(a, b)), 0.0) << n;
  }
  // Non-square shapes with every dimension off the block boundary.
  const Matrix a = Filled(70, 33, 0.4);
  const Matrix b = Filled(33, 129, 1.9);
  EXPECT_EQ((a * b).MaxAbsDiff(MultiplyReference(a, b)), 0.0);
}

TEST(MatrixTest, MultiplyAtBMatchesExplicitTranspose) {
  const Matrix a = Filled(67, 9, 0.2);
  const Matrix b = Filled(67, 13, 1.1);
  const Matrix fused = MultiplyAtB(a, b);
  const Matrix naive = a.Transposed() * b;
  ASSERT_EQ(fused.rows(), 9u);
  ASSERT_EQ(fused.cols(), 13u);
  EXPECT_LE(fused.MaxAbsDiff(naive), 1e-12);
  EXPECT_THROW(MultiplyAtB(Filled(4, 2, 0.0), Filled(5, 2, 0.0)),
               std::logic_error);
}

TEST(MatrixTest, MultiplyAbTMatchesExplicitTranspose) {
  const Matrix a = Filled(11, 40, 0.8);
  const Matrix b = Filled(17, 40, 1.4);
  const Matrix fused = MultiplyAbT(a, b);
  const Matrix naive = a * b.Transposed();
  ASSERT_EQ(fused.rows(), 11u);
  ASSERT_EQ(fused.cols(), 17u);
  EXPECT_LE(fused.MaxAbsDiff(naive), 1e-12);
  EXPECT_THROW(MultiplyAbT(Filled(4, 2, 0.0), Filled(4, 3, 0.0)),
               std::logic_error);
}

TEST(MatrixTest, AddSubtractScale) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{1, 1}, {1, 1}};
  EXPECT_DOUBLE_EQ((a + b)(1, 1), 5.0);
  EXPECT_DOUBLE_EQ((a - b)(0, 0), 0.0);
  EXPECT_DOUBLE_EQ((2.0 * a)(1, 0), 6.0);
}

TEST(MatrixTest, ApplyAndApplyTransposed) {
  const Matrix m{{1, 2}, {3, 4}, {5, 6}};
  const Vector x{1, -1};
  EXPECT_EQ(m.Apply(x), (Vector{-1, -1, -1}));
  const Vector y{1, 0, 1};
  EXPECT_EQ(m.ApplyTransposed(y), (Vector{6, 8}));
}

TEST(MatrixTest, FrobeniusNorm) {
  const Matrix m{{3, 0}, {0, 4}};
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(MatrixTest, MaxAbsDiff) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{1, 2.5}, {3, 3}};
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 1.0);
}

TEST(VectorOpsTest, DotAndNorm) {
  const Vector a{3, 4};
  const Vector b{1, 2};
  EXPECT_DOUBLE_EQ(Dot(a, b), 11.0);
  EXPECT_DOUBLE_EQ(Norm2(a), 5.0);
}

TEST(VectorOpsTest, AxpyAddSubtractScale) {
  const Vector a{1, 2};
  const Vector b{10, 20};
  EXPECT_EQ(Axpy(a, 0.5, b), (Vector{6, 12}));
  EXPECT_EQ(Add(a, b), (Vector{11, 22}));
  EXPECT_EQ(Subtract(b, a), (Vector{9, 18}));
  EXPECT_EQ(Scale(3.0, a), (Vector{3, 6}));
}

TEST(VectorOpsTest, SizeMismatchThrows) {
  const Vector a{1, 2};
  const Vector b{1};
  EXPECT_THROW(Dot(a, b), std::logic_error);
}

// ---- Simplex projection -----------------------------------------------------

TEST(SimplexTest, AlreadyOnSimplexIsFixedPoint) {
  const Vector v{0.2, 0.3, 0.5};
  const Vector p = ProjectToSimplex(v);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(p[i], v[i], 1e-12);
}

TEST(SimplexTest, ProjectionSumsToOneAndNonNegative) {
  const Vector v{2.0, -1.0, 0.5, 3.0};
  const Vector p = ProjectToSimplex(v);
  double sum = 0.0;
  for (double x : p) {
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(SimplexTest, DominantCoordinateTakesAll) {
  const Vector v{10.0, 0.0, 0.0};
  const Vector p = ProjectToSimplex(v);
  EXPECT_NEAR(p[0], 1.0, 1e-12);
  EXPECT_NEAR(p[1], 0.0, 1e-12);
}

TEST(SimplexTest, UniformNegativeInput) {
  const Vector v{-5.0, -5.0};
  const Vector p = ProjectToSimplex(v);
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[1], 0.5, 1e-12);
}

}  // namespace
}  // namespace sisyphus::stats
