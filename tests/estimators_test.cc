// Tests for the ATE estimators: each must de-bias a confounded DGP that
// fools the naive difference, and behave sensibly on edge cases.
#include <gtest/gtest.h>

#include <cmath>

#include "causal/estimators.h"
#include "core/rng.h"
#include "stats/logistic.h"

namespace sisyphus::causal {
namespace {

/// Confounded binary-treatment DGP with true ATE = 2:
///   W ~ N(0,1);  P(T=1) = sigmoid(1.5 W);  Y = 2 T + 3 W + noise.
Dataset MakeConfounded(std::size_t n, core::Rng& rng, double ate = 2.0) {
  std::vector<double> w(n), t(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = rng.Gaussian();
    t[i] = rng.Bernoulli(stats::Sigmoid(1.5 * w[i])) ? 1.0 : 0.0;
    y[i] = ate * t[i] + 3.0 * w[i] + rng.Gaussian(0.0, 0.5);
  }
  Dataset data;
  EXPECT_TRUE(data.AddColumn("W", std::move(w)).ok());
  EXPECT_TRUE(data.AddColumn("T", std::move(t)).ok());
  EXPECT_TRUE(data.AddColumn("Y", std::move(y)).ok());
  return data;
}

TEST(NaiveDifferenceTest, BiasedUnderConfounding) {
  core::Rng rng(1);
  const Dataset data = MakeConfounded(20000, rng);
  auto naive = NaiveDifference(data, "T", "Y");
  ASSERT_TRUE(naive.ok());
  // Treated units have higher W, so the naive contrast absorbs 3W.
  EXPECT_GT(naive.value().effect, 3.5);
}

TEST(NaiveDifferenceTest, UnbiasedUnderRandomization) {
  core::Rng rng(2);
  const std::size_t n = 20000;
  std::vector<double> t(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    t[i] = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    y[i] = 2.0 * t[i] + rng.Gaussian();
  }
  Dataset data;
  ASSERT_TRUE(data.AddColumn("T", std::move(t)).ok());
  ASSERT_TRUE(data.AddColumn("Y", std::move(y)).ok());
  auto naive = NaiveDifference(data, "T", "Y");
  ASSERT_TRUE(naive.ok());
  EXPECT_NEAR(naive.value().effect, 2.0, 0.05);
  EXPECT_NEAR(naive.value().standard_error, std::sqrt(2.0 / (n / 2.0)), 0.005);
}

TEST(NaiveDifferenceTest, RejectsNonBinaryTreatment) {
  Dataset data;
  ASSERT_TRUE(data.AddColumn("T", {0, 1, 2}).ok());
  ASSERT_TRUE(data.AddColumn("Y", {1, 2, 3}).ok());
  EXPECT_FALSE(NaiveDifference(data, "T", "Y").ok());
}

TEST(NaiveDifferenceTest, RejectsSingleArm) {
  Dataset data;
  ASSERT_TRUE(data.AddColumn("T", {1, 1, 1}).ok());
  ASSERT_TRUE(data.AddColumn("Y", {1, 2, 3}).ok());
  EXPECT_FALSE(NaiveDifference(data, "T", "Y").ok());
}

TEST(RegressionAdjustmentTest, RecoversAte) {
  core::Rng rng(3);
  const Dataset data = MakeConfounded(20000, rng);
  auto fit = RegressionAdjustment(data, "T", "Y", {"W"});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().effect, 2.0, 0.05);
  EXPECT_LT(fit.value().standard_error, 0.05);
}

TEST(RegressionAdjustmentTest, MissingColumnFails) {
  core::Rng rng(4);
  const Dataset data = MakeConfounded(100, rng);
  EXPECT_FALSE(RegressionAdjustment(data, "T", "Y", {"nope"}).ok());
}

TEST(StratificationTest, RecoversAte) {
  core::Rng rng(5);
  const Dataset data = MakeConfounded(30000, rng);
  StratificationOptions options;
  options.bins_per_covariate = 8;
  auto fit = Stratification(data, "T", "Y", {"W"}, options);
  ASSERT_TRUE(fit.ok());
  // Coarsening leaves a little residual confounding; tolerance reflects it.
  EXPECT_NEAR(fit.value().effect, 2.0, 0.25);
}

TEST(StratificationTest, NoCovariatesFallsBackToNaive) {
  core::Rng rng(6);
  const Dataset data = MakeConfounded(2000, rng);
  auto strat = Stratification(data, "T", "Y", {});
  auto naive = NaiveDifference(data, "T", "Y");
  ASSERT_TRUE(strat.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_DOUBLE_EQ(strat.value().effect, naive.value().effect);
}

TEST(StratificationTest, FailsWithoutOverlap) {
  // Treatment perfectly determined by W: no stratum has both arms.
  std::vector<double> w, t, y;
  for (int i = 0; i < 200; ++i) {
    w.push_back(i < 100 ? -2.0 : 2.0);
    t.push_back(i < 100 ? 0.0 : 1.0);
    y.push_back(0.0);
  }
  Dataset data;
  ASSERT_TRUE(data.AddColumn("W", std::move(w)).ok());
  ASSERT_TRUE(data.AddColumn("T", std::move(t)).ok());
  ASSERT_TRUE(data.AddColumn("Y", std::move(y)).ok());
  auto fit = Stratification(data, "T", "Y", {"W"});
  ASSERT_FALSE(fit.ok());
  EXPECT_EQ(fit.error().code(), core::ErrorCode::kPrecondition);
}

TEST(IpwTest, RecoversAte) {
  core::Rng rng(7);
  const Dataset data = MakeConfounded(30000, rng);
  auto fit = InversePropensityWeighting(data, "T", "Y", {"W"});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().effect, 2.0, 0.15);
}

TEST(IpwTest, ClippingBoundsWeights) {
  // Extreme propensities: without clipping the estimate would blow up;
  // with clipping it must stay finite and near truth.
  core::Rng rng(8);
  const std::size_t n = 20000;
  std::vector<double> w(n), t(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = rng.Gaussian();
    t[i] = rng.Bernoulli(stats::Sigmoid(4.0 * w[i])) ? 1.0 : 0.0;
    y[i] = 1.0 * t[i] + 1.0 * w[i] + rng.Gaussian(0.0, 0.3);
  }
  Dataset data;
  ASSERT_TRUE(data.AddColumn("W", std::move(w)).ok());
  ASSERT_TRUE(data.AddColumn("T", std::move(t)).ok());
  ASSERT_TRUE(data.AddColumn("Y", std::move(y)).ok());
  IpwOptions options;
  options.clip = 0.05;
  auto fit = InversePropensityWeighting(data, "T", "Y", {"W"}, options);
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(std::isfinite(fit.value().effect));
  // Clipping trades variance for bias; the point is boundedness.
  EXPECT_NEAR(fit.value().effect, 1.0, 0.8);
}

TEST(MatchingTest, RecoversAtt) {
  core::Rng rng(9);
  const Dataset data = MakeConfounded(8000, rng);
  auto fit = NearestNeighborMatching(data, "T", "Y", {"W"});
  ASSERT_TRUE(fit.ok());
  // Under a constant effect, ATT == ATE == 2.
  EXPECT_NEAR(fit.value().effect, 2.0, 0.25);
  EXPECT_EQ(fit.value().method, "nearest_neighbor_matching_att");
}

TEST(MatchingTest, RequiresCovariates) {
  core::Rng rng(10);
  const Dataset data = MakeConfounded(100, rng);
  EXPECT_FALSE(NearestNeighborMatching(data, "T", "Y", {}).ok());
}

TEST(DidTest, RemovesUnitLevelConfounding) {
  // Units have fixed effects correlated with treatment; a cross-sectional
  // contrast is biased, the differenced one is not. True effect = 1.5.
  core::Rng rng(11);
  const std::size_t n = 5000;
  std::vector<double> d(n), pre(n), post(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double unit_level = rng.Gaussian(0.0, 2.0);
    d[i] = rng.Bernoulli(stats::Sigmoid(unit_level)) ? 1.0 : 0.0;
    const double trend = 0.5;  // common time trend
    pre[i] = unit_level + rng.Gaussian(0.0, 0.3);
    post[i] = unit_level + trend + 1.5 * d[i] + rng.Gaussian(0.0, 0.3);
  }
  Dataset data;
  ASSERT_TRUE(data.AddColumn("D", std::move(d)).ok());
  ASSERT_TRUE(data.AddColumn("pre", std::move(pre)).ok());
  ASSERT_TRUE(data.AddColumn("post", std::move(post)).ok());
  auto fit = DifferenceInDifferences(data, "D", "pre", "post");
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().effect, 1.5, 0.1);

  // The cross-sectional post-period contrast is badly biased.
  auto naive = NaiveDifference(data, "D", "post");
  ASSERT_TRUE(naive.ok());
  EXPECT_GT(naive.value().effect, 2.5);
}

TEST(EffectEstimateTest, ConfidenceIntervalArithmetic) {
  EffectEstimate e;
  e.effect = 2.0;
  e.standard_error = 0.5;
  EXPECT_NEAR(e.ci_lower(), 1.02, 1e-9);
  EXPECT_NEAR(e.ci_upper(), 2.98, 1e-9);
}

// Cross-estimator agreement sweep: all adjustment estimators should land
// near the truth on the same confounded data.
class EstimatorAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(EstimatorAgreementTest, AllAdjustedEstimatorsAgree) {
  core::Rng rng(static_cast<std::uint64_t>(100 + GetParam()));
  const Dataset data = MakeConfounded(12000, rng);
  auto regression = RegressionAdjustment(data, "T", "Y", {"W"});
  auto ipw = InversePropensityWeighting(data, "T", "Y", {"W"});
  auto matching = NearestNeighborMatching(data, "T", "Y", {"W"});
  ASSERT_TRUE(regression.ok());
  ASSERT_TRUE(ipw.ok());
  ASSERT_TRUE(matching.ok());
  EXPECT_NEAR(regression.value().effect, 2.0, 0.1);
  EXPECT_NEAR(ipw.value().effect, 2.0, 0.3);
  EXPECT_NEAR(matching.value().effect, 2.0, 0.3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorAgreementTest,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace sisyphus::causal
