// Streaming-vs-batch byte-identity: the full Table 1 campaign (ScenarioZa
// under a fault plan) must produce the same panel CSV, the same metrics
// registry snapshot, and the same lineage ledger whether records flow
// through the batch merge or the sharded streaming ingest, at any thread
// count (here 1 and 8). This is the property the streaming ctest fixture
// and the CI streaming-smoke job enforce on the shipped binaries; this
// test enforces it in-process where a diff is debuggable.
#include <gtest/gtest.h>

#include <string>

#include "core/parallel.h"
#include "measure/export.h"
#include "measure/faults.h"
#include "measure/panel.h"
#include "measure/platform.h"
#include "netsim/scenario_za.h"
#include "obs/lineage.h"
#include "obs/metrics.h"

namespace sisyphus {
namespace {

struct Artifacts {
  std::string panel_csv;
  std::string metrics_json;
  std::string lineage_json;
};

measure::FaultPlan ParityPlan() {
  measure::FaultPlan plan;
  plan.seed = 42;
  plan.probe_loss_probability = 0.15;
  plan.duplicate_probability = 0.02;
  plan.corruption_probability = 0.01;
  plan.max_clock_skew = core::SimTime(3);
  return plan;
}

/// One campaign; every obs global is reset first so the snapshots cover
/// exactly this run. The run label is fixed so ledgers are comparable.
Artifacts RunCampaign(bool streaming, std::size_t threads) {
  core::ThreadPool::SetGlobalThreadCount(threads);
  obs::Registry::Global().ResetAll();
  obs::Lineage::Global().Reset();
  obs::Lineage::Global().BeginRun("parity");

  netsim::ScenarioZaOptions scenario_options;
  netsim::ScenarioZa scenario = netsim::BuildScenarioZa(scenario_options);

  measure::PlatformOptions platform_options;
  platform_options.server = scenario.content_jnb;
  platform_options.step = core::SimTime::FromHours(1);
  measure::Platform platform(*scenario.simulator, platform_options);

  measure::VantageConfig vantage;
  vantage.baseline_tests_per_day = 10.0;
  vantage.user_tests_per_day = 4.0;
  for (const auto& unit : scenario.treated) {
    vantage.pop = unit.access_pop;
    platform.AddVantage(vantage);
  }
  for (netsim::PopIndex donor : scenario.donors) {
    vantage.pop = donor;
    platform.AddVantage(vantage);
  }

  const measure::FaultPlan plan = ParityPlan();
  measure::FaultInjector injector(plan);
  platform.SetFaultInjector(&injector);

  measure::PanelOptions panel_options;
  panel_options.bucket = core::SimTime::FromHours(6);
  panel_options.periods = static_cast<std::size_t>(
      scenario_options.horizon.minutes() / panel_options.bucket.minutes());

  core::Rng rng(scenario_options.seed);
  Artifacts out;
  if (streaming) {
    measure::StreamingOptions streaming_options;
    streaming_options.panel = panel_options;
    measure::StreamingCampaign stream(platform_options.validation,
                                      streaming_options);
    platform.RunStreaming(scenario_options.horizon, rng, stream);
    out.panel_csv = measure::PanelToCsv(stream.FinalizePanel());
  } else {
    platform.Run(scenario_options.horizon, rng);
    out.panel_csv = measure::PanelToCsv(
        measure::BuildRttPanel(platform.store(), panel_options));
  }
  out.metrics_json = obs::Registry::Global().SnapshotJson();
  out.lineage_json = obs::Lineage::Global().ToJson();
  return out;
}

TEST(StreamParityTest, StreamingMatchesBatchByteForByteAtAnyThreadCount) {
  const bool metrics_were_enabled = obs::Registry::enabled();
  const bool lineage_was_enabled = obs::Lineage::enabled();
  obs::Registry::Enable(true);
  obs::Lineage::Enable(true);

  const Artifacts batch = RunCampaign(/*streaming=*/false, /*threads=*/1);
  ASSERT_FALSE(batch.panel_csv.empty());

  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    const Artifacts streamed = RunCampaign(/*streaming=*/true, threads);
    EXPECT_EQ(streamed.panel_csv, batch.panel_csv)
        << "panel diverged at " << threads << " threads";
    EXPECT_EQ(streamed.metrics_json, batch.metrics_json)
        << "metrics diverged at " << threads << " threads";
    EXPECT_EQ(streamed.lineage_json, batch.lineage_json)
        << "lineage diverged at " << threads << " threads";
  }

  // The batch path itself must also be thread-count invariant.
  const Artifacts batch8 = RunCampaign(/*streaming=*/false, /*threads=*/8);
  EXPECT_EQ(batch8.metrics_json, batch.metrics_json);
  EXPECT_EQ(batch8.lineage_json, batch.lineage_json);

  obs::Registry::Global().ResetAll();
  obs::Lineage::Global().Reset();
  obs::Registry::Enable(metrics_were_enabled);
  obs::Lineage::Enable(lineage_was_enabled);
  core::ThreadPool::SetGlobalThreadCount(0);
}

}  // namespace
}  // namespace sisyphus
