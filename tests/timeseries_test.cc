// Tests for TimeSeries bucketing and missing-data handling.
#include <gtest/gtest.h>

#include "stats/timeseries.h"

namespace sisyphus::stats {
namespace {

using core::SimTime;

TEST(TimeSeriesTest, AppendEnforcesOrder) {
  TimeSeries series;
  series.Append(SimTime(10), 1.0);
  series.Append(SimTime(10), 2.0);  // equal time ok
  EXPECT_THROW(series.Append(SimTime(5), 3.0), std::logic_error);
}

TEST(TimeSeriesTest, ValuesInWindowHalfOpen) {
  TimeSeries series;
  for (int minute : {0, 10, 20, 30}) {
    series.Append(SimTime(minute), static_cast<double>(minute));
  }
  const auto values = series.ValuesInWindow(SimTime(10), SimTime(30));
  EXPECT_EQ(values, (std::vector<double>{10, 20}));
}

TEST(TimeSeriesTest, MedianInWindow) {
  TimeSeries series;
  series.Append(SimTime(1), 5.0);
  series.Append(SimTime(2), 1.0);
  series.Append(SimTime(3), 9.0);
  const auto median = series.MedianInWindow(SimTime(0), SimTime(10));
  ASSERT_TRUE(median.has_value());
  EXPECT_DOUBLE_EQ(*median, 5.0);
  EXPECT_FALSE(series.MedianInWindow(SimTime(10), SimTime(20)).has_value());
}

TEST(TimeSeriesTest, BucketedMediansWithGaps) {
  TimeSeries series;
  series.Append(SimTime(0), 1.0);
  series.Append(SimTime(1), 3.0);
  // bucket [10,20) empty
  series.Append(SimTime(25), 7.0);
  const auto buckets =
      series.BucketedMedians(SimTime(0), SimTime(10), 3);
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(*buckets[0], 2.0);
  EXPECT_FALSE(buckets[1].has_value());
  EXPECT_DOUBLE_EQ(*buckets[2], 7.0);
}

TEST(TimeSeriesTest, MissingHelpers) {
  std::vector<std::optional<double>> buckets{1.0, std::nullopt, 3.0,
                                             std::nullopt};
  EXPECT_FALSE(AllMissing(buckets));
  EXPECT_DOUBLE_EQ(MissingFraction(buckets), 0.5);
  std::vector<std::optional<double>> empty{std::nullopt, std::nullopt};
  EXPECT_TRUE(AllMissing(empty));
}

TEST(TimeSeriesTest, InterpolateLinearInInterior) {
  std::vector<std::optional<double>> buckets{0.0, std::nullopt, std::nullopt,
                                             3.0};
  const auto filled = InterpolateMissing(buckets);
  EXPECT_DOUBLE_EQ(filled[1], 1.0);
  EXPECT_DOUBLE_EQ(filled[2], 2.0);
}

TEST(TimeSeriesTest, InterpolatePropagatesEdges) {
  std::vector<std::optional<double>> buckets{std::nullopt, 5.0, std::nullopt};
  const auto filled = InterpolateMissing(buckets);
  EXPECT_DOUBLE_EQ(filled[0], 5.0);
  EXPECT_DOUBLE_EQ(filled[2], 5.0);
}

TEST(TimeSeriesTest, InterpolateAllMissingThrows) {
  std::vector<std::optional<double>> buckets{std::nullopt, std::nullopt};
  EXPECT_THROW(InterpolateMissing(buckets), std::logic_error);
}

TEST(TimeSeriesTest, DifferenceOperator) {
  const std::vector<double> xs{1, 4, 9, 16};
  EXPECT_EQ(Difference(xs), (std::vector<double>{3, 5, 7}));
  const std::vector<double> single{1};
  EXPECT_TRUE(Difference(single).empty());
}

TEST(TimeSeriesTest, ValuesDropTimestamps) {
  TimeSeries series;
  series.Append(SimTime(0), 1.5);
  series.Append(SimTime(60), 2.5);
  EXPECT_EQ(series.Values(), (std::vector<double>{1.5, 2.5}));
  EXPECT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[1].value, 2.5);
}

}  // namespace
}  // namespace sisyphus::stats
