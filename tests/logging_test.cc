// Tests for core logging: level parsing, the SISYPHUS_LOG_LEVEL
// environment hook, and structured LogField rendering/quoting.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>

#include "core/logging.h"

namespace sisyphus::core {
namespace {

/// Saves and restores the global level (and the env var) so these tests
/// cannot leak verbosity into the rest of the suite.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_level_ = GetLogLevel(); }
  void TearDown() override {
    ::unsetenv("SISYPHUS_LOG_LEVEL");
    SetLogLevel(saved_level_);
  }
  LogLevel saved_level_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, ParseLogLevelAcceptsKnownNames) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("warning"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off"), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("none"), LogLevel::kOff);
}

TEST_F(LoggingTest, ParseLogLevelIsCaseInsensitive) {
  EXPECT_EQ(ParseLogLevel("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("Warn"), LogLevel::kWarn);
}

TEST_F(LoggingTest, ParseLogLevelRejectsUnknownNames) {
  EXPECT_EQ(ParseLogLevel(""), std::nullopt);
  EXPECT_EQ(ParseLogLevel("verbose"), std::nullopt);
  EXPECT_EQ(ParseLogLevel("warn "), std::nullopt);
}

TEST_F(LoggingTest, InitLogLevelFromEnvAppliesTheVariable) {
  ::setenv("SISYPHUS_LOG_LEVEL", "debug", 1);
  EXPECT_EQ(InitLogLevelFromEnv(), LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, InitLogLevelFromEnvLeavesLevelOnBadValue) {
  SetLogLevel(LogLevel::kError);
  ::setenv("SISYPHUS_LOG_LEVEL", "shouting", 1);
  EXPECT_EQ(InitLogLevelFromEnv(), std::nullopt);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, InitLogLevelFromEnvNoOpWhenUnset) {
  ::unsetenv("SISYPHUS_LOG_LEVEL");
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(InitLogLevelFromEnv(), std::nullopt);
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST_F(LoggingTest, LogFieldRendersPlainValuesUnquoted) {
  EXPECT_EQ(LogField("unit", "za-7").Render(), "unit=za-7");
  EXPECT_EQ(LogField("count", std::int64_t{42}).Render(), "count=42");
  EXPECT_EQ(LogField("ok", true).Render(), "ok=true");
}

TEST_F(LoggingTest, LogFieldQuotesValuesNeedingIt) {
  EXPECT_EQ(LogField("msg", "two words").Render(), "msg=\"two words\"");
  EXPECT_EQ(LogField("expr", "a=b").Render(), "expr=\"a=b\"");
  EXPECT_EQ(LogField("q", "say \"hi\"").Render(), "q=\"say \\\"hi\\\"\"");
  EXPECT_EQ(LogField("empty", "").Render(), "empty=\"\"");
}

TEST_F(LoggingTest, LogFieldFormatsDoublesCompactly) {
  EXPECT_EQ(LogField("f", 0.25).Render(), "f=0.25");
  EXPECT_EQ(LogField("f", 3.0).Render(), "f=3");
}

}  // namespace
}  // namespace sisyphus::core
