// Tests for two-stage least squares: OLS is biased under confounding,
// 2SLS with a valid instrument is not; weak-instrument diagnostics.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "stats/iv.h"

namespace sisyphus::stats {
namespace {

/// Confounded DGP: U -> T, U -> Y, Z -> T, T -> Y (true effect = beta).
/// Returns (y, t, z, u).
struct ConfoundedData {
  Vector y, t, z, u;
};

ConfoundedData MakeConfounded(std::size_t n, double beta,
                              double instrument_strength, core::Rng& rng) {
  ConfoundedData d;
  d.y.resize(n);
  d.t.resize(n);
  d.z.resize(n);
  d.u.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    d.u[i] = rng.Gaussian();
    d.z[i] = rng.Gaussian();
    d.t[i] = instrument_strength * d.z[i] + 1.5 * d.u[i] +
             rng.Gaussian(0.0, 0.5);
    d.y[i] = beta * d.t[i] + 2.0 * d.u[i] + rng.Gaussian(0.0, 0.5);
  }
  return d;
}

TEST(TwoStageLeastSquaresTest, RecoversEffectUnderConfounding) {
  core::Rng rng(1);
  const auto d = MakeConfounded(20000, 1.0, 1.0, rng);
  const Matrix z = Matrix::FromColumns({d.z});
  auto fit = TwoStageLeastSquares(d.y, d.t, z, Matrix(d.y.size(), 0));
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().TreatmentEffect(), 1.0, 0.05);
  EXPECT_FALSE(fit.value().WeakInstrument());
  EXPECT_GT(fit.value().first_stage_f, 100.0);
}

TEST(TwoStageLeastSquaresTest, OlsIsBiasedOnSameData) {
  // The point of the exercise: naive regression absorbs the confounder.
  core::Rng rng(2);
  const auto d = MakeConfounded(20000, 1.0, 1.0, rng);
  const Matrix x = Matrix::FromColumns({d.t});
  auto ols = Ols(x, d.y);
  ASSERT_TRUE(ols.ok());
  EXPECT_GT(ols.value().coefficients[1], 1.3);  // upward confounding bias
}

TEST(TwoStageLeastSquaresTest, FlagsWeakInstrument) {
  core::Rng rng(3);
  const auto d = MakeConfounded(2000, 1.0, 0.02, rng);
  const Matrix z = Matrix::FromColumns({d.z});
  auto fit = TwoStageLeastSquares(d.y, d.t, z, Matrix(d.y.size(), 0));
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(fit.value().WeakInstrument());
}

TEST(TwoStageLeastSquaresTest, ControlsAreCarriedThrough) {
  // Observable confounder W enters both equations; including it as a
  // control keeps the IV estimate clean.
  core::Rng rng(4);
  const std::size_t n = 20000;
  Vector y(n), t(n), z(n), w(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = rng.Gaussian();
    z[i] = rng.Gaussian();
    t[i] = z[i] + 2.0 * w[i] + rng.Gaussian(0.0, 0.5);
    y[i] = 0.7 * t[i] - 1.0 * w[i] + rng.Gaussian(0.0, 0.5);
  }
  auto fit = TwoStageLeastSquares(y, t, Matrix::FromColumns({z}),
                                  Matrix::FromColumns({w}));
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().TreatmentEffect(), 0.7, 0.05);
  // Control coefficient recovered too: [intercept, T, W].
  EXPECT_NEAR(fit.value().coefficients[2], -1.0, 0.05);
}

TEST(TwoStageLeastSquaresTest, StandardErrorsCoverTruth) {
  core::Rng rng(5);
  int covered = 0;
  const int reps = 200;
  for (int rep = 0; rep < reps; ++rep) {
    const auto d = MakeConfounded(500, 1.0, 1.0, rng);
    auto fit = TwoStageLeastSquares(d.y, d.t, Matrix::FromColumns({d.z}),
                                    Matrix(d.y.size(), 0));
    ASSERT_TRUE(fit.ok());
    if (std::abs(fit.value().TreatmentEffect() - 1.0) <=
        1.96 * fit.value().TreatmentStdError()) {
      ++covered;
    }
  }
  EXPECT_NEAR(covered / static_cast<double>(reps), 0.95, 0.06);
}

TEST(TwoStageLeastSquaresTest, SignificantPValueForRealEffect) {
  core::Rng rng(6);
  const auto d = MakeConfounded(5000, 1.0, 1.0, rng);
  auto fit = TwoStageLeastSquares(d.y, d.t, Matrix::FromColumns({d.z}),
                                  Matrix(d.y.size(), 0));
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit.value().TreatmentPValue(), 1e-6);
}

TEST(TwoStageLeastSquaresTest, NullEffectNotRejectedTooOften) {
  core::Rng rng(7);
  int rejections = 0;
  const int reps = 200;
  for (int rep = 0; rep < reps; ++rep) {
    const auto d = MakeConfounded(500, 0.0, 1.0, rng);
    auto fit = TwoStageLeastSquares(d.y, d.t, Matrix::FromColumns({d.z}),
                                    Matrix(d.y.size(), 0));
    ASSERT_TRUE(fit.ok());
    if (fit.value().TreatmentPValue() < 0.05) ++rejections;
  }
  EXPECT_LT(rejections / static_cast<double>(reps), 0.12);
}

TEST(TwoStageLeastSquaresTest, MultipleInstruments) {
  core::Rng rng(8);
  const std::size_t n = 10000;
  Vector y(n), t(n), z1(n), z2(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.Gaussian();
    z1[i] = rng.Gaussian();
    z2[i] = rng.Gaussian();
    t[i] = 0.7 * z1[i] + 0.5 * z2[i] + u + rng.Gaussian(0.0, 0.5);
    y[i] = 2.0 * t[i] + 3.0 * u + rng.Gaussian(0.0, 0.5);
  }
  auto fit = TwoStageLeastSquares(y, t, Matrix::FromColumns({z1, z2}),
                                  Matrix(n, 0));
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().TreatmentEffect(), 2.0, 0.08);
}

TEST(TwoStageLeastSquaresTest, RejectsShapeErrors) {
  Vector y{1, 2, 3};
  Vector t{1, 2};
  EXPECT_FALSE(
      TwoStageLeastSquares(y, t, Matrix(3, 1), Matrix(3, 0)).ok());
  Vector t3{1, 2, 3};
  EXPECT_FALSE(
      TwoStageLeastSquares(y, t3, Matrix(3, 0), Matrix(3, 0)).ok());
}

}  // namespace
}  // namespace sisyphus::stats
