// Tests for sisyphus::core — Result/Status, strong IDs, Rng determinism
// and distribution sanity, SimTime arithmetic, logging levels.
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "core/error.h"
#include "core/ids.h"
#include "core/logging.h"
#include "core/result.h"
#include "core/rng.h"
#include "core/sim_time.h"

namespace sisyphus::core {
namespace {

// ---- Result / Status -------------------------------------------------------

Result<int> ParsePositive(int x) {
  if (x <= 0) return Error(ErrorCode::kInvalidArgument, "not positive");
  return x;
}

TEST(ResultTest, HoldsValue) {
  auto r = ParsePositive(4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 4);
  EXPECT_EQ(r.value_or(-1), 4);
}

TEST(ResultTest, HoldsError) {
  auto r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(r.error().message(), "not positive");
  EXPECT_EQ(r.value_or(-7), -7);
}

TEST(ResultTest, ValueOnErrorThrows) {
  auto r = ParsePositive(0);
  EXPECT_THROW(r.value(), std::logic_error);
}

TEST(ResultTest, ErrorOnSuccessThrows) {
  auto r = ParsePositive(1);
  EXPECT_THROW(r.error(), std::logic_error);
}

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_THROW(s.error(), std::logic_error);
}

TEST(StatusTest, CarriesError) {
  Status s = Error(ErrorCode::kNotFound, "missing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().ToText(), "not_found: missing");
}

TEST(ErrorTest, CodeNamesAreStable) {
  EXPECT_STREQ(ToString(ErrorCode::kParseError), "parse_error");
  EXPECT_STREQ(ToString(ErrorCode::kNotIdentifiable), "not_identifiable");
  EXPECT_STREQ(ToString(ErrorCode::kNumericalFailure), "numerical_failure");
}

// ---- Strong IDs -------------------------------------------------------------

TEST(StrongIdTest, ComparesByValue) {
  Asn a{3741}, b{3741}, c{37053};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
}

TEST(StrongIdTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<Asn, LinkId>);
  static_assert(!std::is_same_v<CityId, NodeId>);
}

TEST(StrongIdTest, Hashable) {
  std::unordered_set<Asn> set;
  set.insert(Asn{1});
  set.insert(Asn{1});
  set.insert(Asn{2});
  EXPECT_EQ(set.size(), 2u);
}

// ---- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GE(differing, 9);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::array<int, 6> counts{};
  const int n = 60000;
  for (int i = 0; i < n; ++i) counts[rng.UniformInt(0, 5)]++;
  for (int c : counts) {
    EXPECT_NEAR(c, n / 6.0, 5.0 * std::sqrt(n / 6.0));
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(9, 9), 9);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(123);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(RngTest, GaussianScaleShift) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, ParetoRespectsMinimum) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.Pareto(2.0, 3.0), 2.0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(RngTest, PoissonSmallAndLargeMean) {
  Rng rng(19);
  double sum_small = 0.0, sum_large = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum_small += rng.Poisson(3.0);
  for (int i = 0; i < n; ++i) sum_large += rng.Poisson(120.0);
  EXPECT_NEAR(sum_small / n, 3.0, 0.1);
  EXPECT_NEAR(sum_large / n, 120.0, 0.5);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(23);
  EXPECT_EQ(rng.Poisson(0.0), 0u);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Split();
  // The child stream should differ from the parent's continuation.
  int differing = 0;
  for (int i = 0; i < 10; ++i) {
    if (parent.Next() != child.Next()) ++differing;
  }
  EXPECT_GE(differing, 9);
}

TEST(RngTest, PreconditionViolationsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.Uniform(2.0, 1.0), std::logic_error);
  EXPECT_THROW(rng.Gaussian(0.0, -1.0), std::logic_error);
  EXPECT_THROW(rng.Exponential(0.0), std::logic_error);
  EXPECT_THROW(rng.Bernoulli(1.5), std::logic_error);
}

// ---- SimTime ----------------------------------------------------------------

TEST(SimTimeTest, ConstructorsAgree) {
  EXPECT_EQ(SimTime::FromHours(2.0).minutes(), 120);
  EXPECT_EQ(SimTime::FromDays(1.0).minutes(), 24 * 60);
  EXPECT_DOUBLE_EQ(SimTime(90).hours(), 1.5);
}

TEST(SimTimeTest, HourOfDayWraps) {
  EXPECT_DOUBLE_EQ(SimTime::FromHours(25.0).HourOfDay(), 1.0);
  EXPECT_DOUBLE_EQ(SimTime::FromHours(0.0).HourOfDay(), 0.0);
  EXPECT_DOUBLE_EQ(SimTime::FromHours(23.5).HourOfDay(), 23.5);
}

TEST(SimTimeTest, DayIndex) {
  EXPECT_EQ(SimTime::FromDays(0.0).DayIndex(), 0);
  EXPECT_EQ(SimTime::FromDays(2.5).DayIndex(), 2);
  EXPECT_EQ(SimTime::FromHours(47.9).DayIndex(), 1);
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime a = SimTime::FromHours(3.0);
  const SimTime b = SimTime::FromHours(1.0);
  EXPECT_EQ((a + b).minutes(), 240);
  EXPECT_EQ((a - b).minutes(), 120);
  EXPECT_LT(b, a);
  EXPECT_LE(a, a);
  EXPECT_GT(a, b);
}

TEST(SimTimeTest, ToTextFormat) {
  EXPECT_EQ(SimTime::FromDays(12.0).ToText().substr(0, 3), "d12");
  EXPECT_EQ(SimTime(12 * 24 * 60 + 390).ToText(), "d12 06:30");
}

// ---- Logging ----------------------------------------------------------------

TEST(LoggingTest, LevelFilterRoundTrips) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SISYPHUS_LOG(kDebug) << "should be filtered";  // must not crash
  SetLogLevel(before);
}

}  // namespace
}  // namespace sisyphus::core
