// Tests for PoiRoot-style root-cause localization, including an accuracy
// sweep over random failures in random Internets where the ground-truth
// culprit is known.
#include <gtest/gtest.h>

#include "netsim/root_cause.h"
#include "netsim/scenario_random.h"

namespace sisyphus::netsim {
namespace {

using core::Asn;
using core::LinkId;

/// Chain src -> t1 -> t2 -> dst (providers upward), plus a backup
/// src -> b -> dst.
struct Fixture {
  Topology topo;
  PopIndex src = 0, t1 = 0, t2 = 0, b = 0, dst = 0;
  LinkId t1_t2, t2_dst, src_b;

  Fixture() {
    const auto city = topo.cities().Add({"X", {0, 0}, 0});
    src = topo.AddPop(Asn{10}, city, AsRole::kAccess).value();
    t1 = topo.AddPop(Asn{20}, city, AsRole::kTransit).value();
    t2 = topo.AddPop(Asn{30}, city, AsRole::kTransit).value();
    b = topo.AddPop(Asn{40}, city, AsRole::kTransit).value();
    dst = topo.AddPop(Asn{50}, city, AsRole::kContent).value();
    (void)topo.AddLink(src, t1, Relationship::kCustomerToProvider);
    t1_t2 = topo.AddLink(t1, t2, Relationship::kCustomerToProvider).value();
    t2_dst = topo.AddLink(dst, t2, Relationship::kCustomerToProvider).value();
    src_b = topo.AddLink(src, b, Relationship::kCustomerToProvider).value();
    (void)topo.AddLink(dst, b, Relationship::kCustomerToProvider);
    // Prefer the t1 path initially: shorter tie broken by pop index, but
    // t1 path is LONGER (4 asns vs 3) — so boost it via... actually the
    // backup (src->b->dst) is shorter and wins; drain it initially so the
    // deep chain is primary.
    topo.MutableLink(src_b).up = false;
  }
};

TEST(RootCauseTest, DeepLinkFailureLocalizedAtClosestChangedHop) {
  Fixture f;
  BgpSimulator bgp(f.topo);
  const RouteTable before = bgp.RoutesTo(f.dst);
  ASSERT_TRUE(before.best[f.src].has_value());

  // Fail the deep t2 -> dst link AND bring the backup up, so src shifts.
  f.topo.MutableLink(f.t2_dst).up = false;
  f.topo.MutableLink(f.src_b).up = true;
  bgp.InvalidateCache();
  const RouteTable after = bgp.RoutesTo(f.dst);

  auto result = LocalizeRouteChange(f.topo, before, after, f.src);
  ASSERT_TRUE(result.ok());
  // t2 lost its customer route to dst: it is the closest-to-destination
  // changed hop on the old path.
  EXPECT_EQ(result.value().culprit, f.t2);
  EXPECT_EQ(result.value().kind, RouteChangeKind::kWithdrawal);
  EXPECT_NE(result.value().explanation.find("AS30"), std::string::npos);
}

TEST(RootCauseTest, NewPreferredRouteClassified) {
  Fixture f;
  BgpSimulator bgp(f.topo);
  const RouteTable before = bgp.RoutesTo(f.dst);
  // Bring up the backup: src switches to the shorter path even though
  // nothing on the old path changed.
  f.topo.MutableLink(f.src_b).up = true;
  bgp.InvalidateCache();
  const RouteTable after = bgp.RoutesTo(f.dst);
  auto result = LocalizeRouteChange(f.topo, before, after, f.src);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().kind, RouteChangeKind::kNewRoute);
  // The new option originates at src itself (its new adjacency).
  EXPECT_EQ(result.value().culprit, f.src);
}

TEST(RootCauseTest, NoChangeDetected) {
  Fixture f;
  BgpSimulator bgp(f.topo);
  const RouteTable before = bgp.RoutesTo(f.dst);
  auto result = LocalizeRouteChange(f.topo, before, before, f.src);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().kind, RouteChangeKind::kNoChange);
}

TEST(RootCauseTest, ValidationErrors) {
  Fixture f;
  BgpSimulator bgp(f.topo);
  const RouteTable to_dst = bgp.RoutesTo(f.dst);
  const RouteTable to_t1 = bgp.RoutesTo(f.t1);
  EXPECT_FALSE(LocalizeRouteChange(f.topo, to_dst, to_t1, f.src).ok());
}

TEST(RootCauseTest, KindNamesStable) {
  EXPECT_STREQ(ToString(RouteChangeKind::kWithdrawal), "withdrawal");
  EXPECT_STREQ(ToString(RouteChangeKind::kNewRoute), "new_route");
}

// Accuracy sweep: random internets, random single-link failures with a
// known culprit; localization should put the blame on one of the two
// endpoint ASes of the failed link in the vast majority of cases.
class RootCauseAccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(RootCauseAccuracyTest, BlamesAnEndpointOfTheFailedLink) {
  RandomInternetOptions options;
  options.seed = static_cast<std::uint64_t>(100 + GetParam());
  options.access_count = 20;
  options.multihoming_probability = 0.8;  // ensure reroutes, not blackouts
  auto world = BuildRandomInternet(options);
  auto& sim = *world.simulator;
  const PopIndex dst = world.content.front();

  std::size_t changes = 0, endpoint_blamed = 0;
  for (core::LinkId::underlying_type raw = 0;
       raw < sim.topology().LinkCount(); ++raw) {
    const LinkId link{raw};
    const RouteTable before = sim.bgp().RoutesTo(dst);
    sim.topology().MutableLink(link).up = false;
    sim.bgp().InvalidateCache();
    const RouteTable after = sim.bgp().RoutesTo(dst);
    const auto& l = sim.topology().GetLink(link);
    for (PopIndex src : world.access) {
      if (!before.best[src].has_value() || !after.best[src].has_value()) {
        continue;
      }
      if (before.best[src]->pop_path == after.best[src]->pop_path) continue;
      ++changes;
      auto result = LocalizeRouteChange(sim.topology(), before, after, src);
      ASSERT_TRUE(result.ok());
      if (result.value().culprit == l.a || result.value().culprit == l.b) {
        ++endpoint_blamed;
      }
    }
    sim.topology().MutableLink(link).up = true;
    sim.bgp().InvalidateCache();
  }
  ASSERT_GT(changes, 0u);
  EXPECT_GT(static_cast<double>(endpoint_blamed) /
                static_cast<double>(changes),
            0.9)
      << endpoint_blamed << "/" << changes;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RootCauseAccuracyTest, ::testing::Range(0, 4));

}  // namespace
}  // namespace sisyphus::netsim
