// Tests for the structural causal model: sampling, do-interventions, and
// exact abduction-action-prediction counterfactuals on the paper's
// routing/latency running example.
#include <gtest/gtest.h>

#include "causal/dag_parser.h"
#include "causal/scm.h"
#include "stats/descriptive.h"

namespace sisyphus::causal {
namespace {

/// The paper's running example: C -> R, C -> L, R -> L, with known linear
/// coefficients. True causal effect of R on L is 2.0; the confounding via
/// C inflates the naive association.
Scm RunningExampleScm() {
  auto dag = ParseDag("C -> R; C -> L; R -> L");
  EXPECT_TRUE(dag.ok());
  Scm scm(std::move(dag).value());
  EXPECT_TRUE(scm.SetLinear("C", 0.0, {}, 1.0).ok());
  EXPECT_TRUE(scm.SetLinear("R", 0.0, {{"C", 1.5}}, 0.5).ok());
  EXPECT_TRUE(scm.SetLinear("L", 10.0, {{"C", 3.0}, {"R", 2.0}}, 0.5).ok());
  return scm;
}

TEST(ScmTest, SampleShapesAndColumns) {
  const Scm scm = RunningExampleScm();
  core::Rng rng(1);
  const Dataset data = scm.Sample(100, rng);
  EXPECT_EQ(data.rows(), 100u);
  EXPECT_TRUE(data.HasColumn("C"));
  EXPECT_TRUE(data.HasColumn("R"));
  EXPECT_TRUE(data.HasColumn("L"));
}

TEST(ScmTest, SampleRespectsStructure) {
  const Scm scm = RunningExampleScm();
  core::Rng rng(2);
  const Dataset data = scm.Sample(50000, rng);
  // E[L] = 10 (C and R centered).
  EXPECT_NEAR(stats::Mean(data.ColumnOrDie("L")), 10.0, 0.1);
  // Corr(C, R) strong and positive.
  EXPECT_GT(stats::PearsonCorrelation(data.ColumnOrDie("C"),
                                      data.ColumnOrDie("R")),
            0.8);
}

TEST(ScmTest, LatentsExcludedUnlessRequested) {
  auto dag = ParseDag("H [latent]; H -> Y");
  ASSERT_TRUE(dag.ok());
  Scm scm(std::move(dag).value());
  core::Rng rng(3);
  EXPECT_FALSE(scm.Sample(5, rng).HasColumn("H"));
  EXPECT_TRUE(scm.Sample(5, rng, {}, /*include_latents=*/true).HasColumn("H"));
}

TEST(ScmTest, InterventionBreaksConfounding) {
  const Scm scm = RunningExampleScm();
  core::Rng rng(4);
  // Under do(R = r): E[L] = 10 + 2 r (the C -> R edge is severed).
  const auto r = scm.dag().Node("R").value();
  const auto l = scm.dag().Node("L").value();
  EXPECT_NEAR(scm.ExpectedUnderIntervention(l, {{r, 1.0}}, 40000, rng), 12.0,
              0.1);
  EXPECT_NEAR(scm.ExpectedUnderIntervention(l, {{r, 0.0}}, 40000, rng), 10.0,
              0.1);
}

TEST(ScmTest, AverageTreatmentEffectMatchesCoefficient) {
  const Scm scm = RunningExampleScm();
  core::Rng rng(5);
  const auto r = scm.dag().Node("R").value();
  const auto l = scm.dag().Node("L").value();
  EXPECT_NEAR(scm.AverageTreatmentEffect(r, l, 1.0, 0.0, 60000, rng), 2.0,
              0.1);
}

TEST(ScmTest, AssociationExceedsCausalEffectUnderConfounding) {
  // The observational slope of L on R is 2 + 3*cov(C,R)/var(R) > 2.
  const Scm scm = RunningExampleScm();
  core::Rng rng(6);
  const Dataset data = scm.Sample(50000, rng);
  const auto r_col = data.ColumnOrDie("R");
  const auto l_col = data.ColumnOrDie("L");
  const double slope = stats::Covariance(r_col, l_col) /
                       stats::Variance(r_col);
  EXPECT_GT(slope, 3.0);  // true effect is 2.0
}

TEST(ScmTest, CounterfactualExactInDeterministicWorld) {
  const Scm scm = RunningExampleScm();
  // Hand-built factual world: C=1, R=2 (noise 0.5), L=10+3+4+1=18
  // (noise 1).
  std::unordered_map<std::string, double> factual{
      {"C", 1.0}, {"R", 2.0}, {"L", 18.0}};
  // Counterfactual: had R been 0, L = 10 + 3*1 + 0 + noise(L)=1 -> 14.
  auto world = scm.Counterfactual(factual, {{scm.dag().Node("R").value(), 0.0}});
  ASSERT_TRUE(world.ok());
  EXPECT_NEAR(world.value().at("L"), 14.0, 1e-9);
  // C unchanged (not downstream of R).
  EXPECT_NEAR(world.value().at("C"), 1.0, 1e-12);
}

TEST(ScmTest, CounterfactualConsistency) {
  // Intervening with the factual treatment value must reproduce the
  // factual world exactly (Pearl's consistency property).
  const Scm scm = RunningExampleScm();
  core::Rng rng(7);
  const auto factual = scm.SampleWorld(rng);
  auto world = scm.Counterfactual(
      factual, {{scm.dag().Node("R").value(), factual.at("R")}});
  ASSERT_TRUE(world.ok());
  for (const auto& [name, value] : factual) {
    EXPECT_NEAR(world.value().at(name), value, 1e-9) << name;
  }
}

TEST(ScmTest, CounterfactualRequiresCompleteWorld) {
  const Scm scm = RunningExampleScm();
  std::unordered_map<std::string, double> incomplete{{"R", 1.0}};
  auto world =
      scm.Counterfactual(incomplete, {{scm.dag().Node("R").value(), 0.0}});
  ASSERT_FALSE(world.ok());
  EXPECT_EQ(world.error().code(), core::ErrorCode::kInvalidArgument);
}

TEST(ScmTest, CustomMechanismUsed) {
  auto dag = ParseDag("X -> Y");
  ASSERT_TRUE(dag.ok());
  Scm scm(std::move(dag).value());
  const auto x = scm.dag().Node("X").value();
  const auto y = scm.dag().Node("Y").value();
  ASSERT_TRUE(scm.SetLinear(x, {2.0, {}, 0.0}).ok());
  CustomEquation eq;
  eq.mechanism = [](std::span<const double> parents) {
    return parents[0] * parents[0];  // Y = X^2
  };
  eq.noise_sd = 0.0;
  ASSERT_TRUE(scm.SetCustom(y, std::move(eq)).ok());
  core::Rng rng(8);
  const Dataset data = scm.Sample(3, rng);
  EXPECT_DOUBLE_EQ(data.ColumnOrDie("Y")[0], 4.0);
}

TEST(ScmTest, SetLinearValidatesParents) {
  auto dag = ParseDag("A -> B");
  ASSERT_TRUE(dag.ok());
  Scm scm(std::move(dag).value());
  // Wrong parent name.
  EXPECT_FALSE(scm.SetLinear("B", 0.0, {{"Z", 1.0}}, 1.0).ok());
  // Wrong coefficient count via the id-based overload.
  EXPECT_FALSE(
      scm.SetLinear(scm.dag().Node("B").value(), {0.0, {1.0, 2.0}, 1.0}).ok());
  // Negative noise.
  EXPECT_FALSE(scm.SetLinear("A", 0.0, {}, -1.0).ok());
}

TEST(ScmTest, LinearCoefficientIntrospection) {
  const Scm scm = RunningExampleScm();
  const auto c = scm.dag().Node("C").value();
  const auto r = scm.dag().Node("R").value();
  const auto l = scm.dag().Node("L").value();
  EXPECT_DOUBLE_EQ(scm.LinearCoefficient(r, l), 2.0);
  EXPECT_DOUBLE_EQ(scm.LinearCoefficient(c, l), 3.0);
  EXPECT_DOUBLE_EQ(scm.LinearCoefficient(l, r), 0.0);
}

}  // namespace
}  // namespace sisyphus::causal
