// Tests for the deterministic telemetry timeline (src/obs/timeline,
// DESIGN.md §15): detector semantics against hand-computed recurrences,
// dense-fill and phase-order invariants, snapshot Save/Load continuation,
// artifact framing rejection of truncation/corruption (the audit.bin
// contract), and the two byte-identity properties the artifact exists
// for — 1-vs-8-thread identity of a full streaming campaign's
// timeline.bin, and kill-at-every-step/resume identity under the durable
// service.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/binio.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "core/sim_time.h"
#include "durable/service.h"
#include "measure/faults.h"
#include "measure/panel.h"
#include "measure/platform.h"
#include "netsim/scenario_za.h"
#include "obs/lineage.h"
#include "obs/metrics.h"
#include "obs/timeline.h"

namespace sisyphus {
namespace {

namespace fs = std::filesystem;

using obs::ChurnConfig;
using obs::DetectionEvent;
using obs::DetectorKind;
using obs::LevelShiftConfig;
using obs::Timeline;
using obs::TimelineReader;

class TimelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    timeline_was_enabled_ = Timeline::enabled();
    Timeline::Enable(true);
    Timeline::Global().Reset();
  }
  void TearDown() override {
    Timeline::Global().Reset();
    Timeline::Enable(timeline_was_enabled_);
  }

 private:
  bool timeline_was_enabled_ = false;
};

/// Commits one single-phase step carrying one gauge sample.
void GaugeStep(Timeline& timeline, std::uint64_t step, std::uint32_t id,
               double value) {
  timeline.SampleGauge(step, id, value);
  timeline.ClosePhase(step, Timeline::Phase::kProduce);
  timeline.ClosePhase(step, Timeline::Phase::kIngest);
}

void CounterStep(Timeline& timeline, std::uint64_t step, std::uint32_t id,
                 std::uint64_t value) {
  timeline.SampleCounter(step, id, value);
  timeline.ClosePhase(step, Timeline::Phase::kProduce);
  timeline.ClosePhase(step, Timeline::Phase::kIngest);
}

// ---------------------------------------------------------------------------
// Detector semantics (worked recurrences from DESIGN.md §15).

// With {alpha=0.05, drift=0.5, threshold=8, min_samples=4}, a level at
// 10.0 for 20 steps then 16.0:
//   step 21: S+ = max(0, 0 + 6.0 - 0.5) = 5.5 (no fire), mu -> 10.3
//   step 22: S+ = 5.5 + (16 - 10.3) - 0.5 = 10.7 > 8 -> fire, +5.7
// and nothing afterwards (the detector re-centers on 16).
TEST_F(TimelineTest, CusumFiresAtTheHandComputedStep) {
  Timeline timeline;
  LevelShiftConfig config;
  config.ewma_alpha = 0.05;
  config.drift = 0.5;
  config.threshold = 8.0;
  config.min_samples = 4;
  const std::uint32_t id = timeline.DeclareGauge("test.level", &config);

  for (std::uint64_t step = 1; step <= 20; ++step) {
    GaugeStep(timeline, step, id, 10.0);
  }
  ASSERT_TRUE(timeline.Events().empty());
  for (std::uint64_t step = 21; step <= 28; ++step) {
    GaugeStep(timeline, step, id, 16.0);
  }

  const std::vector<DetectionEvent> events = timeline.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].step, 22u);
  EXPECT_EQ(events[0].series, id);
  EXPECT_EQ(events[0].direction, 1);
  EXPECT_NEAR(events[0].magnitude, 5.7, 1e-9);
  EXPECT_EQ(events[0].fingerprint, config.Fingerprint());
}

TEST_F(TimelineTest, CusumFiresDownwardOnADrop) {
  Timeline timeline;
  LevelShiftConfig config;
  config.ewma_alpha = 0.05;
  config.drift = 0.5;
  config.threshold = 8.0;
  config.min_samples = 4;
  const std::uint32_t id = timeline.DeclareGauge("test.level", &config);

  for (std::uint64_t step = 1; step <= 20; ++step) {
    GaugeStep(timeline, step, id, 10.0);
  }
  for (std::uint64_t step = 21; step <= 28; ++step) {
    GaugeStep(timeline, step, id, 4.0);
  }

  const std::vector<DetectionEvent> events = timeline.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].step, 22u);
  EXPECT_EQ(events[0].direction, -1);
}

// A quiet plan fires nothing: constant level, and jitter inside the
// per-sample drift slack, never accumulate.
TEST_F(TimelineTest, QuietSeriesFiresNothing) {
  Timeline timeline;
  LevelShiftConfig config;
  config.drift = 0.5;
  config.threshold = 8.0;
  config.min_samples = 4;
  const std::uint32_t flat = timeline.DeclareGauge("test.flat", &config);
  const std::uint32_t jitter = timeline.DeclareGauge("test.jitter", &config);

  for (std::uint64_t step = 1; step <= 100; ++step) {
    timeline.SampleGauge(step, flat, 10.0);
    timeline.SampleGauge(step, jitter, step % 2 == 0 ? 10.2 : 9.8);
    timeline.ClosePhase(step, Timeline::Phase::kProduce);
    timeline.ClosePhase(step, Timeline::Phase::kIngest);
  }
  EXPECT_TRUE(timeline.Events().empty());
}

TEST_F(TimelineTest, ChurnFiresOnCounterDeltas) {
  Timeline timeline;
  ChurnConfig config;
  config.min_delta = 5;
  const std::uint32_t id = timeline.DeclareCounter("test.churn", &config);

  // Per-step deltas: 0, 2, 5 (fire), 0, 5 (fire), 1.
  const std::uint64_t values[] = {0, 2, 7, 7, 12, 13};
  for (std::uint64_t step = 1; step <= 6; ++step) {
    CounterStep(timeline, step, id, values[step - 1]);
  }

  const std::vector<DetectionEvent> events = timeline.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].step, 3u);
  EXPECT_EQ(events[0].direction, 1);
  EXPECT_DOUBLE_EQ(events[0].magnitude, 5.0);
  EXPECT_EQ(events[0].fingerprint, config.Fingerprint());
  EXPECT_EQ(events[1].step, 5u);
  EXPECT_DOUBLE_EQ(events[1].magnitude, 5.0);
}

// Running-mean series store the running mean but feed the detector the
// per-step *increment* mean, so a level shift in fresh observations fires
// immediately instead of being diluted by the accumulated history.
TEST_F(TimelineTest, RunningMeanDetectorSeesIncrementMean) {
  Timeline timeline;
  LevelShiftConfig config;
  config.ewma_alpha = 0.05;
  config.drift = 0.5;
  config.threshold = 8.0;
  config.min_samples = 4;
  const std::uint32_t id = timeline.DeclareRunningMean("test.mean", &config);

  // One new observation per step: 10.0 for 20 steps, then 16.0 — the same
  // increment sequence as the gauge test, so the same firing step.
  std::uint64_t count = 0;
  double sum = 0.0;
  for (std::uint64_t step = 1; step <= 28; ++step) {
    ++count;
    sum += step <= 20 ? 10.0 : 16.0;
    timeline.SampleRunningMean(step, id, count, sum);
    timeline.ClosePhase(step, Timeline::Phase::kProduce);
    timeline.ClosePhase(step, Timeline::Phase::kIngest);
  }

  const std::vector<DetectionEvent> events = timeline.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].step, 22u);
  EXPECT_EQ(events[0].direction, 1);

  // The stored samples are the running means, not the increments.
  TimelineReader reader;
  std::string error;
  ASSERT_TRUE(reader.Parse(timeline.BuildArtifact(), &error)) << error;
  std::vector<double> values;
  ASSERT_TRUE(reader.SeriesValues(id, &values, &error)) << error;
  ASSERT_EQ(values.size(), 28u);
  EXPECT_DOUBLE_EQ(values[0], 10.0);
  EXPECT_DOUBLE_EQ(values[20], (20 * 10.0 + 16.0) / 21.0);
}

// ---------------------------------------------------------------------------
// Sampling invariants.

// A declared series not sampled at a committed step repeats its previous
// value (counters: zero delta), and a series first sampled mid-run is
// dense from its first step onward.
TEST_F(TimelineTest, DenseFillRepeatsLastValue) {
  Timeline timeline;
  const std::uint32_t counter = timeline.DeclareCounter("test.counter");
  const std::uint32_t gauge = timeline.DeclareGauge("test.gauge");
  const std::uint32_t late = timeline.DeclareGauge("test.late");

  for (std::uint64_t step = 1; step <= 6; ++step) {
    if (step % 2 == 1) {
      timeline.SampleCounter(step, counter, step * 10);
      timeline.SampleGauge(step, gauge, static_cast<double>(step));
    }
    if (step >= 4) timeline.SampleGauge(step, late, 99.0);
    timeline.ClosePhase(step, Timeline::Phase::kProduce);
    timeline.ClosePhase(step, Timeline::Phase::kIngest);
  }

  TimelineReader reader;
  std::string error;
  ASSERT_TRUE(reader.Parse(timeline.BuildArtifact(), &error)) << error;
  EXPECT_EQ(reader.steps(), 6u);

  std::vector<double> values;
  ASSERT_TRUE(reader.SeriesValues(counter, &values, &error)) << error;
  EXPECT_EQ(values, (std::vector<double>{10, 10, 30, 30, 50, 50}));
  ASSERT_TRUE(reader.SeriesValues(gauge, &values, &error)) << error;
  EXPECT_EQ(values, (std::vector<double>{1, 1, 3, 3, 5, 5}));

  const obs::TimelineSeriesView* late_view = reader.FindSeries("test.late");
  ASSERT_NE(late_view, nullptr);
  EXPECT_EQ(late_view->first_step, 4u);
  EXPECT_EQ(late_view->sample_count, 3u);

  // ValuesAt skips the late series before its first step.
  std::vector<std::pair<std::uint32_t, double>> at;
  ASSERT_TRUE(reader.ValuesAt(2, &at, &error)) << error;
  EXPECT_EQ(at.size(), 2u);
  ASSERT_TRUE(reader.ValuesAt(5, &at, &error)) << error;
  EXPECT_EQ(at.size(), 3u);
}

// The pipelined durable loop closes kIngest on a consumer thread, so
// phases for consecutive steps can close out of order; the committed
// bytes must not care.
TEST_F(TimelineTest, PhaseCloseOrderDoesNotChangeTheBytes) {
  const auto run = [](bool ingest_lags) {
    Timeline timeline;
    const std::uint32_t counter = timeline.DeclareCounter("test.counter");
    const std::uint32_t mean = timeline.DeclareRunningMean("test.mean");
    for (std::uint64_t step = 1; step <= 12; ++step) {
      timeline.SampleCounter(step, counter, step * 3);
      timeline.ClosePhase(step, Timeline::Phase::kProduce);
      if (!ingest_lags) {
        timeline.SampleRunningMean(step, mean, step, 2.5 * step);
        timeline.ClosePhase(step, Timeline::Phase::kIngest);
      } else if (step % 3 == 0) {
        // The consumer catches up three steps at a time.
        for (std::uint64_t lagged = step - 2; lagged <= step; ++lagged) {
          timeline.SampleRunningMean(lagged, mean, lagged, 2.5 * lagged);
          timeline.ClosePhase(lagged, Timeline::Phase::kIngest);
        }
      }
    }
    return timeline.BuildArtifact();
  };
  EXPECT_EQ(run(/*ingest_lags=*/false), run(/*ingest_lags=*/true));
}

// A second campaign in the same process restarts its step counter at 1;
// the timeline must offset it into a new epoch and stay monotone.
TEST_F(TimelineTest, SecondCampaignGetsANewEpoch) {
  Timeline timeline;
  const std::uint32_t id = timeline.DeclareCounter("test.counter");
  for (std::uint64_t step = 1; step <= 5; ++step) {
    CounterStep(timeline, step, id, step);
  }
  for (std::uint64_t step = 1; step <= 5; ++step) {
    CounterStep(timeline, step, id, 100 + step);
  }
  const Timeline::Summary summary = timeline.GetSummary();
  EXPECT_EQ(summary.steps, 10u);
  EXPECT_EQ(summary.first_step, 1u);
  EXPECT_EQ(summary.last_step, 10u);

  TimelineReader reader;
  std::string error;
  ASSERT_TRUE(reader.Parse(timeline.BuildArtifact(), &error)) << error;
  std::vector<double> values;
  ASSERT_TRUE(reader.SeriesValues(id, &values, &error)) << error;
  ASSERT_EQ(values.size(), 10u);
  EXPECT_DOUBLE_EQ(values[4], 5.0);
  EXPECT_DOUBLE_EQ(values[5], 101.0);
}

// ---------------------------------------------------------------------------
// Snapshot capture/restore.

// Save mid-run, Load into a fresh timeline, continue both with the same
// samples: byte-identical artifacts, and detector state must survive the
// round trip (the CUSUM fires post-restore exactly as it would have).
TEST_F(TimelineTest, SaveLoadContinuesByteIdentical) {
  LevelShiftConfig config;
  config.drift = 0.5;
  config.threshold = 8.0;
  config.min_samples = 4;

  Timeline original;
  const std::uint32_t id = original.DeclareGauge("test.level", &config);
  for (std::uint64_t step = 1; step <= 20; ++step) {
    GaugeStep(original, step, id, 10.0);
  }

  core::binio::Writer writer;
  original.Save(writer);
  const std::string snapshot = std::move(writer).Take();

  Timeline restored;
  core::binio::Reader reader(snapshot);
  ASSERT_TRUE(restored.Load(reader));
  ASSERT_EQ(reader.remaining(), 0u);
  EXPECT_EQ(restored.GetSummary().last_step, 20u);

  for (std::uint64_t step = 21; step <= 28; ++step) {
    GaugeStep(original, step, id, 16.0);
    GaugeStep(restored, step, id, 16.0);
  }
  EXPECT_EQ(restored.BuildArtifact(), original.BuildArtifact());
  ASSERT_EQ(restored.Events().size(), 1u);
  EXPECT_EQ(restored.Events()[0].step, 22u);
}

TEST_F(TimelineTest, LoadRejectsGarbage) {
  Timeline timeline;
  const std::string garbage = "definitely not a timeline snapshot";
  core::binio::Reader reader(garbage);
  EXPECT_FALSE(timeline.Load(reader));
}

// ---------------------------------------------------------------------------
// Artifact framing (the audit.bin contract: loud rejection, never a
// partial answer).

std::string SmallArtifact() {
  Timeline timeline;
  ChurnConfig churn;
  LevelShiftConfig shift;
  shift.min_samples = 2;
  shift.threshold = 4.0;
  const std::uint32_t counter = timeline.DeclareCounter("test.churn", &churn);
  const std::uint32_t gauge = timeline.DeclareGauge("test.level", &shift);
  for (std::uint64_t step = 1; step <= 16; ++step) {
    timeline.SampleCounter(step, counter, step * step);
    timeline.SampleGauge(step, gauge, step < 8 ? 1.0 : 50.0);
    timeline.ClosePhase(step, Timeline::Phase::kProduce);
    timeline.ClosePhase(step, Timeline::Phase::kIngest);
  }
  EXPECT_FALSE(timeline.Events().empty());
  return timeline.BuildArtifact();
}

TEST_F(TimelineTest, ArtifactRejectsEveryTruncationAndGrowth) {
  const std::string artifact = SmallArtifact();
  ASSERT_GT(artifact.size(), obs::kTimelineHeaderSize);

  // The header records the exact file size and the section table must
  // close the file, so EVERY proper prefix is rejected.
  for (std::size_t size = 0; size < artifact.size(); ++size) {
    TimelineReader reader;
    std::string error;
    EXPECT_FALSE(reader.Parse(artifact.substr(0, size), &error))
        << "prefix of " << size << " bytes parsed";
  }
  TimelineReader reader;
  std::string error;
  EXPECT_FALSE(reader.Parse(artifact + "x", &error));
  ASSERT_TRUE(reader.Parse(artifact, &error)) << error;
}

TEST_F(TimelineTest, ArtifactRejectsCorruption) {
  const std::string artifact = SmallArtifact();
  // A flip in the header, in a section payload, and in the section table
  // each trip a distinct checksum.
  for (const std::size_t offset :
       {std::size_t{9}, artifact.size() / 2, artifact.size() - 10}) {
    std::string bad = artifact;
    bad[offset] = static_cast<char>(bad[offset] ^ 0x5a);
    TimelineReader reader;
    std::string error;
    EXPECT_FALSE(reader.Parse(std::move(bad), &error))
        << "flip at offset " << offset << " parsed";
  }
}

// ---------------------------------------------------------------------------
// Byte-identity of a real campaign's timeline, across thread counts and
// across kill/resume. Harnesses mirror stream_parity_test and
// durable_stream_test (small two-day scenario: 48 one-hour steps).

constexpr std::uint64_t kTotalSteps = 48;

netsim::ScenarioZaOptions SmallScenario() {
  netsim::ScenarioZaOptions options;
  options.donor_units = 6;
  options.treatment_time = core::SimTime::FromDays(1);
  options.horizon = core::SimTime::FromDays(2);
  return options;
}

measure::FaultPlan SmallPlan() {
  measure::FaultPlan plan;
  plan.seed = 42;
  plan.probe_loss_probability = 0.15;
  plan.duplicate_probability = 0.02;
  plan.corruption_probability = 0.01;
  plan.max_clock_skew = core::SimTime(3);
  return plan;
}

/// Builds the scenario/platform/campaign exactly as the durable resume
/// contract requires and runs it; returns the global timeline's artifact.
struct CampaignSpec {
  bool streaming = true;
  std::size_t threads = 1;
  // When `dir` is set the campaign runs under the durable service.
  std::string dir;
  bool resume = false;
  std::uint64_t stop_after = 0;
};

struct CampaignResult {
  bool completed = false;
  std::string artifact;  ///< filled only when the campaign completed
};

CampaignResult RunTimelineCampaign(const CampaignSpec& spec) {
  core::ThreadPool::SetGlobalThreadCount(spec.threads);
  obs::Registry::Global().ResetAll();
  obs::Lineage::Global().Reset();
  obs::Lineage::Global().BeginRun("timeline");
  Timeline::Global().Reset();

  const netsim::ScenarioZaOptions scenario_options = SmallScenario();
  netsim::ScenarioZa scenario = netsim::BuildScenarioZa(scenario_options);

  measure::PlatformOptions platform_options;
  platform_options.server = scenario.content_jnb;
  platform_options.step = core::SimTime::FromHours(1);
  measure::Platform platform(*scenario.simulator, platform_options);

  measure::VantageConfig vantage;
  vantage.baseline_tests_per_day = 10.0;
  vantage.user_tests_per_day = 4.0;
  for (const auto& unit : scenario.treated) {
    vantage.pop = unit.access_pop;
    platform.AddVantage(vantage);
  }
  for (netsim::PopIndex donor : scenario.donors) {
    vantage.pop = donor;
    platform.AddVantage(vantage);
  }
  const measure::FaultPlan plan = SmallPlan();
  measure::FaultInjector injector(plan);
  platform.SetFaultInjector(&injector);

  measure::PanelOptions panel_options;
  panel_options.bucket = core::SimTime::FromHours(6);
  panel_options.periods = static_cast<std::size_t>(
      scenario_options.horizon.minutes() / panel_options.bucket.minutes());

  core::Rng rng(scenario_options.seed);
  CampaignResult result;
  if (!spec.streaming) {
    platform.Run(scenario_options.horizon, rng);
    result.completed = true;
  } else if (spec.dir.empty()) {
    measure::StreamingOptions streaming_options;
    streaming_options.panel = panel_options;
    measure::StreamingCampaign stream(platform_options.validation,
                                      streaming_options);
    platform.RunStreaming(scenario_options.horizon, rng, stream);
    result.completed = true;
  } else {
    measure::StreamingOptions streaming_options;
    streaming_options.panel = panel_options;
    measure::StreamingCampaign stream(platform_options.validation,
                                      streaming_options);
    durable::DurableOptions durable_options;
    durable_options.dir = spec.dir;
    durable_options.snapshot_every = 5;
    durable_options.fsync_every = 3;
    durable_options.stop_after_steps = spec.stop_after;
    durable::DurableStreamingService service(platform, stream,
                                             durable_options);
    const core::Result<durable::RunStats> run =
        spec.resume ? service.Resume(scenario_options.horizon, rng)
                    : service.Run(scenario_options.horizon, rng);
    EXPECT_TRUE(run.ok()) << run.error().message();
    result.completed =
        run.ok() && run.value().outcome == durable::RunOutcome::kCompleted;
  }
  if (result.completed) result.artifact = Timeline::Global().BuildArtifact();
  return result;
}

std::string MakeDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

class TimelineCampaignTest : public TimelineTest {
 protected:
  void SetUp() override {
    TimelineTest::SetUp();
    metrics_were_enabled_ = obs::Registry::enabled();
    lineage_was_enabled_ = obs::Lineage::enabled();
    obs::Registry::Enable(true);
    obs::Lineage::Enable(true);
  }
  void TearDown() override {
    obs::Registry::Global().ResetAll();
    obs::Lineage::Global().Reset();
    obs::Registry::Enable(metrics_were_enabled_);
    obs::Lineage::Enable(lineage_was_enabled_);
    core::ThreadPool::SetGlobalThreadCount(0);
    TimelineTest::TearDown();
  }

 private:
  bool metrics_were_enabled_ = false;
  bool lineage_was_enabled_ = false;
};

TEST_F(TimelineCampaignTest, StreamingTimelineByteIdenticalAt1And8Threads) {
  CampaignSpec one;
  one.threads = 1;
  const CampaignResult first = RunTimelineCampaign(one);
  ASSERT_TRUE(first.completed);
  ASSERT_FALSE(first.artifact.empty());

  CampaignSpec eight;
  eight.threads = 8;
  const CampaignResult second = RunTimelineCampaign(eight);
  ASSERT_TRUE(second.completed);
  EXPECT_EQ(first.artifact, second.artifact);

  // The scenario's treatment-time route flap is the only route change, so
  // the churn detector must pinpoint it: one churn event, in the step
  // ending at the treatment time (day 1 -> step 24 at one-hour steps).
  TimelineReader reader;
  std::string error;
  ASSERT_TRUE(reader.Parse(first.artifact, &error)) << error;
  EXPECT_EQ(reader.steps(), kTotalSteps);
  std::vector<DetectionEvent> churn_events;
  for (const DetectionEvent& event : reader.events()) {
    if (reader.series()[event.series].detector == DetectorKind::kChurn) {
      churn_events.push_back(event);
    }
  }
  ASSERT_EQ(churn_events.size(), 1u);
  EXPECT_EQ(churn_events[0].step, 24u);
  EXPECT_EQ(
      reader.series()[churn_events[0].series].name,
      "netsim.bgp.invalidated_destinations");
}

// The batch path samples the same counters at the same cadence (it just
// has no panel builder, so no rtt.mean.* series) and must be thread-count
// invariant too.
TEST_F(TimelineCampaignTest, BatchTimelineByteIdenticalAt1And8Threads) {
  CampaignSpec one;
  one.streaming = false;
  one.threads = 1;
  const CampaignResult first = RunTimelineCampaign(one);
  ASSERT_TRUE(first.completed);

  CampaignSpec eight;
  eight.streaming = false;
  eight.threads = 8;
  const CampaignResult second = RunTimelineCampaign(eight);
  ASSERT_TRUE(second.completed);
  EXPECT_EQ(first.artifact, second.artifact);

  TimelineReader reader;
  std::string error;
  ASSERT_TRUE(reader.Parse(first.artifact, &error)) << error;
  EXPECT_EQ(reader.FindSeries("rtt.mean.test"), nullptr);
  EXPECT_NE(reader.FindSeries("netsim.bgp.invalidated_destinations"),
            nullptr);
}

// Kill after EVERY step (a crash whose journal survived), resume at the
// other thread count, and the finished timeline.bin must match an
// uninterrupted run byte for byte — the timeline state rides in the
// durable snapshot and fast-forwards over skipped steps.
TEST_F(TimelineCampaignTest, KillAtEveryStepResumesByteIdentical) {
  CampaignSpec reference_spec;
  reference_spec.dir = MakeDir("timeline-reference");
  const CampaignResult reference = RunTimelineCampaign(reference_spec);
  ASSERT_TRUE(reference.completed);
  ASSERT_FALSE(reference.artifact.empty());

  // The plain streaming run and the durable run must agree first.
  CampaignSpec plain;
  const CampaignResult streamed = RunTimelineCampaign(plain);
  ASSERT_TRUE(streamed.completed);
  ASSERT_EQ(streamed.artifact, reference.artifact);

  for (std::uint64_t k = 1; k < kTotalSteps; ++k) {
    const std::string dir = MakeDir("timeline-crash");
    CampaignSpec crash;
    crash.dir = dir;
    crash.threads = 1;
    crash.stop_after = k;
    const CampaignResult stopped = RunTimelineCampaign(crash);
    ASSERT_FALSE(stopped.completed) << "step " << k;

    CampaignSpec resume;
    resume.dir = dir;
    resume.resume = true;
    resume.threads = 8;
    const CampaignResult resumed = RunTimelineCampaign(resume);
    ASSERT_TRUE(resumed.completed) << "resume after step " << k;
    ASSERT_EQ(resumed.artifact, reference.artifact)
        << "timeline diverged after a kill at step " << k;
  }
}

}  // namespace
}  // namespace sisyphus
