// Tests for Manski partial-identification bounds.
#include <gtest/gtest.h>

#include "causal/bounds.h"
#include "core/rng.h"
#include "stats/logistic.h"

namespace sisyphus::causal {
namespace {

/// Binary-outcome confounded DGP with true ATE known by construction.
struct BinaryWorld {
  Dataset data;
  double true_ate = 0.0;
};

BinaryWorld MakeBinaryWorld(std::size_t n, core::Rng& rng) {
  // P(Y=1 | T, U) = sigmoid(-0.5 + 1.0 T + 1.5 U); T selected on U.
  std::vector<double> t(n), y(n);
  double ate_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.Gaussian();
    t[i] = rng.Bernoulli(stats::Sigmoid(1.5 * u)) ? 1.0 : 0.0;
    const double p1 = stats::Sigmoid(-0.5 + 1.0 + 1.5 * u);
    const double p0 = stats::Sigmoid(-0.5 + 1.5 * u);
    ate_sum += p1 - p0;
    const double p = t[i] == 1.0 ? p1 : p0;
    y[i] = rng.Bernoulli(p) ? 1.0 : 0.0;
  }
  BinaryWorld world;
  world.true_ate = ate_sum / static_cast<double>(n);
  EXPECT_TRUE(world.data.AddColumn("T", std::move(t)).ok());
  EXPECT_TRUE(world.data.AddColumn("Y", std::move(y)).ok());
  return world;
}

TEST(ManskiBoundsTest, WidthIsOutcomeRangeWithoutAssumptions) {
  core::Rng rng(1);
  const auto world = MakeBinaryWorld(20000, rng);
  BoundsOptions options;  // y in [0,1], no monotonicity
  auto bounds = ManskiBounds(world.data, "T", "Y", options);
  ASSERT_TRUE(bounds.ok());
  EXPECT_NEAR(bounds.value().width(), 1.0, 1e-9);
  EXPECT_TRUE(bounds.value().Contains(world.true_ate));
  EXPECT_FALSE(bounds.value().mtr_applied);
}

TEST(ManskiBoundsTest, MtrClipsLowerAtZero) {
  core::Rng rng(2);
  const auto world = MakeBinaryWorld(20000, rng);
  BoundsOptions options;
  options.monotone_treatment_response = true;
  auto bounds = ManskiBounds(world.data, "T", "Y", options);
  ASSERT_TRUE(bounds.ok());
  EXPECT_DOUBLE_EQ(bounds.value().lower, 0.0);
  EXPECT_TRUE(bounds.value().Contains(world.true_ate));  // true ATE > 0
}

TEST(ManskiBoundsTest, MtsUpperIsNaiveContrast) {
  core::Rng rng(3);
  const auto world = MakeBinaryWorld(20000, rng);
  BoundsOptions options;
  options.monotone_treatment_selection = true;
  auto bounds = ManskiBounds(world.data, "T", "Y", options);
  ASSERT_TRUE(bounds.ok());
  // Selection here is genuinely monotone (higher U -> both treated and
  // better outcomes), so the bound is valid AND informative: true ATE
  // below the naive contrast.
  EXPECT_LT(world.true_ate, bounds.value().upper + 0.02);
  EXPECT_LT(bounds.value().upper, 0.5);  // tighter than +1
  EXPECT_TRUE(bounds.value().mts_applied);
}

TEST(ManskiBoundsTest, MtrPlusMtsBracketTruth) {
  core::Rng rng(4);
  const auto world = MakeBinaryWorld(50000, rng);
  BoundsOptions options;
  options.monotone_treatment_response = true;
  options.monotone_treatment_selection = true;
  auto bounds = ManskiBounds(world.data, "T", "Y", options);
  ASSERT_TRUE(bounds.ok());
  EXPECT_TRUE(bounds.value().Contains(world.true_ate))
      << "[" << bounds.value().lower << ", " << bounds.value().upper
      << "] vs " << world.true_ate;
  EXPECT_LT(bounds.value().width(), 0.6);
}

TEST(ManskiBoundsTest, ContradictoryAssumptionsSurface) {
  // Strongly NEGATIVE naive contrast + MTR(>=0) + MTS(upper = naive):
  // empty interval -> precondition error.
  Dataset data;
  ASSERT_TRUE(data.AddColumn("T", {1, 1, 1, 1, 0, 0, 0, 0}).ok());
  ASSERT_TRUE(data.AddColumn("Y", {0, 0, 0, 0, 1, 1, 1, 1}).ok());
  BoundsOptions options;
  options.monotone_treatment_response = true;
  options.monotone_treatment_selection = true;
  auto bounds = ManskiBounds(data, "T", "Y", options);
  ASSERT_FALSE(bounds.ok());
  EXPECT_EQ(bounds.error().code(), core::ErrorCode::kPrecondition);
}

TEST(ManskiBoundsTest, CustomOutcomeRange) {
  Dataset data;
  ASSERT_TRUE(data.AddColumn("T", {1, 0, 1, 0}).ok());
  ASSERT_TRUE(data.AddColumn("Y", {30, 20, 40, 25}).ok());  // RTT-like
  BoundsOptions options;
  options.y_min = 0.0;
  options.y_max = 100.0;
  auto bounds = ManskiBounds(data, "T", "Y", options);
  ASSERT_TRUE(bounds.ok());
  EXPECT_NEAR(bounds.value().width(), 100.0, 1e-9);
}

TEST(ManskiBoundsTest, InputValidation) {
  Dataset data;
  ASSERT_TRUE(data.AddColumn("T", {1, 0, 2}).ok());
  ASSERT_TRUE(data.AddColumn("Y", {0, 1, 0}).ok());
  BoundsOptions options;
  EXPECT_FALSE(ManskiBounds(data, "T", "Y", options).ok());  // non-binary

  Dataset single;
  ASSERT_TRUE(single.AddColumn("T", {1, 1}).ok());
  ASSERT_TRUE(single.AddColumn("Y", {0, 1}).ok());
  EXPECT_FALSE(ManskiBounds(single, "T", "Y", options).ok());  // one arm

  Dataset range;
  ASSERT_TRUE(range.AddColumn("T", {1, 0}).ok());
  ASSERT_TRUE(range.AddColumn("Y", {0.5, 3.0}).ok());
  EXPECT_FALSE(ManskiBounds(range, "T", "Y", options).ok());  // y > y_max

  options.y_min = 2.0;
  options.y_max = 1.0;
  EXPECT_FALSE(ManskiBounds(range, "T", "Y", options).ok());  // bad range
}

}  // namespace
}  // namespace sisyphus::causal
