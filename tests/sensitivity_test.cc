// Tests for sensitivity analysis (E-values, omitted-variable-bias grid)
// and the conditional-instrument search.
#include <gtest/gtest.h>

#include <cmath>

#include "causal/dag_parser.h"
#include "causal/identification.h"
#include "causal/sensitivity.h"

namespace sisyphus::causal {
namespace {

// ---- E-values -----------------------------------------------------------------

TEST(EValueTest, KnownValue) {
  // RR = 2: E = 2 + sqrt(2) ~ 3.41 (the canonical textbook number).
  auto result = EValueForRiskRatio(2.0, 1.5, 2.7);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().e_value, 3.414, 0.01);
  // CI bound closer to null (1.5): E = 1.5 + sqrt(1.5*0.5) ~ 2.37.
  EXPECT_NEAR(result.value().e_value_ci, 2.366, 0.01);
}

TEST(EValueTest, ProtectiveEffectSymmetric) {
  auto protective = EValueForRiskRatio(0.5, 0.37, 0.67);
  auto harmful = EValueForRiskRatio(2.0, 1.0 / 0.67, 1.0 / 0.37);
  ASSERT_TRUE(protective.ok());
  ASSERT_TRUE(harmful.ok());
  EXPECT_NEAR(protective.value().e_value, harmful.value().e_value, 1e-9);
}

TEST(EValueTest, NullEffectGivesOne) {
  auto result = EValueForRiskRatio(1.0, 0.8, 1.2);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().e_value, 1.0);
  EXPECT_DOUBLE_EQ(result.value().e_value_ci, 1.0);
}

TEST(EValueTest, CiCrossingNullZeroesRobustness) {
  auto result = EValueForRiskRatio(1.5, 0.9, 2.5);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().e_value, 1.0);
  EXPECT_DOUBLE_EQ(result.value().e_value_ci, 1.0);
}

TEST(EValueTest, InvalidInputsRejected) {
  EXPECT_FALSE(EValueForRiskRatio(-1.0, 0.5, 2.0).ok());
  EXPECT_FALSE(EValueForRiskRatio(2.0, 2.5, 3.0).ok());  // rr < ci_lower
  EXPECT_FALSE(EValueForRiskRatio(2.0, 1.0, 0.5).ok());  // upper < lower
}

TEST(EValueTest, RiskRatioFromProportions) {
  auto rr = RiskRatioFromProportions(0.2, 0.1);
  ASSERT_TRUE(rr.ok());
  EXPECT_NEAR(rr.value(), 1.5, 1e-12);
  EXPECT_FALSE(RiskRatioFromProportions(0.0, 0.1).ok());
  EXPECT_FALSE(RiskRatioFromProportions(0.9, 0.2).ok());
}

// ---- Linear sensitivity grid ----------------------------------------------------

TEST(SensitivityGridTest, BiasIsProductAndSignFlipDetected) {
  const auto grid = LinearSensitivityGrid(2.0, {0.5, 1.0, 2.0}, {1.0, 3.0});
  ASSERT_EQ(grid.size(), 6u);
  for (const auto& point : grid) {
    EXPECT_DOUBLE_EQ(point.induced_bias,
                     point.delta_confounder * point.outcome_effect);
    EXPECT_DOUBLE_EQ(point.adjusted_effect, 2.0 - point.induced_bias);
    EXPECT_EQ(point.sign_flips, point.adjusted_effect <= 0.0);
  }
  // delta=2, effect=3 -> bias 6 -> adjusted -4: flips.
  EXPECT_TRUE(grid.back().sign_flips);
  // delta=0.5, effect=1 -> adjusted 1.5: holds.
  EXPECT_FALSE(grid.front().sign_flips);
}

TEST(SensitivityGridTest, BreakevenMatchesEstimateMagnitude) {
  EXPECT_DOUBLE_EQ(BreakevenConfounding(-3.2), 3.2);
  EXPECT_DOUBLE_EQ(BreakevenConfounding(0.0), 0.0);
}

TEST(SensitivityGridTest, EmptyAxesRejected) {
  EXPECT_THROW(LinearSensitivityGrid(1.0, {}, {1.0}), std::logic_error);
}

// ---- Conditional instruments -----------------------------------------------------

Dag MustParse(const char* text) {
  auto dag = ParseDag(text);
  EXPECT_TRUE(dag.ok()) << text;
  return std::move(dag).value();
}

TEST(ConditionalInstrumentTest, UnconditionalReportedWithEmptySet) {
  const Dag dag = MustParse("Z -> T; T -> Y; T <-> Y");
  const auto found = FindConditionalInstruments(
      dag, dag.Node("T").value(), dag.Node("Y").value());
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].instrument, dag.Node("Z").value());
  EXPECT_TRUE(found[0].conditioning.empty());
}

TEST(ConditionalInstrumentTest, FindsRequiredConditioningSet) {
  // W confounds Z and Y: Z only works given W.
  const Dag dag =
      MustParse("W -> Z; W -> Y; Z -> T; T -> Y; T <-> Y");
  const auto found = FindConditionalInstruments(
      dag, dag.Node("T").value(), dag.Node("Y").value());
  ASSERT_FALSE(found.empty());
  bool z_found = false;
  for (const auto& ci : found) {
    if (ci.instrument == dag.Node("Z").value()) {
      z_found = true;
      EXPECT_EQ(ci.conditioning.size(), 1u);
      EXPECT_TRUE(ci.conditioning.Contains(dag.Node("W").value()));
    }
  }
  EXPECT_TRUE(z_found);
}

TEST(ConditionalInstrumentTest, NoInstrumentWhenNoneExists) {
  const Dag dag = MustParse("T <-> Y; T -> Y");
  EXPECT_TRUE(FindConditionalInstruments(dag, dag.Node("T").value(),
                                         dag.Node("Y").value())
                  .empty());
}

TEST(ConditionalInstrumentTest, RespectsConditioningSizeCap) {
  const Dag dag =
      MustParse("W -> Z; W -> Y; Z -> T; T -> Y; T <-> Y");
  const auto found = FindConditionalInstruments(
      dag, dag.Node("T").value(), dag.Node("Y").value(),
      /*max_conditioning_size=*/0);
  for (const auto& ci : found) {
    EXPECT_NE(ci.instrument, dag.Node("Z").value());
  }
}

}  // namespace
}  // namespace sisyphus::causal
