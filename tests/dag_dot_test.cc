// Tests for Graphviz (DOT) export of causal DAGs.
#include <gtest/gtest.h>

#include "causal/dag_parser.h"

namespace sisyphus::causal {
namespace {

TEST(DagDotTest, ContainsNodesAndEdges) {
  auto dag = ParseDag("C -> R; C -> L; R -> L");
  ASSERT_TRUE(dag.ok());
  const std::string dot = dag.value().ToDot();
  EXPECT_EQ(dot.substr(0, 15), "digraph causal ");
  EXPECT_NE(dot.find("\"C\" -> \"R\";"), std::string::npos);
  EXPECT_NE(dot.find("\"R\" -> \"L\";"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(DagDotTest, LatentsDashed) {
  auto dag = ParseDag("R <-> L");
  ASSERT_TRUE(dag.ok());
  const std::string dot = dag.value().ToDot();
  EXPECT_NE(dot.find("\"U(R,L)\" [style=dashed];"), std::string::npos);
  EXPECT_NE(dot.find("\"U(R,L)\" -> \"R\" [style=dashed];"),
            std::string::npos);
}

TEST(DagDotTest, TreatmentAndOutcomeHighlighted) {
  auto dag = ParseDag("R -> L");
  ASSERT_TRUE(dag.ok());
  const auto r = dag.value().Node("R").value();
  const auto l = dag.value().Node("L").value();
  const std::string dot = dag.value().ToDot(r, l);
  EXPECT_NE(dot.find("label=\"R (treatment)\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"L (outcome)\""), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
}

TEST(DagDotTest, EmptyDagIsValidDot) {
  Dag dag;
  const std::string dot = dag.ToDot();
  EXPECT_NE(dot.find("digraph causal {"), std::string::npos);
  EXPECT_NE(dot.find("}"), std::string::npos);
}

}  // namespace
}  // namespace sisyphus::causal
