// Tests for core::json — escaping, deterministic double formatting, writer
// structure, and parser round-trips / error reporting.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "core/json.h"

namespace sisyphus::core::json {
namespace {

// ---- Escape ---------------------------------------------------------------

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(Escape("hello world"), "hello world");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(Escape("a\"b"), "a\\\"b");
  EXPECT_EQ(Escape("a\\b"), "a\\\\b");
  EXPECT_EQ(Escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(Escape(std::string("a\x01") + "b"), "a\\u0001b");
}

// ---- FormatDouble ---------------------------------------------------------

TEST(JsonFormatDoubleTest, IntegersStayShort) {
  EXPECT_EQ(FormatDouble(0.0), "0");
  EXPECT_EQ(FormatDouble(42.0), "42");
  EXPECT_EQ(FormatDouble(-3.0), "-3");
}

TEST(JsonFormatDoubleTest, RoundTripsExactly) {
  for (double v : {0.1, 1.0 / 3.0, 1e-12, 6.02214076e23, -123.456789012345}) {
    const std::string text = FormatDouble(v);
    EXPECT_EQ(std::stod(text), v) << text;
  }
}

TEST(JsonFormatDoubleTest, NonFiniteBecomesNull) {
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::infinity()), "null");
}

// ---- Writer ---------------------------------------------------------------

TEST(JsonWriterTest, CompactObject) {
  Writer w;
  w.BeginObject();
  w.Key("a");
  w.Int(1);
  w.Key("b");
  w.BeginArray();
  w.String("x");
  w.Bool(true);
  w.Null();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(std::move(w).str(), R"({"a":1,"b":["x",true,null]})");
}

TEST(JsonWriterTest, IndentedOutputIsStable) {
  Writer w(2);
  w.BeginObject();
  w.Key("k");
  w.Double(0.5);
  w.EndObject();
  EXPECT_EQ(std::move(w).str(), "{\n  \"k\": 0.5\n}");
}

TEST(JsonWriterTest, EscapesKeysAndStrings) {
  Writer w;
  w.BeginObject();
  w.Key("a\"b");
  w.String("c\nd");
  w.EndObject();
  EXPECT_EQ(std::move(w).str(), "{\"a\\\"b\":\"c\\nd\"}");
}

// ---- Parse ----------------------------------------------------------------

TEST(JsonParseTest, ParsesScalars) {
  EXPECT_EQ(Parse("null").value().kind, Value::Kind::kNull);
  EXPECT_TRUE(Parse("true").value().boolean);
  EXPECT_DOUBLE_EQ(Parse("-1.5e2").value().number, -150.0);
  EXPECT_EQ(Parse("\"hi\"").value().string, "hi");
}

TEST(JsonParseTest, ParsesNestedStructure) {
  auto parsed = Parse(R"({"a": [1, {"b": "c"}], "d": false})");
  ASSERT_TRUE(parsed.ok());
  const Value& root = parsed.value();
  ASSERT_TRUE(root.is_object());
  const Value* a = root.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 2u);
  EXPECT_DOUBLE_EQ(a->array[0].number, 1.0);
  EXPECT_EQ(a->array[1].Find("b")->string, "c");
  EXPECT_FALSE(root.Find("d")->boolean);
  EXPECT_EQ(root.Find("missing"), nullptr);
}

TEST(JsonParseTest, DecodesEscapesAndUnicode) {
  auto parsed = Parse(R"("a\"\\\nAé")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().string, "a\"\\\nA\xc3\xa9");
}

TEST(JsonParseTest, DecodesBasicPlaneUnicodeEscapes) {
  auto parsed = Parse(R"("Aé€")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().string, "A\xc3\xa9\xe2\x82\xac");  // A é €
}

TEST(JsonParseTest, CombinesSurrogatePairs) {
  // U+1F600 arrives as the UTF-16 pair 😀 and must decode to the
  // 4-byte UTF-8 sequence, not two 3-byte CESU-8 halves.
  auto parsed = Parse(R"("😀")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().string, "\xf0\x9f\x98\x80");
}

TEST(JsonParseTest, RejectsUnpairedSurrogates) {
  EXPECT_FALSE(Parse(R"("\ud83d")").ok());           // lone high
  EXPECT_FALSE(Parse(R"("\ude00")").ok());           // lone low
  EXPECT_FALSE(Parse(R"("\ud83dx")").ok());          // high + non-escape
  EXPECT_FALSE(Parse(R"("\ud83dA")").ok());     // high + non-surrogate
  EXPECT_FALSE(Parse(R"("\u12")").ok());             // truncated unit
  EXPECT_FALSE(Parse(R"("\uZZZZ")").ok());           // non-hex unit
}

TEST(JsonParseTest, ControlCharacterEscapesRoundTripThroughWriter) {
  // Every control character the writer escapes (named or \u00XX) must
  // come back byte-identical through the parser.
  std::string all_controls;
  for (int c = 1; c < 0x20; ++c) all_controls += static_cast<char>(c);
  Writer w(0);
  w.BeginObject();
  w.Key("controls");
  w.String(all_controls);
  w.EndObject();
  const std::string text = std::move(w).str();
  auto parsed = Parse(text);
  ASSERT_TRUE(parsed.ok()) << text;
  EXPECT_EQ(parsed.value().Find("controls")->string, all_controls);
}

TEST(JsonParseTest, RejectsRawControlCharactersInStrings) {
  EXPECT_FALSE(Parse("\"a\nb\"").ok());
  EXPECT_FALSE(Parse(std::string("\"a\0b\"", 5)).ok());
}

TEST(JsonWriterTest, NonFiniteDoublesEmitValidJson) {
  // NaN/Inf have no JSON representation; emitting them raw would make the
  // whole document unparseable. They degrade to null.
  Writer w(0);
  w.BeginArray();
  w.Double(std::nan(""));
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(-std::numeric_limits<double>::infinity());
  w.Double(1.5);
  w.EndArray();
  const std::string text = std::move(w).str();
  EXPECT_EQ(text, "[null,null,null,1.5]");
  auto parsed = Parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().array[0].kind, Value::Kind::kNull);
  EXPECT_DOUBLE_EQ(parsed.value().array[3].number, 1.5);
}

TEST(JsonFormatDoubleTest, HardRoundTripCases) {
  // Values chosen to need 16–17 significant digits or denormal handling.
  const double cases[] = {0.1,
                          1.0 / 3.0,
                          5e-324,                     // min denormal
                          2.2250738585072014e-308,    // min normal
                          1.7976931348623157e308,     // max finite
                          123456789.123456789,
                          -0.0};
  for (double value : cases) {
    const std::string text = FormatDouble(value);
    auto parsed = Parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed.value().number, value) << text;
  }
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(Parse("nul").ok());
}

TEST(JsonParseTest, WriterOutputRoundTrips) {
  Writer w(2);
  w.BeginObject();
  w.Key("name");
  w.String("quoted \"value\"");
  w.Key("values");
  w.BeginArray();
  w.Double(0.1);
  w.UInt(18446744073709551615ull);
  w.EndArray();
  w.EndObject();
  const std::string text = std::move(w).str();

  auto parsed = Parse(text);
  ASSERT_TRUE(parsed.ok()) << text;
  EXPECT_EQ(parsed.value().Find("name")->string, "quoted \"value\"");
  EXPECT_DOUBLE_EQ(parsed.value().Find("values")->array[0].number, 0.1);
}

}  // namespace
}  // namespace sisyphus::core::json
