// Tests for core::json — escaping, deterministic double formatting, writer
// structure, and parser round-trips / error reporting.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "core/json.h"

namespace sisyphus::core::json {
namespace {

// ---- Escape ---------------------------------------------------------------

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(Escape("hello world"), "hello world");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(Escape("a\"b"), "a\\\"b");
  EXPECT_EQ(Escape("a\\b"), "a\\\\b");
  EXPECT_EQ(Escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(Escape(std::string("a\x01") + "b"), "a\\u0001b");
}

// ---- FormatDouble ---------------------------------------------------------

TEST(JsonFormatDoubleTest, IntegersStayShort) {
  EXPECT_EQ(FormatDouble(0.0), "0");
  EXPECT_EQ(FormatDouble(42.0), "42");
  EXPECT_EQ(FormatDouble(-3.0), "-3");
}

TEST(JsonFormatDoubleTest, RoundTripsExactly) {
  for (double v : {0.1, 1.0 / 3.0, 1e-12, 6.02214076e23, -123.456789012345}) {
    const std::string text = FormatDouble(v);
    EXPECT_EQ(std::stod(text), v) << text;
  }
}

TEST(JsonFormatDoubleTest, NonFiniteBecomesNull) {
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::infinity()), "null");
}

// ---- Writer ---------------------------------------------------------------

TEST(JsonWriterTest, CompactObject) {
  Writer w;
  w.BeginObject();
  w.Key("a");
  w.Int(1);
  w.Key("b");
  w.BeginArray();
  w.String("x");
  w.Bool(true);
  w.Null();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(std::move(w).str(), R"({"a":1,"b":["x",true,null]})");
}

TEST(JsonWriterTest, IndentedOutputIsStable) {
  Writer w(2);
  w.BeginObject();
  w.Key("k");
  w.Double(0.5);
  w.EndObject();
  EXPECT_EQ(std::move(w).str(), "{\n  \"k\": 0.5\n}");
}

TEST(JsonWriterTest, EscapesKeysAndStrings) {
  Writer w;
  w.BeginObject();
  w.Key("a\"b");
  w.String("c\nd");
  w.EndObject();
  EXPECT_EQ(std::move(w).str(), "{\"a\\\"b\":\"c\\nd\"}");
}

// ---- Parse ----------------------------------------------------------------

TEST(JsonParseTest, ParsesScalars) {
  EXPECT_EQ(Parse("null").value().kind, Value::Kind::kNull);
  EXPECT_TRUE(Parse("true").value().boolean);
  EXPECT_DOUBLE_EQ(Parse("-1.5e2").value().number, -150.0);
  EXPECT_EQ(Parse("\"hi\"").value().string, "hi");
}

TEST(JsonParseTest, ParsesNestedStructure) {
  auto parsed = Parse(R"({"a": [1, {"b": "c"}], "d": false})");
  ASSERT_TRUE(parsed.ok());
  const Value& root = parsed.value();
  ASSERT_TRUE(root.is_object());
  const Value* a = root.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 2u);
  EXPECT_DOUBLE_EQ(a->array[0].number, 1.0);
  EXPECT_EQ(a->array[1].Find("b")->string, "c");
  EXPECT_FALSE(root.Find("d")->boolean);
  EXPECT_EQ(root.Find("missing"), nullptr);
}

TEST(JsonParseTest, DecodesEscapesAndUnicode) {
  auto parsed = Parse(R"("a\"\\\nAé")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().string, "a\"\\\nA\xc3\xa9");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(Parse("nul").ok());
}

TEST(JsonParseTest, WriterOutputRoundTrips) {
  Writer w(2);
  w.BeginObject();
  w.Key("name");
  w.String("quoted \"value\"");
  w.Key("values");
  w.BeginArray();
  w.Double(0.1);
  w.UInt(18446744073709551615ull);
  w.EndArray();
  w.EndObject();
  const std::string text = std::move(w).str();

  auto parsed = Parse(text);
  ASSERT_TRUE(parsed.ok()) << text;
  EXPECT_EQ(parsed.value().Find("name")->string, "quoted \"value\"");
  EXPECT_DOUBLE_EQ(parsed.value().Find("values")->array[0].number, 0.1);
}

}  // namespace
}  // namespace sisyphus::core::json
