// Streaming ingest units: the sharded columnar store must hand down the
// exact validation/quarantine semantics of MeasurementStore::Add, and the
// incremental panel builder must reproduce BuildRttPanel cell-for-cell no
// matter how records are sharded or in what order they arrive — the
// property the end-to-end byte-identity fixture (stream_parity_test)
// leans on.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "measure/export.h"
#include "measure/panel.h"
#include "measure/platform.h"
#include "measure/store.h"
#include "stats/descriptive.h"

namespace sisyphus {
namespace {

measure::SpeedTestRecord MakeRecord(std::uint64_t id, std::uint32_t asn,
                                    const std::string& city,
                                    std::int64_t minutes, double rtt_ms) {
  measure::SpeedTestRecord r;
  r.id = core::MeasurementId(id);
  r.time = core::SimTime(minutes);
  r.asn = core::Asn(asn);
  r.city = city;
  r.vantage_pop = static_cast<netsim::PopIndex>(asn % 7);
  r.rtt_ms = rtt_ms;
  r.loss_rate = 0.01;
  r.throughput_mbps = 40.0;
  r.intent = (id % 3 == 0) ? measure::Intent::kUserInitiated
                           : measure::Intent::kBaseline;
  return r;
}

// ---- Compensated summation ------------------------------------------------

TEST(CompensatedSumTest, SurvivesCatastrophicCancellation) {
  // Naive left-to-right summation of {1e16, 1, -1e16} loses the 1.
  const double values[] = {1e16, 1.0, -1e16};
  EXPECT_EQ(stats::CompensatedSum(values), 1.0);
}

TEST(CompensatedSumTest, HandlesTermLargerThanRunningSum) {
  // Neumaier's branch: the incoming term dominates the running sum.
  const double values[] = {1.0, 1e100, 1.0, -1e100};
  EXPECT_EQ(stats::CompensatedSum(values), 2.0);
  EXPECT_EQ(stats::CompensatedSum(std::vector<double>{}), 0.0);
}

TEST(CompensatedSumTest, MeanIsExactOnRepresentableCases) {
  const double values[] = {0.1, 0.2, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(stats::CompensatedMean(values), 0.25);
}

// ---- ShardedMeasurementStore ----------------------------------------------

TEST(ShardedStoreTest, MirrorsBatchStoreValidation) {
  measure::MeasurementStore batch;
  measure::ShardedMeasurementStore sharded;
  std::vector<measure::SpeedTestRecord> records;
  for (std::uint64_t i = 1; i <= 40; ++i) {
    records.push_back(MakeRecord(i, 3741 + static_cast<std::uint32_t>(i % 5),
                                 "City" + std::to_string(i % 5),
                                 static_cast<std::int64_t>(i * 60),
                                 15.0 + static_cast<double>(i)));
  }
  records.push_back(MakeRecord(41, 3741, "City0", 60, -4.0));  // bad rtt
  auto bad_time = MakeRecord(42, 3742, "City1", 60, 20.0);
  bad_time.time = core::SimTime(-5);
  records.push_back(bad_time);

  std::size_t batch_archived = 0;
  std::size_t sharded_archived = 0;
  for (const auto& r : records) {
    if (batch.Add(r)) ++batch_archived;
    if (sharded.Append(sharded.ShardOf(r.UnitKey()), r)) ++sharded_archived;
  }

  EXPECT_EQ(batch_archived, 40u);
  EXPECT_EQ(sharded_archived, batch_archived);
  EXPECT_EQ(sharded.size(), batch.size());
  EXPECT_EQ(sharded.quarantined(), batch.quarantine().size());
  EXPECT_EQ(sharded.Units(), batch.Units());
  EXPECT_EQ(sharded.CountByIntent(measure::Intent::kBaseline),
            batch.Select([](const measure::SpeedTestRecord& r) {
                   return r.intent == measure::Intent::kBaseline;
                 }).size());
  // Same reason tags with the same counts.
  const auto batch_reasons = batch.QuarantineReasonCounts();
  const auto sharded_reasons = sharded.QuarantineReasonCounts();
  ASSERT_EQ(sharded_reasons.size(), batch_reasons.size());
  for (const auto& [tag, count] : batch_reasons) {
    ASSERT_TRUE(sharded_reasons.count(tag)) << tag;
    EXPECT_EQ(sharded_reasons.at(tag), count) << tag;
  }
}

TEST(ShardedStoreTest, ShardOfPartitionsUnitsDeterministically) {
  measure::ShardedMeasurementStore store;
  for (std::uint64_t i = 1; i <= 64; ++i) {
    const auto r = MakeRecord(i, 1000 + static_cast<std::uint32_t>(i), "U",
                              60, 10.0);
    const std::size_t shard = store.ShardOf(r.UnitKey());
    EXPECT_EQ(shard, store.ShardOf(r.UnitKey()));
    ASSERT_LT(shard, store.shard_count());
    ASSERT_TRUE(store.Append(shard, r));
  }
  // Every unit's arena entry lives in exactly one shard.
  std::size_t interned = 0;
  for (std::size_t s = 0; s < store.shard_count(); ++s) {
    interned += store.shard(s).unit_names.size();
  }
  EXPECT_EQ(interned, store.Units().size());
}

TEST(ShardedStoreTest, InternsUnitsAndClampsAttempts) {
  measure::ShardedMeasurementStore store;
  auto r = MakeRecord(1, 3741, "East London", 60, 12.0);
  r.attempts = 1000;
  const std::size_t shard = store.ShardOf(r.UnitKey());
  ASSERT_TRUE(store.Append(shard, r));
  r.id = core::MeasurementId(2);
  r.attempts = 3;
  ASSERT_TRUE(store.Append(shard, r));
  const auto& columns = store.shard(shard);
  ASSERT_EQ(columns.size(), 2u);
  EXPECT_EQ(columns.unit[0], columns.unit[1]);  // interned once
  EXPECT_EQ(columns.unit_names.size(), 1u);
  EXPECT_EQ(columns.attempts[0], 255);
  EXPECT_EQ(columns.attempts[1], 3);
}

TEST(ShardedStoreTest, ToCsvIsDeterministic) {
  auto fill = [](measure::ShardedMeasurementStore& store) {
    for (std::uint64_t i = 1; i <= 30; ++i) {
      const auto r = MakeRecord(i, 3741 + static_cast<std::uint32_t>(i % 4),
                                "City" + std::to_string(i % 4),
                                static_cast<std::int64_t>(i * 30),
                                10.0 + static_cast<double>(i) * 0.25);
      store.Append(store.ShardOf(r.UnitKey()), r);
    }
  };
  measure::ShardedMeasurementStore a, b;
  fill(a);
  fill(b);
  const std::string csv = a.ToCsv();
  EXPECT_EQ(csv, b.ToCsv());
  EXPECT_NE(csv.find("shard,id,time_minutes,unit"), std::string::npos);
}

// ---- IncrementalPanelBuilder vs BuildRttPanel -----------------------------

std::vector<measure::SpeedTestRecord> PanelFixtureRecords() {
  std::vector<measure::SpeedTestRecord> records;
  std::uint64_t id = 1;
  // Two dense units, one sparse (dropped), one entirely out of horizon
  // (empty). Horizon below: 8 periods of 6h = 2880 minutes.
  for (int unit = 0; unit < 2; ++unit) {
    for (int t = 0; t < 48; ++t) {
      records.push_back(MakeRecord(
          id++, 3741 + static_cast<std::uint32_t>(unit), "Dense", t * 60,
          20.0 + unit * 3.0 + 0.1 * static_cast<double>(t % 7)));
    }
  }
  for (int t = 0; t < 3; ++t) {  // sparse: 3 of 8 buckets observed
    records.push_back(
        MakeRecord(id++, 3750, "Sparse", t * 360, 30.0 + t));
  }
  for (int t = 0; t < 4; ++t) {  // beyond period 8
    records.push_back(MakeRecord(id++, 3760, "Late", 3000 + t * 60, 25.0));
  }
  return records;
}

measure::PanelOptions FixtureOptions() {
  measure::PanelOptions options;
  options.bucket = core::SimTime::FromHours(6);
  options.periods = 8;
  return options;
}

TEST(IncrementalPanelBuilderTest, MatchesBatchBuildRttPanel) {
  const auto records = PanelFixtureRecords();
  measure::MeasurementStore store;
  for (const auto& r : records) ASSERT_TRUE(store.Add(r));
  const measure::Panel batch =
      measure::BuildRttPanel(store, FixtureOptions());

  // Streaming: four shards, records arriving in scrambled order.
  auto scrambled = records;
  std::shuffle(scrambled.begin(), scrambled.end(),
               std::mt19937(20260808));
  measure::IncrementalPanelBuilder builder(FixtureOptions(), 4);
  for (const auto& r : scrambled) {
    builder.Observe(builder.ShardOf(r.UnitKey()), r.UnitKey(), r.time,
                    r.rtt_ms, r.id.value());
  }
  const measure::Panel streamed = builder.Finalize();

  EXPECT_EQ(measure::PanelToCsv(streamed), measure::PanelToCsv(batch));
  ASSERT_EQ(streamed.units.size(), batch.units.size());
  ASSERT_EQ(streamed.dropped.size(), batch.dropped.size());
  for (std::size_t u = 0; u < batch.units.size(); ++u) {
    EXPECT_EQ(streamed.units[u].unit, batch.units[u].unit);
    EXPECT_EQ(streamed.units[u].observed, batch.units[u].observed);
    EXPECT_EQ(streamed.units[u].cell_counts, batch.units[u].cell_counts);
    EXPECT_EQ(streamed.units[u].cell_means, batch.units[u].cell_means);
    EXPECT_EQ(streamed.units[u].values, batch.units[u].values);
  }
  // The all-out-of-horizon unit is empty in both paths: neither kept nor
  // listed as a sparsity drop.
  for (const auto& unit : streamed.units) EXPECT_NE(unit.unit, "3760 / Late");
  for (const auto& drop : streamed.dropped) EXPECT_NE(drop.unit, "3760 / Late");
}

TEST(IncrementalPanelBuilderTest, ArrivalOrderIsIrrelevant) {
  const auto records = PanelFixtureRecords();
  std::string reference;
  for (unsigned seed : {1u, 2u, 3u}) {
    auto scrambled = records;
    std::shuffle(scrambled.begin(), scrambled.end(), std::mt19937(seed));
    measure::IncrementalPanelBuilder builder(FixtureOptions(), 3);
    for (const auto& r : scrambled) {
      builder.Observe(builder.ShardOf(r.UnitKey()), r.UnitKey(), r.time,
                      r.rtt_ms, r.id.value());
    }
    const std::string csv = measure::PanelToCsv(builder.Finalize());
    if (reference.empty()) reference = csv;
    EXPECT_EQ(csv, reference) << "seed " << seed;
  }
}

TEST(IncrementalPanelBuilderTest, CountsObservedInHorizonOnly) {
  measure::IncrementalPanelBuilder builder(FixtureOptions(), 1);
  builder.Observe(0, "3741 / Dense", core::SimTime(60), 20.0, 1);
  builder.Observe(0, "3741 / Dense", core::SimTime(5000), 20.0, 2);  // late
  EXPECT_EQ(builder.observed(), 1u);
}

}  // namespace
}  // namespace sisyphus
