// Tests for testable implications: enumeration correctness and the
// Fisher-z conditional-independence test against SCM-generated data.
#include <gtest/gtest.h>

#include "causal/dag_parser.h"
#include "causal/dseparation.h"
#include "causal/implications.h"
#include "causal/scm.h"
#include "core/rng.h"

namespace sisyphus::causal {
namespace {

Dag MustParse(const char* text) {
  auto dag = ParseDag(text);
  EXPECT_TRUE(dag.ok()) << text;
  return std::move(dag).value();
}

// ---- Enumeration -------------------------------------------------------------

TEST(ImpliedIndependenciesTest, ChainImpliesEndpointsIndependentGivenMiddle) {
  const Dag dag = MustParse("A -> B -> C");
  const auto implications = ImpliedIndependencies(dag);
  ASSERT_EQ(implications.size(), 1u);
  EXPECT_EQ(implications[0].ToText(dag), "A _||_ C | B");
}

TEST(ImpliedIndependenciesTest, ColliderImpliesMarginalIndependence) {
  const Dag dag = MustParse("A -> C; B -> C");
  const auto implications = ImpliedIndependencies(dag);
  ASSERT_EQ(implications.size(), 1u);
  // Parents of A and B are empty: marginal statement.
  EXPECT_EQ(implications[0].ToText(dag), "A _||_ B");
}

TEST(ImpliedIndependenciesTest, CompleteGraphImpliesNothing) {
  const Dag dag = MustParse("A -> B; A -> C; B -> C");
  EXPECT_TRUE(ImpliedIndependencies(dag).empty());
}

TEST(ImpliedIndependenciesTest, LatentConfounderSuppressesStatement) {
  // A <-> B via a latent: A and B are NOT independent, and no observed
  // set separates them — nothing should be emitted.
  const Dag dag = MustParse("A <-> B");
  EXPECT_TRUE(ImpliedIndependencies(dag).empty());
}

TEST(ImpliedIndependenciesTest, EveryEmittedStatementHoldsInGraph) {
  // Property: re-check each emitted statement with the d-separation
  // oracle on a richer graph.
  const Dag dag = MustParse(
      "A -> B; B -> C; A -> D; D -> C; C -> E; F -> D; F -> E");
  const auto implications = ImpliedIndependencies(dag);
  EXPECT_GE(implications.size(), 3u);
  for (const auto& implication : implications) {
    EXPECT_TRUE(IsDSeparated(dag, implication.x, implication.y,
                             implication.given))
        << implication.ToText(dag);
  }
}

// ---- Partial correlation ------------------------------------------------------

TEST(PartialCorrelationTest, RemovesCommonCause) {
  // X <- Z -> Y: corr(X,Y) > 0 but pcor(X,Y|Z) ~ 0.
  core::Rng rng(1);
  const std::size_t n = 20000;
  std::vector<double> z(n), x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    z[i] = rng.Gaussian();
    x[i] = 1.5 * z[i] + rng.Gaussian();
    y[i] = -2.0 * z[i] + rng.Gaussian();
  }
  Dataset data;
  ASSERT_TRUE(data.AddColumn("Z", std::move(z)).ok());
  ASSERT_TRUE(data.AddColumn("X", std::move(x)).ok());
  ASSERT_TRUE(data.AddColumn("Y", std::move(y)).ok());
  auto marginal = PartialCorrelation(data, "X", "Y", {});
  auto partial = PartialCorrelation(data, "X", "Y", {"Z"});
  ASSERT_TRUE(marginal.ok());
  ASSERT_TRUE(partial.ok());
  EXPECT_LT(marginal.value(), -0.5);
  EXPECT_NEAR(partial.value(), 0.0, 0.03);
}

TEST(PartialCorrelationTest, MissingColumnFails) {
  Dataset data;
  ASSERT_TRUE(data.AddColumn("X", {1, 2, 3}).ok());
  EXPECT_FALSE(PartialCorrelation(data, "X", "Y", {}).ok());
}

// ---- Fisher-z test -------------------------------------------------------------

TEST(IndependenceTestTest, CalibratedUnderNull) {
  core::Rng rng(2);
  int rejections = 0;
  const int reps = 200;
  for (int rep = 0; rep < reps; ++rep) {
    const std::size_t n = 200;
    std::vector<double> x(n), y(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = rng.Gaussian();
      y[i] = rng.Gaussian();
    }
    Dataset data;
    ASSERT_TRUE(data.AddColumn("X", std::move(x)).ok());
    ASSERT_TRUE(data.AddColumn("Y", std::move(y)).ok());
    auto test = TestConditionalIndependence(data, "X", "Y", {});
    ASSERT_TRUE(test.ok());
    if (test.value().p_value < 0.05) ++rejections;
  }
  EXPECT_NEAR(rejections / static_cast<double>(reps), 0.05, 0.05);
}

TEST(IndependenceTestTest, PowerAgainstRealDependence) {
  core::Rng rng(3);
  const std::size_t n = 500;
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.Gaussian();
    y[i] = 0.4 * x[i] + rng.Gaussian();
  }
  Dataset data;
  ASSERT_TRUE(data.AddColumn("X", std::move(x)).ok());
  ASSERT_TRUE(data.AddColumn("Y", std::move(y)).ok());
  auto test = TestConditionalIndependence(data, "X", "Y", {});
  ASSERT_TRUE(test.ok());
  EXPECT_LT(test.value().p_value, 1e-6);
}

TEST(IndependenceTestTest, TooFewObservationsRejected) {
  Dataset data;
  ASSERT_TRUE(data.AddColumn("X", {1, 2, 3}).ok());
  ASSERT_TRUE(data.AddColumn("Y", {2, 1, 3}).ok());
  ASSERT_TRUE(data.AddColumn("Z", {1, 1, 2}).ok());
  EXPECT_FALSE(TestConditionalIndependence(data, "X", "Y", {"Z"}).ok());
}

// ---- End-to-end DAG validation ---------------------------------------------------

TEST(TestImpliedTest, CorrectDagSurvivesItsOwnData) {
  // Sample from the chain SCM; the chain DAG's implications must not be
  // rejected.
  const Dag dag = MustParse("A -> B -> C");
  Scm scm(dag);
  (void)scm.SetLinear("A", 0.0, {}, 1.0);
  (void)scm.SetLinear("B", 0.0, {{"A", 1.0}}, 1.0);
  (void)scm.SetLinear("C", 0.0, {{"B", 1.0}}, 1.0);
  core::Rng rng(4);
  const Dataset data = scm.Sample(5000, rng);
  auto results = TestImpliedIndependencies(dag, data);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results.value().size(), 1u);
  EXPECT_FALSE(results.value()[0].rejected);
}

TEST(TestImpliedTest, WrongDagIsRefutedByData) {
  // Data from the FULL triangle (A->B, A->C, B->C), tested against the
  // chain DAG that claims A _||_ C | B: must be rejected.
  const Dag truth = MustParse("A -> B; A -> C; B -> C");
  Scm scm(truth);
  (void)scm.SetLinear("A", 0.0, {}, 1.0);
  (void)scm.SetLinear("B", 0.0, {{"A", 1.0}}, 1.0);
  (void)scm.SetLinear("C", 0.0, {{"A", 2.0}, {"B", 1.0}}, 1.0);
  core::Rng rng(5);
  const Dataset data = scm.Sample(5000, rng);

  const Dag hypothesis = MustParse("A -> B -> C");
  auto results = TestImpliedIndependencies(hypothesis, data);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results.value().size(), 1u);
  EXPECT_TRUE(results.value()[0].rejected);
  EXPECT_GT(std::abs(results.value()[0].test.partial_correlation), 0.3);
}

TEST(TestImpliedTest, UnmeasuredVariablesSkipped) {
  const Dag dag = MustParse("A -> B -> C; D -> C");
  Dataset data;  // only A, B, C measured
  core::Rng rng(6);
  std::vector<double> a(100), b(100), c(100);
  for (std::size_t i = 0; i < 100; ++i) {
    a[i] = rng.Gaussian();
    b[i] = a[i] + rng.Gaussian();
    c[i] = b[i] + rng.Gaussian();
  }
  ASSERT_TRUE(data.AddColumn("A", std::move(a)).ok());
  ASSERT_TRUE(data.AddColumn("B", std::move(b)).ok());
  ASSERT_TRUE(data.AddColumn("C", std::move(c)).ok());
  std::size_t skipped = 0;
  auto results = TestImpliedIndependencies(dag, data, 0.01, &skipped);
  ASSERT_TRUE(results.ok());
  EXPECT_GT(skipped, 0u);
}

TEST(TestImpliedTest, BadAlphaRejected) {
  const Dag dag = MustParse("A -> B");
  Dataset data;
  EXPECT_FALSE(TestImpliedIndependencies(dag, data, 1.5).ok());
}

}  // namespace
}  // namespace sisyphus::causal
