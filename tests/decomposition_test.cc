// Tests for QR / SVD decompositions, including property-style sweeps over
// random matrices (TEST_P): orthogonality, reconstruction, solver
// correctness against known systems.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "stats/decomposition.h"

namespace sisyphus::stats {
namespace {

Matrix RandomMatrix(std::size_t rows, std::size_t cols, core::Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.Gaussian();
  return m;
}

bool IsOrthonormalColumns(const Matrix& q, double tol = 1e-9) {
  const Matrix gram = q.Transposed() * q;
  return gram.MaxAbsDiff(Matrix::Identity(q.cols())) < tol;
}

// ---- QR ---------------------------------------------------------------------

TEST(QrTest, ReconstructsInput) {
  const Matrix a{{1, 2}, {3, 4}, {5, 6}};
  auto qr = QrDecompose(a);
  ASSERT_TRUE(qr.ok());
  const Matrix back = qr.value().q * qr.value().r;
  EXPECT_LT(back.MaxAbsDiff(a), 1e-10);
  EXPECT_TRUE(IsOrthonormalColumns(qr.value().q));
}

TEST(QrTest, RIsUpperTriangular) {
  core::Rng rng(1);
  const Matrix a = RandomMatrix(6, 4, rng);
  auto qr = QrDecompose(a);
  ASSERT_TRUE(qr.ok());
  for (std::size_t r = 1; r < 4; ++r)
    for (std::size_t c = 0; c < r; ++c)
      EXPECT_NEAR(qr.value().r(r, c), 0.0, 1e-12);
}

TEST(QrTest, WideMatrixRejected) {
  const Matrix a(2, 3);
  EXPECT_FALSE(QrDecompose(a).ok());
}

TEST(LeastSquaresTest, ExactSystem) {
  // y = 2 + 3x at x = 0,1,2 with design [1, x].
  const Matrix a{{1, 0}, {1, 1}, {1, 2}};
  const Vector b{2, 5, 8};
  auto x = SolveLeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 2.0, 1e-10);
  EXPECT_NEAR(x.value()[1], 3.0, 1e-10);
}

TEST(LeastSquaresTest, OverdeterminedMinimizesResidual) {
  const Matrix a{{1, 0}, {1, 1}, {1, 2}, {1, 3}};
  const Vector b{0, 1, 1, 2};
  auto x = SolveLeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  // Normal-equation solution: slope 0.6, intercept 0.1.
  EXPECT_NEAR(x.value()[0], 0.1, 1e-10);
  EXPECT_NEAR(x.value()[1], 0.6, 1e-10);
}

TEST(LeastSquaresTest, RankDeficientFails) {
  const Matrix a{{1, 2}, {2, 4}, {3, 6}};  // col2 = 2*col1
  const Vector b{1, 2, 3};
  auto x = SolveLeastSquares(a, b);
  ASSERT_FALSE(x.ok());
  EXPECT_EQ(x.error().code(), core::ErrorCode::kNumericalFailure);
}

// ---- SVD --------------------------------------------------------------------

TEST(SvdTest, DiagonalMatrix) {
  const Matrix a{{3, 0}, {0, 4}, {0, 0}};
  auto svd = SvdDecompose(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd.value().singular_values[0], 4.0, 1e-10);
  EXPECT_NEAR(svd.value().singular_values[1], 3.0, 1e-10);
}

TEST(SvdTest, SingularValuesSortedDescending) {
  core::Rng rng(2);
  const Matrix a = RandomMatrix(8, 5, rng);
  auto svd = SvdDecompose(a);
  ASSERT_TRUE(svd.ok());
  const auto& s = svd.value().singular_values;
  for (std::size_t i = 1; i < s.size(); ++i) EXPECT_LE(s[i], s[i - 1] + 1e-12);
}

TEST(SvdTest, WideMatrixHandledByTranspose) {
  core::Rng rng(3);
  const Matrix a = RandomMatrix(3, 7, rng);
  auto svd = SvdDecompose(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_LT(svd.value().Reconstruct().MaxAbsDiff(a), 1e-9);
}

TEST(SvdTest, EmptyMatrixRejected) {
  EXPECT_FALSE(SvdDecompose(Matrix{}).ok());
}

TEST(SvdTest, RankAboveCountsCorrectly) {
  const Matrix a{{5, 0}, {0, 1e-14}};
  auto svd = SvdDecompose(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_EQ(svd.value().RankAbove(1e-8), 1u);
  EXPECT_EQ(svd.value().RankAbove(10.0), 0u);
}

TEST(SvdTest, TruncationGivesBestLowRankApproximation) {
  // Rank-1 matrix plus small noise: rank-1 truncation should recover the
  // dominant component much better than the noise level.
  core::Rng rng(4);
  Matrix a(10, 6);
  for (std::size_t r = 0; r < 10; ++r)
    for (std::size_t c = 0; c < 6; ++c)
      a(r, c) = (1.0 + static_cast<double>(r)) *
                    (1.0 + static_cast<double>(c)) +
                0.01 * rng.Gaussian();
  auto svd = SvdDecompose(a);
  ASSERT_TRUE(svd.ok());
  const Matrix rank1 = svd.value().TruncatedReconstruct(1);
  EXPECT_LT((rank1 - a).FrobeniusNorm() / a.FrobeniusNorm(), 0.01);
}

// Property sweep: SVD invariants on random shapes.
class SvdPropertyTest : public ::testing::TestWithParam<
                            std::tuple<std::size_t, std::size_t, int>> {};

TEST_P(SvdPropertyTest, DecompositionInvariantsHold) {
  const auto [rows, cols, seed] = GetParam();
  core::Rng rng(static_cast<std::uint64_t>(seed));
  const Matrix a = RandomMatrix(rows, cols, rng);
  auto svd = SvdDecompose(a);
  ASSERT_TRUE(svd.ok());
  const auto& d = svd.value();
  // Reconstruction.
  EXPECT_LT(d.Reconstruct().MaxAbsDiff(a), 1e-8);
  // Orthonormal factors.
  EXPECT_TRUE(IsOrthonormalColumns(d.u, 1e-8));
  EXPECT_TRUE(IsOrthonormalColumns(d.v, 1e-8));
  // Non-negative singular values.
  for (double s : d.singular_values) EXPECT_GE(s, 0.0);
  // Frobenius norm preserved: ||A||_F^2 = sum s_i^2.
  double sum2 = 0.0;
  for (double s : d.singular_values) sum2 += s * s;
  EXPECT_NEAR(std::sqrt(sum2), a.FrobeniusNorm(), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdPropertyTest,
    ::testing::Values(std::make_tuple(4, 4, 1), std::make_tuple(10, 3, 2),
                      std::make_tuple(3, 10, 3), std::make_tuple(20, 7, 4),
                      std::make_tuple(7, 20, 5), std::make_tuple(50, 10, 6),
                      std::make_tuple(1, 5, 7), std::make_tuple(5, 1, 8)));

// ---- SVD solvers -------------------------------------------------------------

TEST(SvdSolveTest, MatchesQrOnFullRank) {
  core::Rng rng(5);
  const Matrix a = RandomMatrix(12, 4, rng);
  Vector b(12);
  for (auto& x : b) x = rng.Gaussian();
  auto qr = SolveLeastSquares(a, b);
  auto svd = SvdSolveLeastSquares(a, b);
  ASSERT_TRUE(qr.ok());
  ASSERT_TRUE(svd.ok());
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(qr.value()[i], svd.value()[i], 1e-8);
}

TEST(SvdSolveTest, RankDeficientGivesMinimumNorm) {
  const Matrix a{{1, 2}, {2, 4}, {3, 6}};
  const Vector b{1, 2, 3};
  auto x = SvdSolveLeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  // Solutions satisfy x1 + 2 x2 = 1; the min-norm one is (0.2, 0.4).
  EXPECT_NEAR(x.value()[0], 0.2, 1e-9);
  EXPECT_NEAR(x.value()[1], 0.4, 1e-9);
}

TEST(PseudoInverseTest, InvertsFullRankSquare) {
  const Matrix a{{2, 0}, {0, 5}};
  auto pinv = PseudoInverse(a);
  ASSERT_TRUE(pinv.ok());
  EXPECT_LT((pinv.value() * a).MaxAbsDiff(Matrix::Identity(2)), 1e-10);
}

TEST(PseudoInverseTest, MoorePenroseConditions) {
  core::Rng rng(6);
  const Matrix a = RandomMatrix(6, 3, rng);
  auto pinv = PseudoInverse(a);
  ASSERT_TRUE(pinv.ok());
  const Matrix& p = pinv.value();
  EXPECT_LT((a * p * a).MaxAbsDiff(a), 1e-8);       // A A+ A = A
  EXPECT_LT((p * a * p).MaxAbsDiff(p), 1e-8);       // A+ A A+ = A+
}

TEST(HardThresholdTest, DropsSmallComponents) {
  const Matrix a{{10, 0}, {0, 0.1}};
  auto denoised = HardThreshold(a, 1.0);
  ASSERT_TRUE(denoised.ok());
  EXPECT_NEAR(denoised.value()(0, 0), 10.0, 1e-9);
  EXPECT_NEAR(denoised.value()(1, 1), 0.0, 1e-9);
}

TEST(HardThresholdTest, ZeroThresholdKeepsEverything) {
  core::Rng rng(7);
  const Matrix a = RandomMatrix(5, 4, rng);
  auto denoised = HardThreshold(a, 0.0);
  ASSERT_TRUE(denoised.ok());
  EXPECT_LT(denoised.value().MaxAbsDiff(a), 1e-9);
}

TEST(DefaultThresholdTest, SeparatesSignalFromNoise) {
  // Low-rank signal + noise: the default threshold should retain a small
  // rank (1-3), not the full 8.
  core::Rng rng(8);
  Matrix a(60, 8);
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      a(r, c) = 20.0 * std::sin(0.2 * static_cast<double>(r)) *
                    (1.0 + 0.1 * static_cast<double>(c)) +
                rng.Gaussian();
  auto svd = SvdDecompose(a);
  ASSERT_TRUE(svd.ok());
  const double threshold =
      DefaultSingularValueThreshold(svd.value(), a.rows(), a.cols());
  const std::size_t rank = svd.value().RankAbove(threshold);
  EXPECT_GE(rank, 1u);
  EXPECT_LE(rank, 3u);
}

}  // namespace
}  // namespace sisyphus::stats
