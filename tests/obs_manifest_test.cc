// Tests for obs::RunManifest / ScopedPhase / WriteRunArtifacts and the
// determinism contract: a seeded in-process campaign snapshots to
// byte-identical metrics JSON on repeat runs.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/json.h"
#include "measure/platform.h"
#include "netsim/simulator.h"
#include "netsim/topology.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sisyphus::obs {
namespace {

using core::Asn;
using core::SimTime;
using netsim::AsRole;
using netsim::Relationship;
using netsim::Topology;

class ManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::Enable(true);
    Registry::Global().ResetAll();
    Tracer::Global().Clear();
    Tracer::Global().Enable(true);
  }
  void TearDown() override {
    Tracer::Global().Enable(false);
    Tracer::Global().Clear();
    Registry::Global().ResetAll();
    Registry::Enable(false);
  }
};

/// Runs a tiny two-vantage campaign and returns the resulting metric
/// snapshot. Everything is seeded, so two calls must match byte for byte.
std::string RunSeededCampaignSnapshot(std::uint64_t seed) {
  Registry::Global().ResetAll();
  Topology topo;
  const auto city = topo.cities().Add({"X", {0, 0}, 2.0});
  const auto user = topo.AddPop(Asn{100}, city, AsRole::kAccess).value();
  const auto transit = topo.AddPop(Asn{2}, city, AsRole::kTransit).value();
  const auto server =
      topo.AddPop(Asn{4}, city, AsRole::kMeasurement).value();
  EXPECT_TRUE(topo.AddLink(user, transit, Relationship::kCustomerToProvider,
                           std::nullopt, 0.5)
                  .ok());
  EXPECT_TRUE(topo.AddLink(server, transit, Relationship::kCustomerToProvider,
                           std::nullopt, 0.3)
                  .ok());
  netsim::NetworkSimulator sim(std::move(topo));
  measure::PlatformOptions options;
  options.server = server;
  measure::Platform platform(sim, options);
  measure::VantageConfig vantage;
  vantage.pop = user;
  vantage.baseline_tests_per_day = 24.0;
  platform.AddVantage(vantage);
  core::Rng rng(seed);
  platform.Run(SimTime::FromDays(2), rng);
  return Registry::Global().SnapshotJson();
}

TEST_F(ManifestTest, SeededCampaignSnapshotsAreByteIdentical) {
  const std::string first = RunSeededCampaignSnapshot(7);
  const std::string second = RunSeededCampaignSnapshot(7);
  EXPECT_EQ(first, second);
#if !defined(SISYPHUS_OBS_DISABLED)
  // And the campaign actually recorded probe activity (the instrumentation
  // macros exist only when obs is compiled in).
  auto parsed = core::json::Parse(first);
  ASSERT_TRUE(parsed.ok());
  const auto* attempted =
      parsed.value().Find("counters")->Find("measure.probes.attempted");
  ASSERT_NE(attempted, nullptr);
  EXPECT_GT(attempted->number, 0.0);
#endif
}

TEST_F(ManifestTest, ScopedPhaseAppendsTimings) {
  RunManifest manifest;
  manifest.tool = "unit_test";
  {
    ScopedPhase phase(manifest, "first");
    phase.SetSimSpan(SimTime(0), SimTime::FromDays(1));
  }
  { ScopedPhase phase(manifest, "second"); }
  ASSERT_EQ(manifest.phases.size(), 2u);
  EXPECT_EQ(manifest.phases[0].name, "first");
  EXPECT_GE(manifest.phases[0].wall_ms, 0.0);
  EXPECT_EQ(manifest.phases[0].sim_start_min, 0);
  EXPECT_EQ(manifest.phases[0].sim_end_min,
            SimTime::FromDays(1).minutes());
  EXPECT_EQ(manifest.phases[1].name, "second");
  EXPECT_EQ(manifest.phases[1].sim_start_min, -1);
}

TEST_F(ManifestTest, StopIsIdempotent) {
  RunManifest manifest;
  ScopedPhase phase(manifest, "once");
  phase.Stop();
  phase.Stop();
  EXPECT_EQ(manifest.phases.size(), 1u);
}

TEST_F(ManifestTest, ToJsonCarriesProvenanceAndMetrics) {
  Registry::Global().GetCounter("measure.probes.attempted")->Add(12);
  RunManifest manifest;
  manifest.tool = "unit_test";
  manifest.seed = 2025;
  manifest.scenario_hash = "deadbeefcafef00d";
  manifest.AddOption("horizon_days", "56");
  manifest.AddPhase("build", 1.5);

  auto parsed = core::json::Parse(manifest.ToJson(Registry::Global()));
  ASSERT_TRUE(parsed.ok());
  const auto& root = parsed.value();
  EXPECT_EQ(root.Find("schema")->string, "sisyphus.run_manifest/1");
  EXPECT_EQ(root.Find("tool")->string, "unit_test");
  EXPECT_DOUBLE_EQ(root.Find("seed")->number, 2025.0);
  EXPECT_EQ(root.Find("scenario_hash")->string, "deadbeefcafef00d");
  EXPECT_EQ(root.Find("options")->Find("horizon_days")->string, "56");
  ASSERT_EQ(root.Find("phases")->array.size(), 1u);
  EXPECT_EQ(root.Find("phases")->array[0].Find("name")->string, "build");
  const auto* metrics = root.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_DOUBLE_EQ(metrics->Find("measure.probes.attempted")->number, 12.0);
}

TEST_F(ManifestTest, WriteRunArtifactsEmitsParsableTrio) {
  Registry::Global().GetCounter("measure.probes.attempted")->Add(3);
  Tracer::Global().RecordSimSpan("campaign", "measure", SimTime(0),
                                 SimTime::FromDays(1));
  RunManifest manifest;
  manifest.tool = "unit_test";
  manifest.seed = 1;

  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "obs_manifest_test";
  std::filesystem::create_directories(dir);
  const auto status = WriteRunArtifacts(dir.string(), manifest,
                                        Registry::Global(), Tracer::Global());
  ASSERT_TRUE(status.ok()) << status.error().ToText();

  for (const char* file : {"manifest.json", "metrics.json", "trace.json"}) {
    std::ifstream in(dir / file, std::ios::binary);
    ASSERT_TRUE(in.good()) << file;
    std::ostringstream text;
    text << in.rdbuf();
    EXPECT_TRUE(core::json::Parse(text.str()).ok()) << file;
  }
}

TEST_F(ManifestTest, TraceJsonUsesSeparateTracks) {
  Tracer::Global().RecordSimSpan("sim", "measure", SimTime(0), SimTime(5));
  auto parsed = core::json::Parse(Tracer::Global().ToChromeTraceJson());
  ASSERT_TRUE(parsed.ok());
  const auto* events = parsed.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 1u);
  const auto& event = events->array[0];
  EXPECT_EQ(event.Find("ph")->string, "X");
  EXPECT_DOUBLE_EQ(event.Find("tid")->number, 1.0);
  EXPECT_DOUBLE_EQ(event.Find("dur")->number, 5.0);
}

}  // namespace
}  // namespace sisyphus::obs
