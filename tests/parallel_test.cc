// Tests for the deterministic parallel execution layer (DESIGN.md §7):
// pool lifecycle, ParallelFor/ParallelMap semantics, exception
// propagation, the nested-submit deadlock guard, and the headline
// contract — byte-identical results at 1 and 8 lanes, all the way up to
// a full placebo analysis and a measurement campaign.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "causal/placebo.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "measure/panel.h"
#include "measure/platform.h"
#include "netsim/scenario_za.h"

namespace sisyphus {
namespace {

using core::ThreadPool;

TEST(ThreadPoolTest, LifecycleAndLaneCounts) {
  {
    ThreadPool single(1);
    EXPECT_EQ(single.thread_count(), 1u);
  }
  {
    ThreadPool quad(4);
    EXPECT_EQ(quad.thread_count(), 4u);
  }
  // Repeated construction/destruction does not leak or deadlock.
  for (int i = 0; i < 10; ++i) {
    ThreadPool pool(3);
    std::atomic<int> touched{0};
    pool.ParallelFor(7, [&](std::size_t) { ++touched; });
    EXPECT_EQ(touched.load(), 7);
  }
}

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnv) {
  ::setenv("SISYPHUS_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 3u);
  ::setenv("SISYPHUS_THREADS", "not-a-number", 1);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  ::unsetenv("SISYPHUS_THREADS");
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, ParallelMapKeepsIndexOrder) {
  ThreadPool pool(4);
  const auto out =
      pool.ParallelMap(64, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, ZeroAndOneTaskEdgeCases) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, LowestIndexExceptionWins) {
  ThreadPool pool(4);
  // Several tasks throw; the contract picks the lowest task index, so the
  // surfaced message is thread-count-independent.
  try {
    pool.ParallelFor(32, [&](std::size_t i) {
      if (i % 5 == 2) {  // 2, 7, 12, ... throw
        throw std::runtime_error("task " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "task 2");
  }
  // The pool survives a throwing region.
  std::atomic<int> touched{0};
  pool.ParallelFor(8, [&](std::size_t) { ++touched; });
  EXPECT_EQ(touched.load(), 8);
}

TEST(ThreadPoolTest, NestedSubmitRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(8, [&](std::size_t) {
    // A nested region from inside a task must not block on pool lanes.
    pool.ParallelFor(8, [&](std::size_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 64);
}

TEST(ThreadPoolTest, WorkDistributesAcrossLanes) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> lanes;
  pool.ParallelFor(64, [&](std::size_t) {
    // Make tasks slow enough that the workers wake up and claim some.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const std::lock_guard<std::mutex> lock(mu);
    lanes.insert(std::this_thread::get_id());
  });
  // On a single-core host the workers still exist and time-slice; at least
  // the caller plus one worker should have claimed tasks.
  EXPECT_GE(lanes.size(), 2u);
}

TEST(ThreadPoolTest, ForkedStreamsMakeMapDeterministicAcrossLaneCounts) {
  const std::uint64_t seed = 20260805;
  const auto run = [&](std::size_t lanes) {
    ThreadPool pool(lanes);
    return pool.ParallelMap(200, [&](std::size_t i) {
      core::Rng rng = core::Rng::Fork(seed, i);
      double acc = 0.0;
      for (int k = 0; k < 50; ++k) acc += rng.Gaussian();
      return acc;
    });
  };
  const auto serial = run(1);
  const auto parallel = run(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    // Bit-identity, not approximate equality.
    EXPECT_EQ(serial[i], parallel[i]) << "task " << i;
  }
}

/// Shared ZA-scenario panel for the end-to-end determinism checks.
causal::SyntheticControlInput BuildPanelInput() {
  netsim::ScenarioZaOptions options;
  options.donor_units = 12;
  options.treatment_time = core::SimTime::FromDays(7);
  options.horizon = core::SimTime::FromDays(14);
  auto scenario = netsim::BuildScenarioZa(options);
  measure::PlatformOptions platform_options;
  platform_options.server = scenario.content_jnb;
  measure::Platform platform(*scenario.simulator, platform_options);
  measure::VantageConfig vantage;
  vantage.baseline_tests_per_day = 12.0;
  for (const auto& unit : scenario.treated) {
    vantage.pop = unit.access_pop;
    platform.AddVantage(vantage);
  }
  for (auto donor : scenario.donors) {
    vantage.pop = donor;
    platform.AddVantage(vantage);
  }
  core::Rng rng(17);
  platform.Run(options.horizon, rng);
  measure::PanelOptions panel_options;
  panel_options.bucket = core::SimTime::FromHours(6);
  panel_options.periods = 4 * 14;
  const auto panel = measure::BuildRttPanel(platform.store(), panel_options);
  return measure::MakeSyntheticControlInput(panel, scenario.treated[0].name,
                                            scenario.donor_names,
                                            options.treatment_time)
      .value();
}

TEST(DeterministicParallelismTest, PlaceboAnalysisBitIdenticalAt1And8) {
  const auto input = BuildPanelInput();
  const auto run = [&](std::size_t lanes) {
    ThreadPool::SetGlobalThreadCount(lanes);
    auto result = causal::RunPlaceboAnalysis(input);
    ThreadPool::SetGlobalThreadCount(0);
    return result;
  };
  const auto serial = run(1);
  const auto parallel = run(8);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  const auto& a = serial.value();
  const auto& b = parallel.value();
  // Bit-identical PlaceboResult: every float compared with EQ, not NEAR.
  EXPECT_EQ(a.treated_fit.average_effect, b.treated_fit.average_effect);
  EXPECT_EQ(a.treated_fit.rmse_pre, b.treated_fit.rmse_pre);
  EXPECT_EQ(a.treated_fit.rmse_post, b.treated_fit.rmse_post);
  EXPECT_EQ(a.treated_fit.rmse_ratio, b.treated_fit.rmse_ratio);
  EXPECT_EQ(a.p_value, b.p_value);
  EXPECT_EQ(a.skipped_donors, b.skipped_donors);
  ASSERT_EQ(a.placebo_ratios.size(), b.placebo_ratios.size());
  for (std::size_t i = 0; i < a.placebo_ratios.size(); ++i) {
    EXPECT_EQ(a.placebo_ratios[i], b.placebo_ratios[i]) << i;
  }
}

TEST(DeterministicParallelismTest, MeasurementCampaignBitIdenticalAt1And8) {
  const auto run = [&](std::size_t lanes) {
    ThreadPool::SetGlobalThreadCount(lanes);
    netsim::ScenarioZaOptions options;
    options.donor_units = 8;
    options.treatment_time = core::SimTime::FromDays(4);
    options.horizon = core::SimTime::FromDays(8);
    auto scenario = netsim::BuildScenarioZa(options);
    measure::PlatformOptions platform_options;
    platform_options.server = scenario.content_jnb;
    platform_options.conditional_activation = true;
    measure::Platform platform(*scenario.simulator, platform_options);
    measure::VantageConfig vantage;
    vantage.baseline_tests_per_day = 10.0;
    vantage.user_tests_per_day = 4.0;
    for (const auto& unit : scenario.treated) {
      vantage.pop = unit.access_pop;
      platform.AddVantage(vantage);
    }
    for (auto donor : scenario.donors) {
      vantage.pop = donor;
      platform.AddVantage(vantage);
    }
    core::Rng rng(23);
    platform.Run(options.horizon, rng);
    struct Summary {
      std::vector<std::uint64_t> ids;
      std::vector<std::int64_t> times;
      std::vector<double> rtts;
      std::size_t failures = 0;
    } summary;
    for (const auto& record : platform.store().records()) {
      summary.ids.push_back(record.id.value());
      summary.times.push_back(record.time.minutes());
      summary.rtts.push_back(record.rtt_ms);
    }
    summary.failures = platform.failures().size();
    ThreadPool::SetGlobalThreadCount(0);
    return summary;
  };
  const auto serial = run(1);
  const auto parallel = run(8);
  ASSERT_EQ(serial.ids.size(), parallel.ids.size());
  EXPECT_EQ(serial.failures, parallel.failures);
  for (std::size_t i = 0; i < serial.ids.size(); ++i) {
    EXPECT_EQ(serial.ids[i], parallel.ids[i]) << i;
    EXPECT_EQ(serial.times[i], parallel.times[i]) << i;
    EXPECT_EQ(serial.rtts[i], parallel.rtts[i]) << i;  // bit-identical
  }
}

}  // namespace
}  // namespace sisyphus
