// Tests for the measurement platform: baseline scheduling, endogenous
// user-triggered testing (the collider mechanism), conditional
// activation, intent tagging, and fault-injected campaigns (probe loss,
// retries, outage windows, deterministic replay).
#include <gtest/gtest.h>

#include "measure/export.h"
#include "measure/platform.h"

namespace sisyphus::measure {
namespace {

using core::Asn;
using core::SimTime;
using netsim::AsRole;
using netsim::NetworkEvent;
using netsim::NetworkSimulator;
using netsim::Relationship;
using netsim::Topology;

struct Fixture {
  std::unique_ptr<NetworkSimulator> sim;
  netsim::PopIndex user = 0, server = 0;
  core::LinkId primary, backup;

  Fixture() {
    Topology topo;
    const auto city = topo.cities().Add({"X", {0, 0}, 2.0});
    user = topo.AddPop(Asn{100}, city, AsRole::kAccess).value();
    const auto t1 = topo.AddPop(Asn{2}, city, AsRole::kTransit).value();
    const auto t2 = topo.AddPop(Asn{3}, city, AsRole::kTransit).value();
    server = topo.AddPop(Asn{4}, city, AsRole::kMeasurement).value();
    primary = topo.AddLink(user, t1, Relationship::kCustomerToProvider,
                           std::nullopt, 0.5)
                  .value();
    backup = topo.AddLink(user, t2, Relationship::kCustomerToProvider,
                          std::nullopt, 3.0)
                 .value();
    EXPECT_TRUE(topo.AddLink(server, t1, Relationship::kCustomerToProvider,
                             std::nullopt, 0.3)
                    .ok());
    EXPECT_TRUE(topo.AddLink(server, t2, Relationship::kCustomerToProvider,
                             std::nullopt, 0.3)
                    .ok());
    sim = std::make_unique<NetworkSimulator>(std::move(topo));
  }
};

TEST(PlatformTest, BaselineRateApproximatelyHonored) {
  Fixture f;
  PlatformOptions options;
  options.server = f.server;
  Platform platform(*f.sim, options);
  VantageConfig vantage;
  vantage.pop = f.user;
  vantage.baseline_tests_per_day = 24.0;
  platform.AddVantage(vantage);
  core::Rng rng(1);
  platform.Run(SimTime::FromDays(10), rng);
  // Expect ~240 tests, Poisson sd ~ 15.5.
  EXPECT_NEAR(static_cast<double>(platform.store().size()), 240.0, 60.0);
  EXPECT_EQ(platform.CountByIntent(Intent::kBaseline),
            platform.store().size());
}

TEST(PlatformTest, UserTestingRateRisesWithDegradation) {
  // Two identical vantages; halfway through, a congestion shock degrades
  // the path. User-initiated volume after the shock should exceed before.
  Fixture f;
  const auto primary = f.primary;
  PlatformOptions options;
  options.server = f.server;
  Platform platform(*f.sim, options);
  VantageConfig vantage;
  vantage.pop = f.user;
  vantage.baseline_tests_per_day = 0.0;
  vantage.user_tests_per_day = 20.0;
  vantage.dissatisfaction_gain = 10.0;
  platform.AddVantage(vantage);

  NetworkEvent shock;
  shock.time = SimTime::FromDays(5);
  shock.type = netsim::EventType::kCongestionShock;
  shock.link = primary;
  shock.shock_end = SimTime::FromDays(10);
  shock.shock_extra = 0.55;
  f.sim->schedule().Add(shock);

  core::Rng rng(2);
  platform.Run(SimTime::FromDays(10), rng);

  std::size_t before = 0, after = 0;
  for (const auto& record : platform.store().records()) {
    (record.time < SimTime::FromDays(5) ? before : after)++;
  }
  EXPECT_GT(after, before + before / 4);
}

TEST(PlatformTest, ConditionalActivationFiresOnRouteChange) {
  Fixture f;
  const auto primary = f.primary;
  PlatformOptions options;
  options.server = f.server;
  options.conditional_activation = true;
  options.event_burst_tests = 6;
  Platform platform(*f.sim, options);
  VantageConfig vantage;
  vantage.pop = f.user;
  vantage.baseline_tests_per_day = 0.0;
  platform.AddVantage(vantage);

  NetworkEvent down;
  down.time = SimTime::FromDays(1);
  down.type = netsim::EventType::kLinkDown;
  down.exogenous = true;
  down.description = "maintenance";
  down.link = primary;
  f.sim->schedule().Add(down);

  core::Rng rng(3);
  platform.Run(SimTime::FromDays(2), rng);
  EXPECT_EQ(platform.CountByIntent(Intent::kEventTriggered), 6u);
  // All triggered tests happened at/after the event.
  for (const auto& record : platform.store().records()) {
    if (record.intent == Intent::kEventTriggered) {
      EXPECT_GE(record.time, SimTime::FromDays(1));
    }
  }
}

TEST(PlatformTest, NoConditionalActivationWithoutEvents) {
  Fixture f;
  PlatformOptions options;
  options.server = f.server;
  options.conditional_activation = true;
  Platform platform(*f.sim, options);
  VantageConfig vantage;
  vantage.pop = f.user;
  vantage.baseline_tests_per_day = 5.0;
  platform.AddVantage(vantage);
  core::Rng rng(4);
  platform.Run(SimTime::FromDays(3), rng);
  EXPECT_EQ(platform.CountByIntent(Intent::kEventTriggered), 0u);
}

TEST(PlatformTest, MultipleVantagesProduceDistinctUnits) {
  Fixture f;
  // Second user AS.
  auto& topo = f.sim->topology();
  const auto city2 = topo.cities().Add({"Y", {1, 1}, 2.0});
  const auto user2 = topo.AddPop(Asn{200}, city2, AsRole::kAccess).value();
  ASSERT_TRUE(topo.AddLink(user2, 1 /* t1 */,
                           Relationship::kCustomerToProvider)
                  .ok());
  PlatformOptions options;
  options.server = f.server;
  Platform platform(*f.sim, options);
  VantageConfig vantage;
  vantage.baseline_tests_per_day = 12.0;
  vantage.pop = f.user;
  platform.AddVantage(vantage);
  vantage.pop = user2;
  platform.AddVantage(vantage);
  core::Rng rng(5);
  platform.Run(SimTime::FromDays(4), rng);
  EXPECT_EQ(platform.store().Units().size(), 2u);
}


TEST(PlatformTest, EdgeSteeringRoutesTestsAcrossSites) {
  Fixture f;
  // Second measurement site behind the backup transit.
  auto& topo = f.sim->topology();
  const auto city2 = topo.cities().Add({"Z", {2, 2}, 2.0});
  const auto site2 =
      topo.AddPop(Asn{5}, city2, AsRole::kMeasurement).value();
  ASSERT_TRUE(
      topo.AddLink(site2, 2 /* t2 */, Relationship::kCustomerToProvider)
          .ok());

  PlatformOptions options;
  options.server = f.server;
  Platform platform(*f.sim, options);
  VantageConfig vantage;
  vantage.pop = f.user;
  vantage.baseline_tests_per_day = 48.0;
  platform.AddVantage(vantage);

  EdgeSteering steering(*f.sim, {f.server, site2});
  steering.SetMode(SteeringMode::kRandomSite);
  platform.SetEdgeSteering(&steering);
  core::Rng rng(9);
  platform.Run(SimTime::FromDays(5), rng);

  std::size_t to_site2 = 0;
  for (const auto& record : platform.store().records()) {
    if (record.server_pop == site2) ++to_site2;
  }
  EXPECT_GT(to_site2, 0u);
  EXPECT_LT(to_site2, platform.store().size());
  EXPECT_EQ(steering.decisions().size(), platform.store().size());

  // Reverting steering pins back to the configured server.
  platform.SetEdgeSteering(nullptr);
  platform.Run(SimTime::FromDays(5) + SimTime::FromHours(6), rng);
  const auto& records = platform.store().records();
  EXPECT_EQ(records.back().server_pop, f.server);
}

// ---- Fault-injected campaigns ---------------------------------------------

TEST(PlatformFaultTest, CertainProbeLossLogsFailuresWithProvenance) {
  Fixture f;
  PlatformOptions options;
  options.server = f.server;
  Platform platform(*f.sim, options);
  VantageConfig vantage;
  vantage.pop = f.user;
  vantage.baseline_tests_per_day = 24.0;
  platform.AddVantage(vantage);

  FaultPlan plan;
  plan.probe_loss_probability = 1.0;
  FaultInjector injector(plan);
  platform.SetFaultInjector(&injector);

  core::Rng rng(21);
  platform.Run(SimTime::FromDays(2), rng);
  EXPECT_EQ(platform.store().size(), 0u);
  ASSERT_GT(platform.failures().size(), 10u);
  for (const auto& failure : platform.failures()) {
    EXPECT_EQ(failure.reason, ProbeFault::kProbeLoss);
    EXPECT_EQ(failure.attempts, options.retry.max_attempts);
    EXPECT_EQ(failure.vantage, f.user);
  }
}

TEST(PlatformFaultTest, RetriesRecoverFromTransientLoss) {
  Fixture f;
  PlatformOptions options;
  options.server = f.server;
  options.retry.max_attempts = 6;
  Platform platform(*f.sim, options);
  VantageConfig vantage;
  vantage.pop = f.user;
  vantage.baseline_tests_per_day = 48.0;
  platform.AddVantage(vantage);

  FaultPlan plan;
  plan.seed = 23;
  plan.probe_loss_probability = 0.5;
  FaultInjector injector(plan);
  platform.SetFaultInjector(&injector);

  core::Rng rng(22);
  platform.Run(SimTime::FromDays(3), rng);
  ASSERT_GT(platform.store().size(), 50u);
  std::size_t retried = 0;
  for (const auto& record : platform.store().records()) {
    EXPECT_GE(record.attempts, 1u);
    EXPECT_LE(record.attempts, 6u);
    if (record.attempts > 1) ++retried;
  }
  // At 50% per-attempt loss, roughly half of surviving records were
  // rescued by a retry.
  EXPECT_GT(retried, platform.store().size() / 5);
  // Final failures need ~6 consecutive losses: rare but accounted for.
  EXPECT_LT(platform.failures().size(), platform.store().size() / 10);
}

TEST(PlatformFaultTest, VantageOutageWindowSuppressesRecords) {
  Fixture f;
  PlatformOptions options;
  options.server = f.server;
  Platform platform(*f.sim, options);
  VantageConfig vantage;
  vantage.pop = f.user;
  vantage.baseline_tests_per_day = 24.0;
  platform.AddVantage(vantage);

  FaultPlan plan;
  plan.vantage_outages.push_back(
      {f.user, {{SimTime::FromDays(1), SimTime::FromDays(2)}}});
  FaultInjector injector(plan);
  platform.SetFaultInjector(&injector);

  core::Rng rng(23);
  platform.Run(SimTime::FromDays(3), rng);
  // Retries back off by minutes; a day-long window swallows all attempts.
  for (const auto& record : platform.store().records()) {
    EXPECT_TRUE(record.time < SimTime::FromDays(1) ||
                record.time >= SimTime::FromDays(2));
  }
  std::size_t outage_failures = 0;
  for (const auto& failure : platform.failures()) {
    if (failure.reason == ProbeFault::kVantageOutage) ++outage_failures;
  }
  EXPECT_GT(outage_failures, 5u);
}

TEST(PlatformFaultTest, CollectorOutageAffectsAllVantages) {
  Fixture f;
  PlatformOptions options;
  options.server = f.server;
  Platform platform(*f.sim, options);
  VantageConfig vantage;
  vantage.pop = f.user;
  vantage.baseline_tests_per_day = 24.0;
  platform.AddVantage(vantage);

  FaultPlan plan;
  plan.collector_outages.push_back(
      {SimTime::FromDays(1), SimTime::FromDays(2)});
  FaultInjector injector(plan);
  platform.SetFaultInjector(&injector);

  core::Rng rng(24);
  platform.Run(SimTime::FromDays(3), rng);
  for (const auto& record : platform.store().records()) {
    EXPECT_TRUE(record.time < SimTime::FromDays(1) ||
                record.time >= SimTime::FromDays(2));
  }
  std::size_t collector_failures = 0;
  for (const auto& failure : platform.failures()) {
    if (failure.reason == ProbeFault::kCollectorOutage) ++collector_failures;
  }
  EXPECT_GT(collector_failures, 5u);
}

TEST(PlatformFaultTest, CorruptRecordsAreQuarantinedNotArchived) {
  Fixture f;
  PlatformOptions options;
  options.server = f.server;
  Platform platform(*f.sim, options);
  VantageConfig vantage;
  vantage.pop = f.user;
  vantage.baseline_tests_per_day = 48.0;
  platform.AddVantage(vantage);

  FaultPlan plan;
  plan.seed = 29;
  plan.corruption_probability = 0.3;
  FaultInjector injector(plan);
  platform.SetFaultInjector(&injector);

  core::Rng rng(25);
  platform.Run(SimTime::FromDays(3), rng);
  EXPECT_GT(platform.store().quarantine().size(), 10u);
  // Everything that made it into the archive still validates.
  for (const auto& record : platform.store().records()) {
    EXPECT_TRUE(ValidateRecord(record, options.validation).ok());
  }
  for (const auto& entry : platform.store().quarantine()) {
    EXPECT_FALSE(entry.reason.empty());
  }
}

TEST(PlatformFaultTest, SameFaultSeedReplaysByteIdenticalStream) {
  FaultPlan plan;
  plan.seed = 31;
  plan.probe_loss_probability = 0.2;
  plan.duplicate_probability = 0.05;
  plan.max_clock_skew = SimTime(2);

  auto run_campaign = [&plan]() {
    Fixture f;
    PlatformOptions options;
    options.server = f.server;
    Platform platform(*f.sim, options);
    VantageConfig vantage;
    vantage.pop = f.user;
    vantage.baseline_tests_per_day = 24.0;
    platform.AddVantage(vantage);
    FaultInjector injector(plan);
    platform.SetFaultInjector(&injector);
    core::Rng rng(26);
    platform.Run(SimTime::FromDays(4), rng);
    return StoreToCsv(platform.store());
  };
  const std::string first = run_campaign();
  const std::string second = run_campaign();
  EXPECT_GT(first.size(), 100u);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace sisyphus::measure
