// Tests for incremental BGP route maintenance (DESIGN.md §14): frontier
// repair vs from-scratch parity under randomized event sequences (link
// flaps, local-pref overrides, poison set/clear interleaved), scoped
// link-down invalidation via the reverse index, thread-count invariance
// of route tables and cache hit/miss metrics, the RecomputeFrom repair
// API, and the SISYPHUS_BGP_CHECK differential mode.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "core/rng.h"
#include "netsim/bgp.h"
#include "netsim/simulator.h"
#include "obs/metrics.h"

namespace sisyphus::netsim {
namespace {

using core::Asn;
using core::LinkId;
using core::Rng;

/// Random 3-tier topology (as in bgp_test's valley-free sweep), with a
/// few v4-only links so the IPv6 fixed point differs from the IPv4 one.
Topology RandomTopology(Rng& rng) {
  Topology topo;
  const auto city = topo.cities().Add({"X", {0, 0}, 0});
  std::vector<PopIndex> tier1, tier2;
  std::uint32_t asn = 1;
  for (int i = 0; i < 4; ++i) {
    tier1.push_back(topo.AddPop(Asn{asn++}, city, AsRole::kTransit).value());
  }
  for (std::size_t i = 0; i < tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1.size(); ++j) {
      EXPECT_TRUE(
          topo.AddLink(tier1[i], tier1[j], Relationship::kPeerToPeer).ok());
    }
  }
  for (int i = 0; i < 5; ++i) {
    const auto node = topo.AddPop(Asn{asn++}, city, AsRole::kTransit).value();
    tier2.push_back(node);
    const auto up = static_cast<std::size_t>(rng.UniformInt(0, 3));
    EXPECT_TRUE(
        topo.AddLink(node, tier1[up], Relationship::kCustomerToProvider).ok());
    if (rng.Bernoulli(0.5)) {
      EXPECT_TRUE(topo.AddLink(node, tier1[(up + 1) % 4],
                               Relationship::kCustomerToProvider)
                      .ok());
    }
  }
  for (std::size_t i = 0; i + 1 < tier2.size(); i += 2) {
    EXPECT_TRUE(
        topo.AddLink(tier2[i], tier2[i + 1], Relationship::kPeerToPeer).ok());
  }
  for (int i = 0; i < 12; ++i) {
    const auto node = topo.AddPop(Asn{asn++}, city, AsRole::kAccess).value();
    const auto up = static_cast<std::size_t>(rng.UniformInt(0, 4));
    EXPECT_TRUE(
        topo.AddLink(node, tier2[up], Relationship::kCustomerToProvider).ok());
    if (rng.Bernoulli(0.3)) {
      EXPECT_TRUE(topo.AddLink(node, tier2[(up + 2) % 5],
                               Relationship::kCustomerToProvider)
                      .ok());
    }
  }
  for (LinkId link{0}; link.value() < topo.LinkCount();
       link = LinkId{link.value() + 1}) {
    if (rng.Bernoulli(0.2)) topo.MutableLink(link).ipv6 = false;
  }
  return topo;
}

std::vector<PopIndex> AllPops(const Topology& topo) {
  std::vector<PopIndex> all;
  for (PopIndex p = 0; p < topo.PopCount(); ++p) all.push_back(p);
  return all;
}

/// Externally tracked policy state, replayed onto fresh reference
/// simulators so the scratch fixed point uses identical inputs.
struct PolicyState {
  std::map<std::pair<PopIndex, LinkId>, double> prefs;
  std::map<PopIndex, std::set<Asn>> poisons;

  void ApplyTo(BgpSimulator& bgp) const {
    for (const auto& [key, delta] : prefs) {
      bgp.SetLocalPrefOverride(key.first, key.second, delta);
    }
    for (const auto& [destination, asns] : poisons) {
      bgp.SetPoisonedAsns(destination, asns);
    }
  }
};

/// One scripted mutation (kinds interleaved by the seeded rng), applied
/// through the incremental API and mirrored into `state`.
void ApplyScriptedEvent(Rng& rng, Topology& topo, BgpSimulator& bgp,
                        PolicyState& state) {
  const auto n_links = static_cast<std::int64_t>(topo.LinkCount());
  const auto n_pops = static_cast<std::int64_t>(topo.PopCount());
  switch (rng.UniformInt(0, 5)) {
    case 0: {  // link down (flap if already down)
      const LinkId link{
          static_cast<std::uint32_t>(rng.UniformInt(0, n_links - 1))};
      topo.MutableLink(link).up = false;
      bgp.ApplyLinkEvent(link);
      break;
    }
    case 1: {  // link up
      const LinkId link{
          static_cast<std::uint32_t>(rng.UniformInt(0, n_links - 1))};
      topo.MutableLink(link).up = true;
      bgp.ApplyLinkEvent(link);
      break;
    }
    case 2: {  // local-pref override on a random incident (pop, link)
      const auto pop =
          static_cast<PopIndex>(rng.UniformInt(0, n_pops - 1));
      const auto& links = topo.LinksOf(pop);
      if (links.empty()) break;
      const LinkId link = links[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(links.size()) - 1))];
      const double delta = rng.Bernoulli(0.5) ? -150.0 : 150.0;
      state.prefs[{pop, link}] = delta;
      bgp.SetLocalPrefOverride(pop, link, delta);
      break;
    }
    case 3: {  // clear one override (no-op when none)
      if (state.prefs.empty()) break;
      auto it = state.prefs.begin();
      std::advance(it, rng.UniformInt(0, static_cast<std::int64_t>(
                                             state.prefs.size()) -
                                             1));
      bgp.ClearLocalPrefOverride(it->first.first, it->first.second);
      state.prefs.erase(it);
      break;
    }
    case 4: {  // poison 1-2 transit ASNs from a random origin
      const auto destination =
          static_cast<PopIndex>(rng.UniformInt(0, n_pops - 1));
      std::set<Asn> asns;
      asns.insert(Asn{static_cast<std::uint32_t>(rng.UniformInt(1, 9))});
      if (rng.Bernoulli(0.5)) {
        asns.insert(Asn{static_cast<std::uint32_t>(rng.UniformInt(1, 9))});
      }
      state.poisons[destination] = asns;
      bgp.SetPoisonedAsns(destination, asns);
      break;
    }
    case 5: {  // clear a poison set (no-op when none)
      if (state.poisons.empty()) break;
      auto it = state.poisons.begin();
      std::advance(it, rng.UniformInt(0, static_cast<std::int64_t>(
                                             state.poisons.size()) -
                                             1));
      bgp.ClearPoisonedAsns(it->first);
      state.poisons.erase(it);
      break;
    }
  }
}

// ---- Randomized event-sequence parity ---------------------------------------

class BgpIncrementalPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BgpIncrementalPropertyTest, EventSequenceMatchesScratch) {
  Rng topo_rng(static_cast<std::uint64_t>(GetParam()));
  Topology topo = RandomTopology(topo_rng);
  const auto destinations = AllPops(topo);

  BgpSimulator incremental(topo);
  incremental.WarmRoutes(destinations);
  incremental.WarmRoutes(destinations, AddressFamily::kIpv6);
  PolicyState state;

  Rng script_rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
  for (int step = 0; step < 40; ++step) {
    ApplyScriptedEvent(script_rng, topo, incremental, state);
    // Poison events drop that destination's tables; rewarm so every
    // destination is compared on every step.
    incremental.WarmRoutes(destinations);
    incremental.WarmRoutes(destinations, AddressFamily::kIpv6);

    // Reference: a cold simulator over the mutated topology with the same
    // policy state converges from scratch.
    BgpSimulator scratch(topo);
    state.ApplyTo(scratch);
    for (PopIndex destination : destinations) {
      EXPECT_TRUE(SameRoutes(incremental.RoutesTo(destination),
                             scratch.RoutesTo(destination)))
          << "ipv4 divergence at step " << step << " destination "
          << topo.GetPop(destination).label;
      EXPECT_TRUE(
          SameRoutes(incremental.RoutesTo(destination, AddressFamily::kIpv6),
                     scratch.RoutesTo(destination, AddressFamily::kIpv6)))
          << "ipv6 divergence at step " << step << " destination "
          << topo.GetPop(destination).label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BgpIncrementalPropertyTest,
                         ::testing::Range(1, 7));

// ---- Thread-count invariance ------------------------------------------------

struct RunResult {
  std::vector<RouteTable> tables;
  std::map<std::string, std::uint64_t> counters;
};

RunResult RunScriptedCampaign(int seed, std::size_t threads) {
  core::ThreadPool::SetGlobalThreadCount(threads);
  obs::Registry::Enable(true);
  obs::Registry::Global().ResetAll();

  Rng topo_rng(static_cast<std::uint64_t>(seed));
  Topology topo = RandomTopology(topo_rng);
  const auto destinations = AllPops(topo);
  BgpSimulator bgp(topo);
  bgp.WarmRoutes(destinations);
  PolicyState state;
  Rng script_rng(static_cast<std::uint64_t>(seed) * 977 + 13);
  for (int step = 0; step < 30; ++step) {
    ApplyScriptedEvent(script_rng, topo, bgp, state);
    bgp.WarmRoutes(destinations);
    for (PopIndex destination : destinations) {
      (void)bgp.Route(0, destination);
    }
  }

  RunResult result;
  for (PopIndex destination : destinations) {
    result.tables.push_back(bgp.RoutesTo(destination));
  }
  for (const char* name :
       {"netsim.bgp.route_cache_hits", "netsim.bgp.route_cache_misses",
        "netsim.bgp.invalidated_destinations",
        "netsim.bgp.retained_destinations", "netsim.bgp.frontier_pops",
        "netsim.bgp.tables_computed"}) {
    result.counters[name] = obs::Registry::Global().CounterValue(name);
  }
  obs::Registry::Global().ResetAll();
  obs::Registry::Enable(false);
  core::ThreadPool::SetGlobalThreadCount(0);
  return result;
}

TEST(BgpIncrementalThreadsTest, TablesAndCacheMetricsInvariantAcrossLanes) {
  const RunResult serial = RunScriptedCampaign(5, 1);
  const RunResult wide = RunScriptedCampaign(5, 8);
  ASSERT_EQ(serial.tables.size(), wide.tables.size());
  for (std::size_t i = 0; i < serial.tables.size(); ++i) {
    EXPECT_TRUE(SameRoutes(serial.tables[i], wide.tables[i]));
  }
  // Cache behaviour — including how much work each event caused — must
  // not leak the execution strategy.
  EXPECT_EQ(serial.counters, wide.counters);
  EXPECT_GT(wide.counters.at("netsim.bgp.retained_destinations"), 0u);
}

// ---- Link-down scoping via the reverse index --------------------------------

TEST(BgpIncrementalTest, LinkDownRepairsOnlyTraversingCone) {
  // Valley-free export keeps a peer link between two access PoPs out of
  // every table except the ones destined to those PoPs themselves: a1-a2
  // is a1's best first hop towards a2 (peer beats the provider detour via
  // t1-p-t2) but can never carry transit. Killing it must repair a2's
  // table and leave p's untouched.
  Topology topo;
  const auto city = topo.cities().Add({"X", {0, 0}, 0});
  const auto p = topo.AddPop(Asn{1}, city, AsRole::kTransit).value();
  const auto t1 = topo.AddPop(Asn{2}, city, AsRole::kTransit).value();
  const auto t2 = topo.AddPop(Asn{3}, city, AsRole::kTransit).value();
  const auto a1 = topo.AddPop(Asn{4}, city, AsRole::kAccess).value();
  const auto a2 = topo.AddPop(Asn{5}, city, AsRole::kAccess).value();
  ASSERT_TRUE(topo.AddLink(t1, p, Relationship::kCustomerToProvider).ok());
  ASSERT_TRUE(topo.AddLink(t2, p, Relationship::kCustomerToProvider).ok());
  ASSERT_TRUE(topo.AddLink(a1, t1, Relationship::kCustomerToProvider).ok());
  ASSERT_TRUE(topo.AddLink(a2, t2, Relationship::kCustomerToProvider).ok());
  const auto a1_a2 =
      topo.AddLink(a1, a2, Relationship::kPeerToPeer).value();

  obs::Registry::Enable(true);
  obs::Registry::Global().ResetAll();
  BgpSimulator bgp(topo);
  bgp.WarmRoutes({a2, p});
  ASSERT_EQ(bgp.CachedTableCount(), 2u);
  {
    auto direct = bgp.Route(a1, a2);
    ASSERT_TRUE(direct.ok());
    ASSERT_EQ(direct.value().cls, RouteClass::kPeer);
    ASSERT_EQ(direct.value().pop_path.size(), 2u);
  }

  topo.MutableLink(a1_a2).up = false;
  bgp.ApplyLinkEvent(a1_a2);
  // Only a2's table traverses the link: one repaired, one retained.
  EXPECT_EQ(obs::Registry::Global().CounterValue(
                "netsim.bgp.invalidated_destinations"),
            1u);
  EXPECT_EQ(obs::Registry::Global().CounterValue(
                "netsim.bgp.retained_destinations"),
            1u);
  obs::Registry::Global().ResetAll();
  obs::Registry::Enable(false);

  auto detour = bgp.Route(a1, a2);  // falls back to the provider detour
  ASSERT_TRUE(detour.ok());
  EXPECT_EQ(detour.value().cls, RouteClass::kProvider);
  EXPECT_EQ(detour.value().pop_path.size(), 5u);
  BgpSimulator scratch(topo);
  EXPECT_TRUE(SameRoutes(bgp.RoutesTo(a2), scratch.RoutesTo(a2)));
  EXPECT_TRUE(SameRoutes(bgp.RoutesTo(p), scratch.RoutesTo(p)));
}

// ---- RecomputeFrom repair API -----------------------------------------------

TEST(BgpIncrementalTest, RecomputeFromRepairsStaleTableInPlace) {
  Rng rng(42);
  Topology topo = RandomTopology(rng);
  BgpSimulator bgp(topo);
  const PopIndex destination = static_cast<PopIndex>(topo.PopCount() - 1);
  RouteTable stale = bgp.RoutesTo(destination);  // converged copy

  // Take down the stale table's own first-hop link somewhere in the cone.
  const auto& links = topo.LinksOf(destination);
  ASSERT_FALSE(links.empty());
  const LinkId cut = links[0];
  topo.MutableLink(cut).up = false;

  const RepairStats stats = bgp.RecomputeFrom(stale, {cut});
  EXPECT_FALSE(stats.fell_back);
  EXPECT_GT(stats.pops_recomputed, 0u);
  EXPECT_LE(stats.rounds, topo.PopCount() + 2);
  BgpSimulator scratch(topo);
  const RouteTable& fresh = scratch.RoutesTo(destination);
  EXPECT_TRUE(SameRoutes(stale, fresh));
}

TEST(BgpIncrementalTest, RecomputeFromNoOpWhenLinkUnused) {
  // Flipping a link no cached route traverses must confirm convergence
  // after only the two endpoint re-evaluations.
  Topology topo;
  const auto city = topo.cities().Add({"X", {0, 0}, 0});
  const auto p = topo.AddPop(Asn{1}, city, AsRole::kTransit).value();
  const auto a = topo.AddPop(Asn{2}, city, AsRole::kAccess).value();
  const auto b = topo.AddPop(Asn{3}, city, AsRole::kAccess).value();
  ASSERT_TRUE(topo.AddLink(a, p, Relationship::kCustomerToProvider).ok());
  ASSERT_TRUE(topo.AddLink(b, p, Relationship::kCustomerToProvider).ok());
  const auto a_b = topo.AddLink(a, b, Relationship::kPeerToPeer).value();

  BgpSimulator bgp(topo);
  RouteTable table = bgp.RoutesTo(p);  // a and b route straight up to p
  topo.MutableLink(a_b).up = false;
  const RepairStats stats = bgp.RecomputeFrom(table, {a_b});
  EXPECT_FALSE(stats.changed);
  EXPECT_EQ(stats.pops_recomputed, 2u);  // just the endpoints
  EXPECT_EQ(stats.rounds, 1u);
}

// ---- Differential check mode ------------------------------------------------

TEST(BgpIncrementalTest, DifferentialCheckModeAcceptsRepairs) {
  BgpSimulator::SetDifferentialCheckForTest(1);
  Rng rng(7);
  Topology topo = RandomTopology(rng);
  BgpSimulator bgp(topo);
  bgp.WarmRoutes(AllPops(topo));
  PolicyState state;
  Rng script_rng(99);
  for (int step = 0; step < 15; ++step) {
    // Every repair re-verifies the full cache against scratch internally;
    // any divergence throws std::logic_error.
    ASSERT_NO_THROW(ApplyScriptedEvent(script_rng, topo, bgp, state));
  }
  BgpSimulator::SetDifferentialCheckForTest(-1);
}

// ---- Simulator-level event parity -------------------------------------------

TEST(BgpIncrementalTest, SimulatorEventsProduceScratchIdenticalRoutes) {
  // Drive all routing-relevant event types through
  // NetworkSimulator::ApplyNow and compare against cold convergence.
  Rng rng(3);
  Topology reference_topo = RandomTopology(rng);
  Topology topo = reference_topo;  // simulator takes ownership of a copy
  NetworkSimulator sim(std::move(topo));
  const auto destinations = AllPops(reference_topo);
  sim.WarmRoutes(destinations);

  const LinkId flap{0};
  NetworkEvent down;
  down.type = EventType::kLinkDown;
  down.link = flap;
  sim.ApplyNow(down);
  NetworkEvent pref;
  pref.type = EventType::kLocalPrefChange;
  pref.pop = sim.topology().GetLink(flap).a;
  pref.link = sim.topology().LinksOf(pref.pop)[0];
  pref.pref_delta = -150.0;
  sim.ApplyNow(pref);
  NetworkEvent up;
  up.type = EventType::kLinkUp;
  up.link = flap;
  sim.ApplyNow(up);
  sim.WarmRoutes(destinations);

  BgpSimulator scratch(sim.topology());
  scratch.SetLocalPrefOverride(pref.pop, *pref.link, pref.pref_delta);
  for (PopIndex destination : destinations) {
    auto incremental = sim.RouteBetween(0, destination);
    auto cold = scratch.Route(0, destination);
    ASSERT_EQ(incremental.ok(), cold.ok());
    if (incremental.ok()) {
      EXPECT_TRUE(incremental.value() == cold.value());
    }
  }
}

}  // namespace
}  // namespace sisyphus::netsim
