// Tests for the random Internet generator plus the Newey–West HAC
// standard errors and the Dataset-level IV wrapper (new API surface).
#include <gtest/gtest.h>

#include <cmath>

#include "causal/estimators.h"
#include "core/rng.h"
#include "netsim/scenario_random.h"
#include "stats/regression.h"

namespace sisyphus {
namespace {

// ---- Random Internet -----------------------------------------------------------

class RandomInternetTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomInternetTest, EveryAccessReachesEveryContent) {
  netsim::RandomInternetOptions options;
  options.seed = static_cast<std::uint64_t>(GetParam());
  options.access_count = 25;
  const auto world = netsim::BuildRandomInternet(options);
  auto& bgp = world.simulator->bgp();
  for (netsim::PopIndex content : world.content) {
    for (netsim::PopIndex access : world.access) {
      EXPECT_TRUE(bgp.Route(access, content).ok())
          << "access pop " << access << " cannot reach content " << content;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInternetTest, ::testing::Range(1, 6));

TEST(RandomInternetTest, DeterministicForSeed) {
  netsim::RandomInternetOptions options;
  options.seed = 9;
  const auto a = netsim::BuildRandomInternet(options);
  const auto b = netsim::BuildRandomInternet(options);
  EXPECT_EQ(a.simulator->topology().PopCount(),
            b.simulator->topology().PopCount());
  EXPECT_EQ(a.simulator->topology().LinkCount(),
            b.simulator->topology().LinkCount());
}

TEST(RandomInternetTest, RespectsCounts) {
  netsim::RandomInternetOptions options;
  options.tier1_count = 4;
  options.transit_count = 6;
  options.access_count = 10;
  options.content_count = 3;
  options.ixp_count = 2;
  const auto world = netsim::BuildRandomInternet(options);
  EXPECT_EQ(world.tier1.size(), 4u);
  EXPECT_EQ(world.transits.size(), 6u);
  EXPECT_EQ(world.access.size(), 10u);
  EXPECT_EQ(world.content.size(), 3u);
  EXPECT_EQ(world.ixps.size(), 2u);
  EXPECT_EQ(world.simulator->topology().PopCount(), 23u);
}

TEST(RandomInternetTest, SomeIxpPeeringWhenColocated) {
  // With high membership probability and one city, IXP links appear.
  netsim::RandomInternetOptions options;
  options.city_count = 1;
  options.ixp_count = 1;
  options.access_count = 20;
  options.ixp_membership_probability = 0.9;
  const auto world = netsim::BuildRandomInternet(options);
  const auto& topo = world.simulator->topology();
  std::size_t ixp_links = 0;
  for (core::LinkId::underlying_type i = 0; i < topo.LinkCount(); ++i) {
    if (topo.GetLink(core::LinkId{i}).ixp.has_value()) ++ixp_links;
  }
  EXPECT_GT(ixp_links, 5u);
}

// ---- Newey–West ------------------------------------------------------------------

TEST(NeweyWestTest, MatchesHc1WhenNoAutocorrelation) {
  core::Rng rng(1);
  const std::size_t n = 2000;
  stats::Matrix x(n, 1);
  stats::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Gaussian();
    y[i] = 2.0 * x(i, 0) + rng.Gaussian();
  }
  auto fit = stats::Ols(x, y);
  ASSERT_TRUE(fit.ok());
  auto nw = stats::NeweyWestErrors(x, fit.value(), 0);
  ASSERT_TRUE(nw.ok());
  // lags=0 Newey-West IS the HC0 sandwich ~ HC1 up to n/(n-p).
  EXPECT_NEAR(nw.value()[1], fit.value().robust_errors[1], 0.01);
}

TEST(NeweyWestTest, WidensUnderAutocorrelatedErrors) {
  // AR(1) errors with rho = 0.9: classical SEs are far too small; NW with
  // enough lags should be several times larger.
  core::Rng rng(2);
  const std::size_t n = 4000;
  stats::Matrix x(n, 1);
  stats::Vector y(n);
  double e = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Gaussian();
    e = 0.9 * e + rng.Gaussian(0.0, 0.4);
    y[i] = 1.0 * x(i, 0) + e;
  }
  auto fit = stats::Ols(x, y);
  ASSERT_TRUE(fit.ok());
  auto nw = stats::NeweyWestErrors(
      x, fit.value(), stats::NeweyWestDefaultLags(n) * 4);
  ASSERT_TRUE(nw.ok());
  // The INTERCEPT variance is what AR(1) noise inflates.
  EXPECT_GT(nw.value()[0], 2.0 * fit.value().standard_errors[0]);
}

TEST(NeweyWestTest, DefaultLagRule) {
  EXPECT_EQ(stats::NeweyWestDefaultLags(100), 4u);
  EXPECT_GT(stats::NeweyWestDefaultLags(10000), 6u);
}

TEST(NeweyWestTest, ValidationErrors) {
  core::Rng rng(3);
  stats::Matrix x(50, 1);
  stats::Vector y(50);
  for (std::size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.Gaussian();
    y[i] = x(i, 0);
  }
  auto fit = stats::Ols(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_FALSE(stats::NeweyWestErrors(x, fit.value(), 50).ok());  // lags >= n
  stats::Matrix wrong(40, 1);
  EXPECT_FALSE(stats::NeweyWestErrors(wrong, fit.value(), 2).ok());
}

// ---- Dataset-level IV wrapper -------------------------------------------------------

TEST(IvEstimateTest, RecoversEffectAndFlagsWeakInstruments) {
  core::Rng rng(4);
  const std::size_t n = 10000;
  std::vector<double> y(n), t(n), z(n), weak(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.Gaussian();
    z[i] = rng.Gaussian();
    weak[i] = rng.Gaussian();
    t[i] = z[i] + 0.005 * weak[i] + u + rng.Gaussian(0.0, 0.5);
    y[i] = 2.0 * t[i] + 2.0 * u + rng.Gaussian(0.0, 0.5);
  }
  causal::Dataset data;
  ASSERT_TRUE(data.AddColumn("Y", std::move(y)).ok());
  ASSERT_TRUE(data.AddColumn("T", std::move(t)).ok());
  ASSERT_TRUE(data.AddColumn("Z", std::move(z)).ok());
  ASSERT_TRUE(data.AddColumn("Weak", std::move(weak)).ok());

  auto strong = causal::InstrumentalVariableEstimate(data, "T", "Y", {"Z"});
  ASSERT_TRUE(strong.ok());
  EXPECT_NEAR(strong.value().effect, 2.0, 0.1);
  EXPECT_EQ(strong.value().method, "iv");

  auto weak_fit =
      causal::InstrumentalVariableEstimate(data, "T", "Y", {"Weak"});
  ASSERT_TRUE(weak_fit.ok());
  EXPECT_EQ(weak_fit.value().method.substr(0, 8), "iv[WEAK ");

  EXPECT_FALSE(
      causal::InstrumentalVariableEstimate(data, "T", "Y", {"nope"}).ok());
}

}  // namespace
}  // namespace sisyphus
