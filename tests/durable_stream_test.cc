// Durability properties of the streaming service (DESIGN.md §11), enforced
// in-process where a diff is debuggable:
//
//   * crash-at-every-step: stop after step k with no final snapshot (a
//     crash whose journal survived), resume, and the panel CSV, metrics
//     snapshot, and lineage ledger must be byte-identical to an
//     uninterrupted run — for every k, at 1 and 8 threads;
//   * a torn tail from a crash mid-journal-write is benign;
//   * a corrupt newest snapshot falls back to the previous one; when every
//     snapshot is corrupt the resume fails loudly;
//   * journal corruption before the tail fails loudly;
//   * the supervisor names the step whose ingest failed, and a resume
//     recovers that step from the journal;
//   * shed-on-overload and the pipelined queue preserve byte-identity;
//   * SIGTERM interrupts cleanly and the run resumes to the same bytes.
//
// The chaos ctest fixtures and the CI chaos-smoke job enforce the same
// properties on the shipped table1 binary across real process kills.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <string>

#include "core/parallel.h"
#include "core/rng.h"
#include "core/sim_time.h"
#include "durable/journal.h"
#include "durable/service.h"
#include "durable/snapshot.h"
#include "measure/export.h"
#include "measure/faults.h"
#include "measure/panel.h"
#include "measure/platform.h"
#include "netsim/scenario_za.h"
#include "obs/lineage.h"
#include "obs/metrics.h"

namespace sisyphus {
namespace {

namespace fs = std::filesystem;

struct Artifacts {
  std::string panel_csv;
  std::string metrics_json;
  std::string lineage_json;
};

// Two days at one-hour steps: 48 steps, small enough that crashing after
// every single step stays fast, large enough to cross the treatment time
// and several snapshot boundaries.
constexpr std::uint64_t kTotalSteps = 48;

netsim::ScenarioZaOptions SmallScenario() {
  netsim::ScenarioZaOptions options;
  options.donor_units = 6;
  options.treatment_time = core::SimTime::FromDays(1);
  options.horizon = core::SimTime::FromDays(2);
  return options;
}

measure::FaultPlan SmallPlan() {
  measure::FaultPlan plan;
  plan.seed = 42;
  plan.probe_loss_probability = 0.15;
  plan.duplicate_probability = 0.02;
  plan.corruption_probability = 0.01;
  plan.max_clock_skew = core::SimTime(3);
  return plan;
}

struct RunSpec {
  std::string dir;
  bool resume = false;
  std::size_t threads = 1;
  std::uint64_t stop_after = 0;
  std::uint64_t snapshot_every = 5;  ///< deliberately coprime with nothing
  std::uint64_t fsync_every = 3;
  std::uint64_t shed_max = 0;
  bool pipelined = false;
  std::function<void(std::uint64_t)> ingest_fault;
};

struct RunResult {
  bool ok = false;
  std::string error;
  durable::RunStats stats;
  Artifacts artifacts;  ///< filled only when the run completed
};

/// One durable campaign over a fresh platform + campaign, exactly as the
/// resume contract requires (identical reconstruction). Every obs global
/// is reset first; the run label is fixed so ledgers are comparable.
RunResult RunDurable(const RunSpec& spec) {
  core::ThreadPool::SetGlobalThreadCount(spec.threads);
  obs::Registry::Global().ResetAll();
  obs::Lineage::Global().Reset();
  obs::Lineage::Global().BeginRun("durable");

  const netsim::ScenarioZaOptions scenario_options = SmallScenario();
  netsim::ScenarioZa scenario = netsim::BuildScenarioZa(scenario_options);

  measure::PlatformOptions platform_options;
  platform_options.server = scenario.content_jnb;
  platform_options.step = core::SimTime::FromHours(1);
  measure::Platform platform(*scenario.simulator, platform_options);

  measure::VantageConfig vantage;
  vantage.baseline_tests_per_day = 10.0;
  vantage.user_tests_per_day = 4.0;
  for (const auto& unit : scenario.treated) {
    vantage.pop = unit.access_pop;
    platform.AddVantage(vantage);
  }
  for (netsim::PopIndex donor : scenario.donors) {
    vantage.pop = donor;
    platform.AddVantage(vantage);
  }

  const measure::FaultPlan plan = SmallPlan();
  measure::FaultInjector injector(plan);
  platform.SetFaultInjector(&injector);

  measure::PanelOptions panel_options;
  panel_options.bucket = core::SimTime::FromHours(6);
  panel_options.periods = static_cast<std::size_t>(
      scenario_options.horizon.minutes() / panel_options.bucket.minutes());

  measure::StreamingOptions streaming_options;
  streaming_options.panel = panel_options;
  measure::StreamingCampaign stream(platform_options.validation,
                                    streaming_options);

  durable::DurableOptions durable_options;
  durable_options.dir = spec.dir;
  durable_options.snapshot_every = spec.snapshot_every;
  durable_options.fsync_every = spec.fsync_every;
  durable_options.max_step_records = spec.shed_max;
  durable_options.pipelined = spec.pipelined;
  durable_options.queue_capacity = 2;
  durable_options.stop_after_steps = spec.stop_after;
  durable_options.ingest_fault = spec.ingest_fault;

  durable::DurableStreamingService service(platform, stream, durable_options);
  core::Rng rng(scenario_options.seed);
  const core::Result<durable::RunStats> run =
      spec.resume ? service.Resume(scenario_options.horizon, rng)
                  : service.Run(scenario_options.horizon, rng);

  RunResult result;
  result.ok = run.ok();
  if (!run.ok()) {
    result.error = run.error().message();
    return result;
  }
  result.stats = run.value();
  if (result.stats.outcome == durable::RunOutcome::kCompleted) {
    result.artifacts.panel_csv = measure::PanelToCsv(stream.FinalizePanel());
    result.artifacts.metrics_json = obs::Registry::Global().SnapshotJson();
    result.artifacts.lineage_json = obs::Lineage::Global().ToJson();
  }
  return result;
}

/// Fresh per-test durable directory.
std::string MakeDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

void FlipByteAt(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  ASSERT_TRUE(f.good()) << "offset " << offset << " past end of " << path;
  c = static_cast<char>(c ^ 0x5a);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

std::string NewestSnapshot(const std::string& dir) {
  const auto snaps = durable::ListSnapshots(dir);
  EXPECT_FALSE(snaps.empty());
  return snaps.empty() ? std::string() : snaps.back().path;
}

class DurableStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics_were_enabled_ = obs::Registry::enabled();
    lineage_was_enabled_ = obs::Lineage::enabled();
    obs::Registry::Enable(true);
    obs::Lineage::Enable(true);
  }

  void TearDown() override {
    obs::Registry::Global().ResetAll();
    obs::Lineage::Global().Reset();
    obs::Registry::Enable(metrics_were_enabled_);
    obs::Lineage::Enable(lineage_was_enabled_);
    core::ThreadPool::SetGlobalThreadCount(0);
    durable::ClearInterruptFlag();
  }

  /// The uninterrupted reference run (computed once per test that needs it).
  Artifacts Reference() {
    RunSpec spec;
    spec.dir = MakeDir("durable-reference");
    const RunResult ref = RunDurable(spec);
    EXPECT_TRUE(ref.ok) << ref.error;
    EXPECT_EQ(ref.stats.outcome, durable::RunOutcome::kCompleted);
    EXPECT_EQ(ref.stats.steps, kTotalSteps);
    EXPECT_EQ(ref.stats.journal_high_water, kTotalSteps);
    EXPECT_EQ(ref.stats.snapshot_seq, kTotalSteps);
    EXPECT_FALSE(ref.artifacts.panel_csv.empty());
    return ref.artifacts;
  }

  void ExpectIdentical(const Artifacts& got, const Artifacts& want,
                       const std::string& context) {
    EXPECT_EQ(got.panel_csv, want.panel_csv) << "panel diverged: " << context;
    EXPECT_EQ(got.metrics_json, want.metrics_json)
        << "metrics diverged: " << context;
    EXPECT_EQ(got.lineage_json, want.lineage_json)
        << "lineage diverged: " << context;
  }

 private:
  bool metrics_were_enabled_ = false;
  bool lineage_was_enabled_ = false;
};

// The wrapper must not perturb the campaign: a durable run produces the
// same artifacts as the plain streaming path.
TEST_F(DurableStreamTest, DurableRunMatchesPlainStreaming) {
  const Artifacts reference = Reference();

  core::ThreadPool::SetGlobalThreadCount(1);
  obs::Registry::Global().ResetAll();
  obs::Lineage::Global().Reset();
  obs::Lineage::Global().BeginRun("durable");

  const netsim::ScenarioZaOptions scenario_options = SmallScenario();
  netsim::ScenarioZa scenario = netsim::BuildScenarioZa(scenario_options);
  measure::PlatformOptions platform_options;
  platform_options.server = scenario.content_jnb;
  platform_options.step = core::SimTime::FromHours(1);
  measure::Platform platform(*scenario.simulator, platform_options);
  measure::VantageConfig vantage;
  vantage.baseline_tests_per_day = 10.0;
  vantage.user_tests_per_day = 4.0;
  for (const auto& unit : scenario.treated) {
    vantage.pop = unit.access_pop;
    platform.AddVantage(vantage);
  }
  for (netsim::PopIndex donor : scenario.donors) {
    vantage.pop = donor;
    platform.AddVantage(vantage);
  }
  const measure::FaultPlan plan = SmallPlan();
  measure::FaultInjector injector(plan);
  platform.SetFaultInjector(&injector);
  measure::PanelOptions panel_options;
  panel_options.bucket = core::SimTime::FromHours(6);
  panel_options.periods = static_cast<std::size_t>(
      scenario_options.horizon.minutes() / panel_options.bucket.minutes());
  measure::StreamingOptions streaming_options;
  streaming_options.panel = panel_options;
  measure::StreamingCampaign stream(platform_options.validation,
                                    streaming_options);
  core::Rng rng(scenario_options.seed);
  platform.RunStreaming(scenario_options.horizon, rng, stream);

  Artifacts plain;
  plain.panel_csv = measure::PanelToCsv(stream.FinalizePanel());
  plain.metrics_json = obs::Registry::Global().SnapshotJson();
  plain.lineage_json = obs::Lineage::Global().ToJson();
  ExpectIdentical(reference, plain, "durable wrapper vs plain streaming");
}

// The tentpole property: crash after EVERY step, resume, byte-identity —
// across thread counts, including a crash at thread count 1 resumed at 8.
TEST_F(DurableStreamTest, CrashAtEveryStepResumesByteIdentical) {
  const Artifacts reference = Reference();

  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    for (std::uint64_t k = 1; k < kTotalSteps; ++k) {
      const std::string dir = MakeDir("durable-crash");
      RunSpec crash;
      crash.dir = dir;
      crash.threads = threads;
      crash.stop_after = k;
      const RunResult stopped = RunDurable(crash);
      ASSERT_TRUE(stopped.ok) << stopped.error;
      ASSERT_EQ(stopped.stats.outcome, durable::RunOutcome::kStopped);
      ASSERT_EQ(stopped.stats.steps, k);

      RunSpec resume;
      resume.dir = dir;
      resume.resume = true;
      // Crash at `threads`, resume at the other thread count: durability
      // must compose with the parallel-ingest determinism guarantee.
      resume.threads = threads == 1 ? 8 : 1;
      const RunResult resumed = RunDurable(resume);
      ASSERT_TRUE(resumed.ok) << resumed.error;
      ASSERT_EQ(resumed.stats.outcome, durable::RunOutcome::kCompleted);
      EXPECT_TRUE(resumed.stats.resumed);
      EXPECT_EQ(resumed.stats.snapshot_seq, kTotalSteps);
      ExpectIdentical(resumed.artifacts, reference,
                      "crash after step " + std::to_string(k) + " at " +
                          std::to_string(threads) + " threads");
    }
  }
}

// A crash mid-journal-write leaves a torn final frame; recovery treats it
// as a benign tail, truncates it, and regenerates the step.
TEST_F(DurableStreamTest, TornJournalTailIsBenign) {
  const Artifacts reference = Reference();
  const std::string dir = MakeDir("durable-torn");

  RunSpec crash;
  crash.dir = dir;
  crash.stop_after = 7;
  ASSERT_TRUE(RunDurable(crash).ok);

  const std::string journal = dir + "/journal.bin";
  const std::uint64_t size = fs::file_size(journal);
  fs::resize_file(journal, size - 5);  // torn trailer on the last frame

  RunSpec resume;
  resume.dir = dir;
  resume.resume = true;
  const RunResult resumed = RunDurable(resume);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  ASSERT_EQ(resumed.stats.outcome, durable::RunOutcome::kCompleted);
  ExpectIdentical(resumed.artifacts, reference, "torn journal tail");
}

// A flipped byte in the newest snapshot must fail its checksum and fall
// back to the previous snapshot — same bytes, longer replay.
TEST_F(DurableStreamTest, CorruptNewestSnapshotFallsBack) {
  const Artifacts reference = Reference();
  const std::string dir = MakeDir("durable-snapfall");

  RunSpec crash;
  crash.dir = dir;
  crash.stop_after = 12;  // snapshots at 5 and 10
  ASSERT_TRUE(RunDurable(crash).ok);
  ASSERT_GE(durable::ListSnapshots(dir).size(), 2u);

  FlipByteAt(NewestSnapshot(dir), 20);

  RunSpec resume;
  resume.dir = dir;
  resume.resume = true;
  const RunResult resumed = RunDurable(resume);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  ASSERT_EQ(resumed.stats.outcome, durable::RunOutcome::kCompleted);
  ExpectIdentical(resumed.artifacts, reference, "corrupt newest snapshot");
}

TEST_F(DurableStreamTest, AllSnapshotsCorruptFailsLoudly) {
  const std::string dir = MakeDir("durable-snapdead");
  RunSpec crash;
  crash.dir = dir;
  crash.stop_after = 12;
  ASSERT_TRUE(RunDurable(crash).ok);

  for (const auto& snap : durable::ListSnapshots(dir)) {
    FlipByteAt(snap.path, 20);
  }

  RunSpec resume;
  resume.dir = dir;
  resume.resume = true;
  const RunResult resumed = RunDurable(resume);
  ASSERT_FALSE(resumed.ok);
  EXPECT_NE(resumed.error.find("no valid snapshot"), std::string::npos)
      << resumed.error;
}

// Damage before the journal's tail is corruption, not a torn write, and
// must never be silently replayed over.
TEST_F(DurableStreamTest, JournalCorruptionBeforeTailFailsLoudly) {
  const std::string dir = MakeDir("durable-jrnlbad");
  RunSpec crash;
  crash.dir = dir;
  crash.stop_after = 12;
  ASSERT_TRUE(RunDurable(crash).ok);

  // Offset 26 is inside the FIRST frame's payload — far from the tail.
  FlipByteAt(dir + "/journal.bin", 26);

  RunSpec resume;
  resume.dir = dir;
  resume.resume = true;
  const RunResult resumed = RunDurable(resume);
  ASSERT_FALSE(resumed.ok);
  EXPECT_NE(resumed.error.find("journal corrupt"), std::string::npos)
      << resumed.error;
}

// The supervisor: a failing ingest step surfaces as a deterministic error
// naming the step — serial and pipelined — and because the step was
// journaled before it failed, a resume recovers it.
TEST_F(DurableStreamTest, SupervisorNamesFailingStepAndResumeRecovers) {
  const Artifacts reference = Reference();

  for (bool pipelined : {false, true}) {
    const std::string dir = MakeDir("durable-supervise");
    RunSpec faulty;
    faulty.dir = dir;
    faulty.pipelined = pipelined;
    faulty.ingest_fault = [](std::uint64_t seq) {
      if (seq == 5) throw std::runtime_error("injected ingest fault");
    };
    const RunResult failed = RunDurable(faulty);
    ASSERT_FALSE(failed.ok) << (pipelined ? "pipelined" : "serial");
    EXPECT_NE(failed.error.find("failed at step 5"), std::string::npos)
        << failed.error;
    EXPECT_NE(failed.error.find("injected ingest fault"), std::string::npos)
        << failed.error;

    RunSpec resume;
    resume.dir = dir;
    resume.resume = true;
    const RunResult resumed = RunDurable(resume);
    ASSERT_TRUE(resumed.ok) << resumed.error;
    ASSERT_EQ(resumed.stats.outcome, durable::RunOutcome::kCompleted);
    ExpectIdentical(resumed.artifacts, reference,
                    std::string("resume after supervised failure, ") +
                        (pipelined ? "pipelined" : "serial"));
  }
}

// Shed-on-overload: deterministic, lineage-conserving (shed records get a
// terminal shed_overload stage and a matching counter), and byte-stable
// across crash/resume and thread counts.
TEST_F(DurableStreamTest, ShedOverloadIsDeterministicAcrossResume) {
  RunSpec shed_ref;
  shed_ref.dir = MakeDir("durable-shedref");
  shed_ref.shed_max = 3;
  const RunResult reference = RunDurable(shed_ref);
  ASSERT_TRUE(reference.ok) << reference.error;
  ASSERT_EQ(reference.stats.outcome, durable::RunOutcome::kCompleted);
  ASSERT_GT(reference.stats.shed_records, 0u);
  EXPECT_NE(
      reference.artifacts.metrics_json.find("measure.stream.shed_overload"),
      std::string::npos);
  EXPECT_NE(reference.artifacts.lineage_json.find("shed_overload"),
            std::string::npos);

  const std::string dir = MakeDir("durable-shedcrash");
  RunSpec crash;
  crash.dir = dir;
  crash.shed_max = 3;
  crash.stop_after = 20;
  crash.threads = 8;
  ASSERT_TRUE(RunDurable(crash).ok);

  RunSpec resume;
  resume.dir = dir;
  resume.resume = true;
  resume.shed_max = 3;
  resume.threads = 8;
  const RunResult resumed = RunDurable(resume);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  ASSERT_EQ(resumed.stats.outcome, durable::RunOutcome::kCompleted);
  ExpectIdentical(resumed.artifacts, reference.artifacts,
                  "shed crash/resume at 8 threads");
}

// Backpressure changes timing only: the pipelined bounded-queue path emits
// the same bytes as the serial path.
TEST_F(DurableStreamTest, PipelinedQueueMatchesSerial) {
  const Artifacts reference = Reference();
  RunSpec pipelined;
  pipelined.dir = MakeDir("durable-pipe");
  pipelined.pipelined = true;
  pipelined.threads = 8;
  const RunResult run = RunDurable(pipelined);
  ASSERT_TRUE(run.ok) << run.error;
  ASSERT_EQ(run.stats.outcome, durable::RunOutcome::kCompleted);
  ExpectIdentical(run.artifacts, reference, "pipelined vs serial");
}

// SIGTERM → clean interruption (journal flushed, final snapshot written),
// and the interrupted run resumes to the reference bytes.
TEST_F(DurableStreamTest, SigtermInterruptsCleanlyAndResumes) {
  const Artifacts reference = Reference();

  durable::InstallSignalHandlers();
  durable::ClearInterruptFlag();
  std::raise(SIGTERM);
  ASSERT_TRUE(durable::InterruptRequested());

  const std::string dir = MakeDir("durable-sigterm");
  RunSpec interrupted_spec;
  interrupted_spec.dir = dir;
  const RunResult interrupted = RunDurable(interrupted_spec);
  ASSERT_TRUE(interrupted.ok) << interrupted.error;
  ASSERT_EQ(interrupted.stats.outcome, durable::RunOutcome::kInterrupted);
  EXPECT_LT(interrupted.stats.steps, kTotalSteps);
  // The final snapshot made it down despite the interrupt.
  EXPECT_FALSE(durable::ListSnapshots(dir).empty());

  durable::ClearInterruptFlag();
  RunSpec resume;
  resume.dir = dir;
  resume.resume = true;
  const RunResult resumed = RunDurable(resume);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  ASSERT_EQ(resumed.stats.outcome, durable::RunOutcome::kCompleted);
  ExpectIdentical(resumed.artifacts, reference, "resume after SIGTERM");
}

// ---------------------------------------------------------------------------
// Journal scan unit properties: torn tail vs mid-file corruption vs gaps.

TEST(DurableJournalTest, ScanDistinguishesTornTailFromCorruption) {
  const std::string dir = MakeDir("durable-jscan");
  const std::string path = dir + "/journal.bin";

  durable::Journal journal;
  ASSERT_TRUE(journal.Open(path, 0, /*fsync_every=*/2));
  ASSERT_TRUE(journal.Append(1, "alpha"));
  ASSERT_TRUE(journal.Append(2, "bravo"));
  journal.Close();

  durable::JournalScan clean = durable::ScanJournal(path);
  ASSERT_EQ(clean.frames.size(), 2u);
  EXPECT_EQ(clean.frames[0].payload, "alpha");
  EXPECT_EQ(clean.frames[1].payload, "bravo");
  EXPECT_FALSE(clean.torn_tail);
  EXPECT_FALSE(clean.corrupt);
  EXPECT_EQ(clean.valid_bytes, fs::file_size(path));

  // A torn final frame (crash mid-append) is benign.
  ASSERT_TRUE(journal.Open(path, clean.valid_bytes, 2));
  ASSERT_TRUE(journal.AppendTorn(3, "charlie", 10));
  journal.Close();
  durable::JournalScan torn = durable::ScanJournal(path);
  EXPECT_EQ(torn.frames.size(), 2u);
  EXPECT_TRUE(torn.torn_tail);
  EXPECT_FALSE(torn.corrupt);
  EXPECT_EQ(torn.valid_bytes, clean.valid_bytes);

  // Reopening at valid_bytes truncates the torn tail and appends cleanly.
  ASSERT_TRUE(journal.Open(path, torn.valid_bytes, 2));
  ASSERT_TRUE(journal.Append(3, "charlie"));
  journal.Close();
  durable::JournalScan repaired = durable::ScanJournal(path);
  ASSERT_EQ(repaired.frames.size(), 3u);
  EXPECT_EQ(repaired.frames[2].payload, "charlie");
  EXPECT_FALSE(repaired.torn_tail);
  EXPECT_FALSE(repaired.corrupt);

  // A flipped byte in the FIRST frame (data follows it) is corruption.
  FlipByteAt(path, 26);
  durable::JournalScan corrupt = durable::ScanJournal(path);
  EXPECT_TRUE(corrupt.corrupt);
  EXPECT_FALSE(corrupt.diagnostic.empty());
}

TEST(DurableJournalTest, ScanRejectsSequenceGaps) {
  const std::string dir = MakeDir("durable-jgap");
  const std::string path = dir + "/journal.bin";
  durable::Journal journal;
  ASSERT_TRUE(journal.Open(path, 0, 1));
  ASSERT_TRUE(journal.Append(1, "alpha"));
  ASSERT_TRUE(journal.Append(3, "charlie"));  // gap: seq 2 missing
  journal.Close();
  const durable::JournalScan scan = durable::ScanJournal(path);
  // The bad frame is the final one, so the gap is treated as a torn tail
  // unless data follows it; either way the valid prefix stops at seq 1.
  ASSERT_EQ(scan.frames.size(), 1u);
  EXPECT_EQ(scan.frames[0].seq, 1u);
}

TEST(DurableJournalTest, ChecksumCoversSeqAndPayload) {
  EXPECT_NE(durable::FrameChecksum(1, "alpha"),
            durable::FrameChecksum(2, "alpha"));
  EXPECT_NE(durable::FrameChecksum(1, "alpha"),
            durable::FrameChecksum(1, "alphb"));
  EXPECT_EQ(durable::FrameChecksum(7, "payload"),
            durable::FrameChecksum(7, "payload"));
}

// ---------------------------------------------------------------------------
// Snapshot file unit properties.

TEST(DurableSnapshotTest, RoundTripAndCorruptionDetection) {
  const std::string dir = MakeDir("durable-snapunit");
  const std::string path = durable::SnapshotPath(dir, 42);

  ASSERT_TRUE(durable::WriteSnapshotFile(path, "snapshot payload"));
  durable::SnapshotRead read = durable::ReadSnapshotFile(path);
  ASSERT_TRUE(read.ok) << read.diagnostic;
  EXPECT_EQ(read.payload, "snapshot payload");

  const auto listed = durable::ListSnapshots(dir);
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].seq, 42u);

  FlipByteAt(path, 18);
  durable::SnapshotRead bad = durable::ReadSnapshotFile(path);
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.diagnostic.empty());
}

TEST(DurableSnapshotTest, PruneKeepsNewest) {
  const std::string dir = MakeDir("durable-snapprune");
  for (std::uint64_t seq : {std::uint64_t{1}, std::uint64_t{2},
                            std::uint64_t{3}, std::uint64_t{4}}) {
    ASSERT_TRUE(
        durable::WriteSnapshotFile(durable::SnapshotPath(dir, seq), "p"));
  }
  durable::PruneSnapshots(dir, 2);
  const auto listed = durable::ListSnapshots(dir);
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0].seq, 3u);
  EXPECT_EQ(listed[1].seq, 4u);
}

// ---------------------------------------------------------------------------
// Chaos spec grammar.

TEST(ChaosSpecTest, ParsesFullSpec) {
  const auto parsed = durable::ParseChaosSpec(
      "kill-after=7,mid-write,corrupt=snapshot,seed=3");
  ASSERT_TRUE(parsed.ok());
  const durable::ChaosOptions& chaos = parsed.value();
  EXPECT_TRUE(chaos.enabled);
  EXPECT_EQ(chaos.kill_after_steps, 7u);
  EXPECT_TRUE(chaos.mid_write);
  EXPECT_EQ(chaos.corrupt, durable::ChaosOptions::CorruptTarget::kSnapshot);
  EXPECT_EQ(chaos.seed, 3u);
}

TEST(ChaosSpecTest, ParsesJournalTargetAndSeedOnly) {
  const auto journal = durable::ParseChaosSpec("kill-after=2,corrupt=journal");
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ(journal.value().corrupt,
            durable::ChaosOptions::CorruptTarget::kJournal);

  // kill-after omitted: derived from the seed at run time.
  const auto seeded = durable::ParseChaosSpec("seed=11");
  ASSERT_TRUE(seeded.ok());
  EXPECT_TRUE(seeded.value().enabled);
  EXPECT_EQ(seeded.value().kill_after_steps, 0u);
  EXPECT_EQ(seeded.value().seed, 11u);
}

TEST(ChaosSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(durable::ParseChaosSpec("kill-after=x").ok());
  EXPECT_FALSE(durable::ParseChaosSpec("corrupt=panel").ok());
  EXPECT_FALSE(durable::ParseChaosSpec("bogus-knob=1").ok());
}

}  // namespace
}  // namespace sisyphus
