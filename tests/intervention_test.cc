// Tests for the exogenous-intervention API (§4 proposal 3).
#include <gtest/gtest.h>

#include "measure/intervention.h"

namespace sisyphus::measure {
namespace {

using core::Asn;
using netsim::AsRole;
using netsim::NetworkSimulator;
using netsim::Relationship;
using netsim::Topology;

struct Fixture {
  std::unique_ptr<NetworkSimulator> sim;
  netsim::PopIndex src = 0, dst = 0;
  core::LinkId via_a, via_b;
  Asn asn_a{20}, asn_b{30};

  Fixture() {
    Topology topo;
    const auto city = topo.cities().Add({"X", {0, 0}, 0});
    src = topo.AddPop(Asn{10}, city, AsRole::kAccess).value();
    const auto a = topo.AddPop(asn_a, city, AsRole::kTransit).value();
    const auto b = topo.AddPop(asn_b, city, AsRole::kTransit).value();
    dst = topo.AddPop(Asn{40}, city, AsRole::kContent).value();
    via_a =
        topo.AddLink(src, a, Relationship::kCustomerToProvider).value();
    via_b =
        topo.AddLink(src, b, Relationship::kCustomerToProvider).value();
    EXPECT_TRUE(topo.AddLink(dst, a, Relationship::kCustomerToProvider).ok());
    EXPECT_TRUE(topo.AddLink(dst, b, Relationship::kCustomerToProvider).ok());
    sim = std::make_unique<NetworkSimulator>(std::move(topo));
    sim->WatchPath(src, dst);
  }
};

TEST(InterventionTest, PoisonSteersPathAndAudits) {
  Fixture f;
  InterventionApi api(*f.sim);
  auto before = f.sim->RouteBetween(f.src, f.dst);
  ASSERT_TRUE(before.ok());
  const Asn initial = before.value().asn_path[1];
  const Asn other = initial == f.asn_a ? f.asn_b : f.asn_a;

  ASSERT_TRUE(api.PoisonAsns(f.dst, {initial},
                             "IV experiment: steer away from initial upstream")
                  .ok());
  auto after = f.sim->RouteBetween(f.src, f.dst);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().asn_path[1], other);

  // Route change logged as exogenous with the intervention description.
  ASSERT_EQ(f.sim->route_changes().size(), 1u);
  EXPECT_TRUE(f.sim->route_changes()[0].exogenous);
  EXPECT_NE(f.sim->route_changes()[0].trigger.find("poison"),
            std::string::npos);

  // Audit log captured the justification.
  ASSERT_EQ(api.audit_log().size(), 1u);
  EXPECT_NE(api.audit_log()[0].justification.find("IV experiment"),
            std::string::npos);

  ASSERT_TRUE(api.ClearPoison(f.dst, "experiment over").ok());
  auto restored = f.sim->RouteBetween(f.src, f.dst);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().asn_path[1], initial);
  EXPECT_EQ(api.audit_log().size(), 2u);
}

TEST(InterventionTest, LocalPrefSteersAndClears) {
  Fixture f;
  InterventionApi api(*f.sim);
  auto before = f.sim->RouteBetween(f.src, f.dst);
  ASSERT_TRUE(before.ok());
  const bool via_a_initially = before.value().asn_path[1] == f.asn_a;
  const core::LinkId boost = via_a_initially ? f.via_b : f.via_a;

  ASSERT_TRUE(api.SetLocalPref(f.src, boost, 100.0, "shift for experiment")
                  .ok());
  auto after = f.sim->RouteBetween(f.src, f.dst);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after.value().asn_path[1], before.value().asn_path[1]);

  ASSERT_TRUE(api.ClearLocalPref(f.src, boost, "restore").ok());
  auto restored = f.sim->RouteBetween(f.src, f.dst);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().asn_path[1], before.value().asn_path[1]);
}

TEST(InterventionTest, LinkDrainAndRestore) {
  Fixture f;
  InterventionApi api(*f.sim);
  auto before = f.sim->RouteBetween(f.src, f.dst);
  ASSERT_TRUE(before.ok());
  const core::LinkId used = before.value().links[0];
  ASSERT_TRUE(api.SetLinkState(used, false, "drain for maintenance").ok());
  auto after = f.sim->RouteBetween(f.src, f.dst);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after.value().links[0], used);
  ASSERT_TRUE(api.SetLinkState(used, true, "maintenance done").ok());
  EXPECT_EQ(api.audit_log().size(), 2u);
}

}  // namespace
}  // namespace sisyphus::measure
