// Tests for the advanced estimators: AIPW (double robustness) and the
// frontdoor (mediation) estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "causal/estimators.h"
#include "core/rng.h"
#include "stats/regression.h"
#include "stats/logistic.h"

namespace sisyphus::causal {
namespace {

Dataset MakeConfounded(std::size_t n, core::Rng& rng, double ate = 2.0) {
  std::vector<double> w(n), t(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = rng.Gaussian();
    t[i] = rng.Bernoulli(stats::Sigmoid(1.5 * w[i])) ? 1.0 : 0.0;
    y[i] = ate * t[i] + 3.0 * w[i] + rng.Gaussian(0.0, 0.5);
  }
  Dataset data;
  EXPECT_TRUE(data.AddColumn("W", std::move(w)).ok());
  EXPECT_TRUE(data.AddColumn("T", std::move(t)).ok());
  EXPECT_TRUE(data.AddColumn("Y", std::move(y)).ok());
  return data;
}

TEST(AugmentedIpwTest, RecoversAte) {
  core::Rng rng(1);
  const Dataset data = MakeConfounded(20000, rng);
  auto fit = AugmentedIpw(data, "T", "Y", {"W"});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().effect, 2.0, 0.1);
  EXPECT_EQ(fit.value().method, "augmented_ipw");
  EXPECT_LT(fit.value().standard_error, 0.1);
}

TEST(AugmentedIpwTest, RobustToWrongOutcomeModel) {
  // Outcome depends on W^2 (the linear outcome model is misspecified) but
  // the propensity model is right: AIPW stays consistent.
  core::Rng rng(2);
  const std::size_t n = 30000;
  std::vector<double> w(n), t(n), y(n), w_obs(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = rng.Gaussian();
    t[i] = rng.Bernoulli(stats::Sigmoid(1.2 * w[i])) ? 1.0 : 0.0;
    y[i] = 1.5 * t[i] + 2.0 * w[i] * w[i] + rng.Gaussian(0.0, 0.5);
    w_obs[i] = w[i];
  }
  Dataset data;
  ASSERT_TRUE(data.AddColumn("W", std::move(w_obs)).ok());
  ASSERT_TRUE(data.AddColumn("T", std::move(t)).ok());
  ASSERT_TRUE(data.AddColumn("Y", std::move(y)).ok());
  auto aipw = AugmentedIpw(data, "T", "Y", {"W"});
  ASSERT_TRUE(aipw.ok());
  EXPECT_NEAR(aipw.value().effect, 1.5, 0.25);
}

TEST(AugmentedIpwTest, AgreesWithIpwAndRegressionWhenBothRight) {
  core::Rng rng(3);
  const Dataset data = MakeConfounded(15000, rng);
  auto aipw = AugmentedIpw(data, "T", "Y", {"W"});
  auto ipw = InversePropensityWeighting(data, "T", "Y", {"W"});
  auto regression = RegressionAdjustment(data, "T", "Y", {"W"});
  ASSERT_TRUE(aipw.ok());
  ASSERT_TRUE(ipw.ok());
  ASSERT_TRUE(regression.ok());
  EXPECT_NEAR(aipw.value().effect, regression.value().effect, 0.15);
  EXPECT_NEAR(aipw.value().effect, ipw.value().effect, 0.3);
}

TEST(AugmentedIpwTest, RejectsNonBinaryTreatment) {
  Dataset data;
  ASSERT_TRUE(data.AddColumn("W", {1, 2, 3}).ok());
  ASSERT_TRUE(data.AddColumn("T", {0, 0.5, 1}).ok());
  ASSERT_TRUE(data.AddColumn("Y", {1, 2, 3}).ok());
  EXPECT_FALSE(AugmentedIpw(data, "T", "Y", {"W"}).ok());
}

// ---- Frontdoor --------------------------------------------------------------

/// Pearl's frontdoor structure: U (latent) -> T, U -> Y, T -> M -> Y.
/// True total effect of T on Y is alpha * beta.
Dataset MakeFrontdoorWorld(std::size_t n, double alpha, double beta,
                           core::Rng& rng) {
  std::vector<double> t(n), m(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.Gaussian();
    t[i] = 1.2 * u + rng.Gaussian(0.0, 0.8);
    m[i] = alpha * t[i] + rng.Gaussian(0.0, 0.5);
    y[i] = beta * m[i] + 2.5 * u + rng.Gaussian(0.0, 0.5);
  }
  Dataset data;
  EXPECT_TRUE(data.AddColumn("T", std::move(t)).ok());
  EXPECT_TRUE(data.AddColumn("M", std::move(m)).ok());
  EXPECT_TRUE(data.AddColumn("Y", std::move(y)).ok());
  return data;
}

TEST(FrontdoorTest, RecoversEffectUnderLatentConfounding) {
  core::Rng rng(4);
  const Dataset data = MakeFrontdoorWorld(30000, 0.8, 1.5, rng);
  auto fit = FrontdoorEstimate(data, "T", "M", "Y");
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().effect, 0.8 * 1.5, 0.08);
  EXPECT_GT(fit.value().standard_error, 0.0);
}

TEST(FrontdoorTest, DirectRegressionIsBiasedOnSameData) {
  core::Rng rng(5);
  const Dataset data = MakeFrontdoorWorld(30000, 0.8, 1.5, rng);
  // Naive y ~ t regression absorbs the latent confounder.
  stats::Matrix design(data.rows(), 1);
  const auto t = data.ColumnOrDie("T");
  for (std::size_t i = 0; i < data.rows(); ++i) design(i, 0) = t[i];
  auto naive = stats::Ols(design, data.ColumnOrDie("Y"));
  ASSERT_TRUE(naive.ok());
  EXPECT_GT(std::abs(naive.value().coefficients[1] - 1.2), 0.3);
}

TEST(FrontdoorTest, NullEffectThroughDeadMediator) {
  // alpha = 0: no causal channel, frontdoor must report ~0 even though
  // T and Y are strongly correlated via U.
  core::Rng rng(6);
  const Dataset data = MakeFrontdoorWorld(30000, 0.0, 1.5, rng);
  auto fit = FrontdoorEstimate(data, "T", "M", "Y");
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().effect, 0.0, 0.05);
}

TEST(FrontdoorTest, MissingColumnsFail) {
  Dataset data;
  ASSERT_TRUE(data.AddColumn("T", {1, 2, 3, 4}).ok());
  EXPECT_FALSE(FrontdoorEstimate(data, "T", "M", "Y").ok());
}

}  // namespace
}  // namespace sisyphus::causal
