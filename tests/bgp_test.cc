// Tests for the Gao–Rexford BGP simulator: preference ordering,
// valley-free export, withdrawal on failure, policy overrides, poisoning,
// and a valley-freeness property sweep over random topologies.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "netsim/bgp.h"

namespace sisyphus::netsim {
namespace {

using core::Asn;
using core::LinkId;

/// Diamond: src buys transit from P1 and P2; both reach dst. P1 path is
/// longer (extra hop via M).
struct Diamond {
  Topology topo;
  PopIndex src, p1, p2, m, dst;
  LinkId src_p1, src_p2, p1_m, m_dst, p2_dst;

  Diamond() {
    const auto city = topo.cities().Add({"X", {0, 0}, 0});
    src = topo.AddPop(Asn{10}, city, AsRole::kAccess).value();
    const auto city2 = topo.cities().Add({"Y", {1, 1}, 0});
    p1 = topo.AddPop(Asn{20}, city2, AsRole::kTransit).value();
    const auto city3 = topo.cities().Add({"Z", {2, 2}, 0});
    p2 = topo.AddPop(Asn{30}, city3, AsRole::kTransit).value();
    const auto city4 = topo.cities().Add({"W", {3, 3}, 0});
    m = topo.AddPop(Asn{40}, city4, AsRole::kTransit).value();
    const auto city5 = topo.cities().Add({"V", {4, 4}, 0});
    dst = topo.AddPop(Asn{50}, city5, AsRole::kContent).value();
    src_p1 =
        topo.AddLink(src, p1, Relationship::kCustomerToProvider).value();
    src_p2 =
        topo.AddLink(src, p2, Relationship::kCustomerToProvider).value();
    p1_m = topo.AddLink(p1, m, Relationship::kCustomerToProvider).value();
    m_dst = topo.AddLink(m, dst, Relationship::kPeerToPeer).value();
    p2_dst = topo.AddLink(p2, dst, Relationship::kPeerToPeer).value();
  }
};

TEST(BgpTest, SelfRouteAtDestination) {
  Diamond d;
  BgpSimulator bgp(d.topo);
  auto route = bgp.Route(d.dst, d.dst);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route.value().cls, RouteClass::kSelf);
  EXPECT_EQ(route.value().pop_path.size(), 1u);
}

TEST(BgpTest, ShorterAsPathPreferredAtEqualClass) {
  Diamond d;
  BgpSimulator bgp(d.topo);
  auto route = bgp.Route(d.src, d.dst);
  ASSERT_TRUE(route.ok());
  // Both providers give class kProvider; P2's path is shorter.
  EXPECT_EQ(route.value().asn_path,
            (std::vector<Asn>{Asn{10}, Asn{30}, Asn{50}}));
  EXPECT_EQ(route.value().cls, RouteClass::kProvider);
}

TEST(BgpTest, LocalPrefOverrideSteersPath) {
  Diamond d;
  BgpSimulator bgp(d.topo);
  bgp.SetLocalPrefOverride(d.src, d.src_p1, 50.0);
  auto route = bgp.Route(d.src, d.dst);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route.value().asn_path.size(), 4u);  // via P1 -> M now
  bgp.ClearLocalPrefOverride(d.src, d.src_p1);
  route = bgp.Route(d.src, d.dst);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route.value().asn_path.size(), 3u);  // back to P2
}

TEST(BgpTest, LinkFailureWithdrawsAndReroutes) {
  Diamond d;
  BgpSimulator bgp(d.topo);
  d.topo.MutableLink(d.src_p2).up = false;
  bgp.InvalidateCache();
  auto route = bgp.Route(d.src, d.dst);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route.value().asn_path.size(), 4u);  // forced via P1
  // Total partition: no route at all.
  d.topo.MutableLink(d.src_p1).up = false;
  bgp.InvalidateCache();
  auto gone = bgp.Route(d.src, d.dst);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.error().code(), core::ErrorCode::kNotFound);
}

TEST(BgpTest, CustomerRoutePreferredOverPeerAndProvider) {
  // dst is reachable from t via its customer c AND via a peer p: customer
  // must win even if longer.
  Topology topo;
  const auto city = topo.cities().Add({"X", {0, 0}, 0});
  const auto t = topo.AddPop(Asn{1}, city, AsRole::kTransit).value();
  const auto c = topo.AddPop(Asn{2}, city, AsRole::kAccess).value();
  const auto p = topo.AddPop(Asn{3}, city, AsRole::kTransit).value();
  const auto mid = topo.AddPop(Asn{4}, city, AsRole::kAccess).value();
  const auto dst = topo.AddPop(Asn{5}, city, AsRole::kContent).value();
  // t's customer c reaches dst through its own customer mid (2 extra ASNs).
  ASSERT_TRUE(topo.AddLink(c, t, Relationship::kCustomerToProvider).ok());
  ASSERT_TRUE(topo.AddLink(mid, c, Relationship::kCustomerToProvider).ok());
  ASSERT_TRUE(topo.AddLink(dst, mid, Relationship::kCustomerToProvider).ok());
  // t's peer p reaches dst directly (shorter).
  ASSERT_TRUE(topo.AddLink(t, p, Relationship::kPeerToPeer).ok());
  ASSERT_TRUE(topo.AddLink(dst, p, Relationship::kCustomerToProvider).ok());
  BgpSimulator bgp(topo);
  auto route = bgp.Route(t, dst);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route.value().cls, RouteClass::kCustomer);
  EXPECT_EQ(route.value().pop_path[1], c);
}

TEST(BgpTest, ValleyFreeExportPeerRouteNotGivenToPeer) {
  // a peers with b, b peers with dst. A valley-free b must NOT export its
  // peer route (to dst) to its other peer a.
  Topology topo;
  const auto city = topo.cities().Add({"X", {0, 0}, 0});
  const auto a = topo.AddPop(Asn{1}, city, AsRole::kAccess).value();
  const auto b = topo.AddPop(Asn{2}, city, AsRole::kTransit).value();
  const auto dst = topo.AddPop(Asn{3}, city, AsRole::kContent).value();
  ASSERT_TRUE(topo.AddLink(a, b, Relationship::kPeerToPeer).ok());
  ASSERT_TRUE(topo.AddLink(b, dst, Relationship::kPeerToPeer).ok());
  BgpSimulator bgp(topo);
  EXPECT_FALSE(bgp.Route(a, dst).ok());
}

TEST(BgpTest, ValleyFreeExportProviderRouteNotGivenToPeer) {
  // b buys from provider pr (which reaches dst); b must not export that
  // route to its peer a.
  Topology topo;
  const auto city = topo.cities().Add({"X", {0, 0}, 0});
  const auto a = topo.AddPop(Asn{1}, city, AsRole::kAccess).value();
  const auto b = topo.AddPop(Asn{2}, city, AsRole::kTransit).value();
  const auto pr = topo.AddPop(Asn{3}, city, AsRole::kTransit).value();
  const auto dst = topo.AddPop(Asn{4}, city, AsRole::kContent).value();
  ASSERT_TRUE(topo.AddLink(a, b, Relationship::kPeerToPeer).ok());
  ASSERT_TRUE(topo.AddLink(b, pr, Relationship::kCustomerToProvider).ok());
  ASSERT_TRUE(topo.AddLink(dst, pr, Relationship::kCustomerToProvider).ok());
  BgpSimulator bgp(topo);
  EXPECT_FALSE(bgp.Route(a, dst).ok());
  // But b itself reaches dst (via its provider).
  EXPECT_TRUE(bgp.Route(b, dst).ok());
}

TEST(BgpTest, IntraAsCarriesRouteAcrossCities) {
  // AS 10 has two PoPs; only the remote one has transit. The local PoP
  // must reach dst through the intra-AS backbone.
  Topology topo;
  const auto c1 = topo.cities().Add({"X", {0, 0}, 0});
  const auto c2 = topo.cities().Add({"Y", {1, 1}, 0});
  const auto local = topo.AddPop(Asn{10}, c1, AsRole::kAccess).value();
  const auto remote = topo.AddPop(Asn{10}, c2, AsRole::kAccess).value();
  const auto pr = topo.AddPop(Asn{20}, c2, AsRole::kTransit).value();
  const auto dst = topo.AddPop(Asn{30}, c2, AsRole::kContent).value();
  ASSERT_TRUE(topo.AddLink(local, remote, Relationship::kIntraAs).ok());
  ASSERT_TRUE(topo.AddLink(remote, pr, Relationship::kCustomerToProvider).ok());
  ASSERT_TRUE(topo.AddLink(dst, pr, Relationship::kCustomerToProvider).ok());
  BgpSimulator bgp(topo);
  auto route = bgp.Route(local, dst);
  ASSERT_TRUE(route.ok());
  // ASN path collapses the two AS-10 PoPs.
  EXPECT_EQ(route.value().asn_path,
            (std::vector<Asn>{Asn{10}, Asn{20}, Asn{30}}));
  EXPECT_EQ(route.value().pop_path.size(), 4u);
}

TEST(BgpTest, PoisoningAvoidsAsn) {
  Diamond d;
  BgpSimulator bgp(d.topo);
  // Baseline goes via P2 (ASN 30). Poison ASN 30 from dst.
  bgp.SetPoisonedAsns(d.dst, {Asn{30}});
  auto route = bgp.Route(d.src, d.dst);
  ASSERT_TRUE(route.ok());
  EXPECT_FALSE(route.value().CrossesAsn(Asn{30}));
  EXPECT_EQ(route.value().asn_path.size(), 4u);
  bgp.ClearPoisonedAsns(d.dst);
  route = bgp.Route(d.src, d.dst);
  ASSERT_TRUE(route.ok());
  EXPECT_TRUE(route.value().CrossesAsn(Asn{30}));
}

TEST(BgpTest, PoisoningEverythingDisconnects) {
  Diamond d;
  BgpSimulator bgp(d.topo);
  bgp.SetPoisonedAsns(d.dst, {Asn{20}, Asn{30}});
  EXPECT_FALSE(bgp.Route(d.src, d.dst).ok());
}

TEST(BgpTest, RouteLinksAlignedWithPath) {
  Diamond d;
  BgpSimulator bgp(d.topo);
  auto route = bgp.Route(d.src, d.dst);
  ASSERT_TRUE(route.ok());
  ASSERT_EQ(route.value().links.size(), route.value().pop_path.size() - 1);
  for (std::size_t i = 0; i < route.value().links.size(); ++i) {
    const Link& link = d.topo.GetLink(route.value().links[i]);
    const PopIndex from = route.value().pop_path[i];
    const PopIndex to = route.value().pop_path[i + 1];
    EXPECT_TRUE((link.a == from && link.b == to) ||
                (link.a == to && link.b == from));
  }
}

TEST(BgpTest, CrossesIxpDetectsTaggedLink) {
  Topology topo;
  const auto city = topo.cities().Add({"X", {0, 0}, 0});
  const auto a = topo.AddPop(Asn{1}, city, AsRole::kAccess).value();
  const auto b = topo.AddPop(Asn{2}, city, AsRole::kContent).value();
  const auto ixp = topo.AddIxp("IX", city);
  ASSERT_TRUE(topo.AddLink(a, b, Relationship::kPeerToPeer, ixp).ok());
  BgpSimulator bgp(topo);
  auto route = bgp.Route(a, b);
  ASSERT_TRUE(route.ok());
  EXPECT_TRUE(route.value().CrossesIxp(topo, ixp));
}

TEST(BgpTest, BasePreferenceOrdering) {
  EXPECT_GT(BasePreference(RouteClass::kSelf),
            BasePreference(RouteClass::kCustomer));
  EXPECT_GT(BasePreference(RouteClass::kCustomer),
            BasePreference(RouteClass::kPeer));
  EXPECT_GT(BasePreference(RouteClass::kPeer),
            BasePreference(RouteClass::kProvider));
}

// ---- Property sweep: valley-freeness on random topologies -------------------

class BgpValleyFreeTest : public ::testing::TestWithParam<int> {};

TEST_P(BgpValleyFreeTest, AllConvergedPathsAreValleyFree) {
  core::Rng rng(static_cast<std::uint64_t>(GetParam()));
  // Random 3-tier topology: 3 tier-1 (peered), 5 tier-2 (buy from 1-2
  // tier-1s, some peer), 10 access (buy from 1-2 tier-2s).
  Topology topo;
  const auto city = topo.cities().Add({"X", {0, 0}, 0});
  std::vector<PopIndex> tier1, tier2, access;
  std::uint32_t asn = 1;
  for (int i = 0; i < 3; ++i) {
    tier1.push_back(
        topo.AddPop(Asn{asn++}, city, AsRole::kTransit).value());
  }
  for (std::size_t i = 0; i < tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1.size(); ++j) {
      ASSERT_TRUE(
          topo.AddLink(tier1[i], tier1[j], Relationship::kPeerToPeer).ok());
    }
  }
  for (int i = 0; i < 5; ++i) {
    const auto node = topo.AddPop(Asn{asn++}, city, AsRole::kTransit).value();
    tier2.push_back(node);
    const auto up = static_cast<std::size_t>(rng.UniformInt(0, 2));
    ASSERT_TRUE(
        topo.AddLink(node, tier1[up], Relationship::kCustomerToProvider).ok());
    if (rng.Bernoulli(0.5)) {
      const auto up2 = (up + 1) % 3;
      ASSERT_TRUE(topo.AddLink(node, tier1[up2],
                               Relationship::kCustomerToProvider)
                      .ok());
    }
  }
  // Some tier-2 peering.
  for (std::size_t i = 0; i + 1 < tier2.size(); i += 2) {
    ASSERT_TRUE(
        topo.AddLink(tier2[i], tier2[i + 1], Relationship::kPeerToPeer).ok());
  }
  for (int i = 0; i < 10; ++i) {
    const auto node = topo.AddPop(Asn{asn++}, city, AsRole::kAccess).value();
    access.push_back(node);
    const auto up = static_cast<std::size_t>(rng.UniformInt(0, 4));
    ASSERT_TRUE(
        topo.AddLink(node, tier2[up], Relationship::kCustomerToProvider).ok());
    if (rng.Bernoulli(0.3)) {
      const auto up2 = (up + 2) % 5;
      ASSERT_TRUE(topo.AddLink(node, tier2[up2],
                               Relationship::kCustomerToProvider)
                      .ok());
    }
  }

  BgpSimulator bgp(topo);
  // Valley-free check: along any path, once we traverse a peer link or go
  // provider->customer (downhill), we must never go customer->provider
  // (uphill) or traverse another peer link.
  for (PopIndex dst : access) {
    const RouteTable& table = bgp.RoutesTo(dst);
    for (PopIndex src = 0; src < topo.PopCount(); ++src) {
      if (!table.best[src].has_value()) continue;
      const BgpRoute& route = *table.best[src];
      bool downhill = false;
      int peer_links = 0;
      for (std::size_t i = 0; i < route.links.size(); ++i) {
        const Link& link = topo.GetLink(route.links[i]);
        const PopIndex from = route.pop_path[i];
        if (link.relationship == Relationship::kIntraAs) continue;
        if (link.relationship == Relationship::kPeerToPeer) {
          ++peer_links;
          EXPECT_FALSE(downhill) << "peer link after downhill";
          downhill = true;  // after a peer link only downhill allowed
        } else if (topo.IsProviderSide(route.links[i], from)) {
          // provider -> customer: downhill.
          downhill = true;
        } else {
          // customer -> provider: uphill — only before any downhill move.
          EXPECT_FALSE(downhill)
              << "uphill after downhill in " << route.ToText(topo);
        }
      }
      EXPECT_LE(peer_links, 1) << route.ToText(topo);
      // Converged quickly.
      EXPECT_LE(table.sweeps, topo.PopCount() + 2);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BgpValleyFreeTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace sisyphus::netsim
