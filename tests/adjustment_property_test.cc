// Property tests for adjustment-set enumeration on random DAGs:
// every returned set satisfies the backdoor criterion, is inclusion-
// minimal, and the enumeration agrees with brute force.
#include <gtest/gtest.h>

#include "causal/identification.h"
#include "core/rng.h"

namespace sisyphus::causal {
namespace {

Dag RandomDag(std::size_t n, double p, core::Rng& rng,
              std::vector<NodeId>* nodes_out) {
  Dag dag;
  std::vector<NodeId> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(dag.AddNode("N" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(p)) {
        EXPECT_TRUE(dag.AddEdge(nodes[i], nodes[j]).ok());
      }
    }
  }
  *nodes_out = std::move(nodes);
  return dag;
}

/// Brute force: all subsets of eligible candidates that satisfy the
/// criterion, filtered to inclusion-minimal ones.
std::vector<NodeSet> BruteForceMinimalSets(const Dag& dag, NodeId t,
                                           NodeId y) {
  const NodeSet descendants = dag.Descendants(t);
  std::vector<NodeId> candidates;
  for (NodeId id : dag.ObservedNodes()) {
    if (id == t || id == y || descendants.Contains(id)) continue;
    candidates.push_back(id);
  }
  std::vector<NodeSet> valid;
  const std::size_t total = std::size_t{1} << candidates.size();
  for (std::size_t mask = 0; mask < total; ++mask) {
    NodeSet set;
    for (std::size_t b = 0; b < candidates.size(); ++b) {
      if (mask & (std::size_t{1} << b)) set.Insert(candidates[b]);
    }
    if (SatisfiesBackdoorCriterion(dag, t, y, set)) valid.push_back(set);
  }
  std::vector<NodeSet> minimal;
  for (const NodeSet& set : valid) {
    bool has_smaller = false;
    for (const NodeSet& other : valid) {
      if (other.size() >= set.size()) continue;
      bool subset = true;
      for (NodeId id : other) {
        if (!set.Contains(id)) {
          subset = false;
          break;
        }
      }
      // Proper subset that is also valid -> not minimal. (Equal-size
      // distinct sets are both minimal.)
      if (subset && other.size() < set.size()) {
        has_smaller = true;
        break;
      }
    }
    if (!has_smaller) minimal.push_back(set);
  }
  return minimal;
}

class AdjustmentPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AdjustmentPropertyTest, SetsAreValidMinimalAndComplete) {
  core::Rng rng(static_cast<std::uint64_t>(3000 + GetParam()));
  std::vector<NodeId> nodes;
  const Dag dag = RandomDag(6, 0.35, rng, &nodes);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      const NodeId t = nodes[i];
      const NodeId y = nodes[j];
      const auto sets =
          MinimalAdjustmentSets(dag, t, y, /*max_size=*/6);
      const auto brute = BruteForceMinimalSets(dag, t, y);
      // Same count and same sets (order-insensitive compare).
      ASSERT_EQ(sets.size(), brute.size())
          << "t=" << dag.Name(t) << " y=" << dag.Name(y);
      for (const NodeSet& set : sets) {
        EXPECT_TRUE(SatisfiesBackdoorCriterion(dag, t, y, set));
        bool found = false;
        for (const NodeSet& expected : brute) {
          if (expected == set) {
            found = true;
            break;
          }
        }
        EXPECT_TRUE(found) << "unexpected set for t=" << dag.Name(t)
                           << " y=" << dag.Name(y);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdjustmentPropertyTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace sisyphus::causal
