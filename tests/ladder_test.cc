// Tests for the ladder-of-causation facade: the three rungs give the
// textbook answers on the running example, and the confounding-bias
// arithmetic is consistent.
#include <gtest/gtest.h>

#include "causal/dag_parser.h"
#include "causal/ladder.h"

namespace sisyphus::causal {
namespace {

Scm RunningExampleScm() {
  auto dag = ParseDag("C -> R; C -> L; R -> L");
  EXPECT_TRUE(dag.ok());
  Scm scm(std::move(dag).value());
  EXPECT_TRUE(scm.SetLinear("C", 0.0, {}, 1.0).ok());
  EXPECT_TRUE(scm.SetLinear("R", 0.0, {{"C", 1.5}}, 0.5).ok());
  EXPECT_TRUE(scm.SetLinear("L", 10.0, {{"C", 3.0}, {"R", 2.0}}, 0.5).ok());
  return scm;
}

TEST(LadderTest, AssociationConditionsOnObservedBand) {
  Dataset data;
  ASSERT_TRUE(data.AddColumn("R", {0, 0, 1, 1}).ok());
  ASSERT_TRUE(data.AddColumn("L", {10, 12, 20, 22}).ok());
  auto high = Association(data, "R", "L", 1.0);
  auto low = Association(data, "R", "L", 0.0);
  ASSERT_TRUE(high.ok());
  ASSERT_TRUE(low.ok());
  EXPECT_DOUBLE_EQ(high.value(), 21.0);
  EXPECT_DOUBLE_EQ(low.value(), 11.0);
}

TEST(LadderTest, AssociationEmptyBandFails) {
  Dataset data;
  ASSERT_TRUE(data.AddColumn("R", {0, 1}).ok());
  ASSERT_TRUE(data.AddColumn("L", {1, 2}).ok());
  auto result = Association(data, "R", "L", 5.0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), core::ErrorCode::kPrecondition);
}

TEST(LadderTest, InterventionMatchesStructuralCoefficient) {
  const Scm scm = RunningExampleScm();
  core::Rng rng(1);
  auto high = InterventionalExpectation(scm, "R", "L", 1.0, 40000, rng);
  auto low = InterventionalExpectation(scm, "R", "L", 0.0, 40000, rng);
  ASSERT_TRUE(high.ok());
  ASSERT_TRUE(low.ok());
  EXPECT_NEAR(high.value() - low.value(), 2.0, 0.1);
}

TEST(LadderTest, CounterfactualOnConcreteUnit) {
  const Scm scm = RunningExampleScm();
  // Factual: C=1, R=2, L=18 (see scm_test). Had R been 0: L = 14.
  std::unordered_map<std::string, double> factual{
      {"C", 1.0}, {"R", 2.0}, {"L", 18.0}};
  auto result = CounterfactualOutcome(scm, factual, "R", "L", 0.0);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value(), 14.0, 1e-9);
}

TEST(LadderTest, ComparisonQuantifiesConfoundingBias) {
  const Scm scm = RunningExampleScm();
  core::Rng rng(2);
  const Dataset data = scm.Sample(60000, rng);
  auto comparison =
      CompareLadderRungs(scm, data, "R", "L", 1.0, -1.0, 0.25, 40000, rng);
  ASSERT_TRUE(comparison.ok());
  const auto& c = comparison.value();
  // Interventional contrast = 2 * (1 - (-1)) = 4.
  EXPECT_NEAR(c.interventional_contrast(), 4.0, 0.2);
  // Associational contrast is inflated by the C backdoor.
  EXPECT_GT(c.associational_contrast(), c.interventional_contrast() + 1.0);
  EXPECT_NEAR(c.confounding_bias(),
              c.associational_contrast() - c.interventional_contrast(),
              1e-12);
}

TEST(LadderTest, UnknownVariableNamesFail) {
  const Scm scm = RunningExampleScm();
  core::Rng rng(3);
  EXPECT_FALSE(
      InterventionalExpectation(scm, "Nope", "L", 1.0, 10, rng).ok());
  std::unordered_map<std::string, double> factual{{"C", 0.0}};
  EXPECT_FALSE(CounterfactualOutcome(scm, factual, "R", "Nope", 0.0).ok());
}

}  // namespace
}  // namespace sisyphus::causal
