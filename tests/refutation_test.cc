// Tests for the refutation battery: sound analyses pass all refuters;
// broken analyses (omitted confounder) fail the ones designed to catch
// them.
#include <gtest/gtest.h>

#include "causal/refutation.h"
#include "core/rng.h"
#include "stats/logistic.h"

namespace sisyphus::causal {
namespace {

/// Confounded DGP with true ATE 2; W fully observed.
Dataset MakeData(std::size_t n, core::Rng& rng) {
  std::vector<double> w(n), t(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = rng.Gaussian();
    t[i] = rng.Bernoulli(stats::Sigmoid(1.2 * w[i])) ? 1.0 : 0.0;
    y[i] = 2.0 * t[i] + 3.0 * w[i] + rng.Gaussian(0.0, 0.5);
  }
  Dataset data;
  EXPECT_TRUE(data.AddColumn("W", std::move(w)).ok());
  EXPECT_TRUE(data.AddColumn("T", std::move(t)).ok());
  EXPECT_TRUE(data.AddColumn("Y", std::move(y)).ok());
  return data;
}

TEST(RefutationTest, SoundAnalysisPassesAllRefuters) {
  core::Rng rng(1);
  const Dataset data = MakeData(8000, rng);
  auto battery = RunRefutationBattery(data, "T", "Y", {"W"},
                                      MakeRegressionAdjustmentEstimator(),
                                      rng);
  ASSERT_TRUE(battery.ok());
  ASSERT_EQ(battery.value().size(), 3u);
  for (const auto& result : battery.value()) {
    EXPECT_TRUE(result.passed) << result.refuter << ": " << result.detail;
    EXPECT_NEAR(result.original_effect, 2.0, 0.1);
  }
}

TEST(RefutationTest, PlaceboCollapsesEffectToZero) {
  core::Rng rng(2);
  const Dataset data = MakeData(8000, rng);
  auto result = PlaceboTreatmentRefuter(data, "T", "Y", {"W"},
                                        MakeRegressionAdjustmentEstimator(),
                                        rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().refuted_effect, 0.0,
              4.0 * result.value().spread + 0.05);
  EXPECT_NEAR(result.value().original_effect, 2.0, 0.1);
}

TEST(RefutationTest, SubsetRefuterStable) {
  core::Rng rng(3);
  const Dataset data = MakeData(8000, rng);
  auto result =
      SubsetRefuter(data, "T", "Y", {"W"},
                    MakeRegressionAdjustmentEstimator(), rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().passed) << result.value().detail;
  EXPECT_GT(result.value().spread, 0.0);
}

TEST(RefutationTest, RandomCommonCauseInsensitive) {
  core::Rng rng(4);
  const Dataset data = MakeData(8000, rng);
  auto result = RandomCommonCauseRefuter(
      data, "T", "Y", {"W"}, MakeRegressionAdjustmentEstimator(), rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().passed) << result.value().detail;
}

TEST(RefutationTest, WorksWithIpwAndStratification) {
  core::Rng rng(5);
  const Dataset data = MakeData(6000, rng);
  for (const auto& estimator :
       {MakeIpwEstimator(), MakeStratificationEstimator()}) {
    auto result =
        PlaceboTreatmentRefuter(data, "T", "Y", {"W"}, estimator, rng);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.value().passed) << result.value().detail;
  }
}

TEST(RefutationTest, PlaceboCatchesSpuriousPipeline) {
  // A deliberately broken "estimator" that always reports the naive
  // difference WITHOUT adjustment on confounded data: the placebo refuter
  // still passes (randomized placebo kills even naive effects), but the
  // subset refuter sees a stable nonzero, so we check the battery reports
  // the original (biased) effect faithfully for the analyst to see.
  core::Rng rng(6);
  const Dataset data = MakeData(6000, rng);
  EstimatorFn naive = [](const Dataset& d, std::string_view t,
                         std::string_view y,
                         const std::vector<std::string>&) {
    return NaiveDifference(d, t, y);
  };
  auto battery = RunRefutationBattery(data, "T", "Y", {"W"}, naive, rng);
  ASSERT_TRUE(battery.ok());
  EXPECT_GT(battery.value()[0].original_effect, 3.0);  // visibly biased
}

TEST(RefutationTest, BadSubsetFractionRejected) {
  core::Rng rng(7);
  const Dataset data = MakeData(200, rng);
  RefutationOptions options;
  options.subset_fraction = 0.0;
  auto result = SubsetRefuter(data, "T", "Y", {"W"},
                              MakeRegressionAdjustmentEstimator(), rng,
                              options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), core::ErrorCode::kInvalidArgument);
}

TEST(RefutationTest, MissingColumnPropagates) {
  core::Rng rng(8);
  const Dataset data = MakeData(200, rng);
  auto result = PlaceboTreatmentRefuter(
      data, "nope", "Y", {"W"}, MakeRegressionAdjustmentEstimator(), rng);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace sisyphus::causal
