// End-to-end integration: a compact version of the Table 1 pipeline
// (simulate -> measure -> detect -> panel -> robust synthetic control ->
// placebo), plus a cross-module check that a large injected effect is
// found and a placebo unit is not flagged.
#include <gtest/gtest.h>

#include "causal/placebo.h"
#include "measure/panel.h"
#include "measure/platform.h"
#include "netsim/scenario_za.h"

namespace sisyphus {
namespace {

using core::SimTime;

struct Pipeline {
  netsim::ScenarioZa scenario;
  std::unique_ptr<measure::Platform> platform;
  measure::Panel panel;

  explicit Pipeline(std::uint64_t seed) {
    netsim::ScenarioZaOptions options;
    options.donor_units = 16;
    options.treatment_time = SimTime::FromDays(14);
    options.horizon = SimTime::FromDays(28);
    options.seed = seed;
    scenario = netsim::BuildScenarioZa(options);

    measure::PlatformOptions platform_options;
    platform_options.server = scenario.content_jnb;
    platform_options.step = SimTime::FromHours(2);
    platform =
        std::make_unique<measure::Platform>(*scenario.simulator,
                                            platform_options);
    measure::VantageConfig vantage;
    vantage.baseline_tests_per_day = 12.0;
    for (const auto& unit : scenario.treated) {
      vantage.pop = unit.access_pop;
      platform->AddVantage(vantage);
    }
    for (netsim::PopIndex donor : scenario.donors) {
      vantage.pop = donor;
      platform->AddVantage(vantage);
    }
    core::Rng rng(seed);
    platform->Run(options.horizon, rng);

    measure::PanelOptions panel_options;
    panel_options.bucket = SimTime::FromHours(6);
    panel_options.periods = 4 * 28;
    panel = measure::BuildRttPanel(platform->store(), panel_options);
  }
};

TEST(IntegrationTest, FullPipelineProducesTable1Rows) {
  Pipeline pipe(7);
  EXPECT_GE(pipe.panel.units.size(),
            pipe.scenario.treated.size() + 10);

  std::size_t rows = 0;
  for (const auto& unit : pipe.scenario.treated) {
    // Detection: the unit starts crossing the IXP at the treatment time.
    const auto first = pipe.platform->store().FirstIxpCrossing(
        pipe.scenario.simulator->topology(), unit.name,
        pipe.scenario.napafrica_jnb);
    ASSERT_TRUE(first.has_value()) << unit.name;
    EXPECT_GE(*first, pipe.scenario.options.treatment_time);
    EXPECT_LT(*first,
              pipe.scenario.options.treatment_time + SimTime::FromDays(1));

    auto input = measure::MakeSyntheticControlInput(
        pipe.panel, unit.name, pipe.scenario.donor_names,
        pipe.scenario.options.treatment_time);
    ASSERT_TRUE(input.ok()) << unit.name;
    auto result = causal::RunPlaceboAnalysis(input.value());
    ASSERT_TRUE(result.ok()) << unit.name;
    // Effects are small (single-digit ms) — that's the paper's point.
    EXPECT_LT(std::abs(result.value().treated_fit.average_effect), 15.0);
    EXPECT_GT(result.value().p_value, 0.0);
    EXPECT_LE(result.value().p_value, 1.0);
    ++rows;
  }
  EXPECT_EQ(rows, 8u);
}

TEST(IntegrationTest, LargeInjectedEffectIsDetectedAndPlaceboIsNot) {
  Pipeline pipe(12);
  // Inject a large artificial post-treatment shift into one treated
  // unit's series and rerun: the estimator must find ~the injected size.
  const auto& unit = pipe.scenario.treated[2];  // 37053 / Cape Town
  auto input = measure::MakeSyntheticControlInput(
      pipe.panel, unit.name, pipe.scenario.donor_names,
      pipe.scenario.options.treatment_time);
  ASSERT_TRUE(input.ok());
  causal::SyntheticControlInput boosted = input.value();
  for (std::size_t t = boosted.pre_periods; t < boosted.treated.size(); ++t) {
    boosted.treated[t] += 25.0;
  }
  auto boosted_result = causal::RunPlaceboAnalysis(boosted);
  ASSERT_TRUE(boosted_result.ok());
  auto plain_result = causal::RunPlaceboAnalysis(input.value());
  ASSERT_TRUE(plain_result.ok());
  EXPECT_NEAR(boosted_result.value().treated_fit.average_effect -
                  plain_result.value().treated_fit.average_effect,
              25.0, 2.0);
  EXPECT_LT(boosted_result.value().p_value, 0.1);

  // A donor treated as placebo shows no effect of that size.
  auto placebo_input = measure::MakeSyntheticControlInput(
      pipe.panel, pipe.scenario.donor_names[0], pipe.scenario.donor_names,
      pipe.scenario.options.treatment_time);
  ASSERT_TRUE(placebo_input.ok());
  auto placebo_result = causal::RunPlaceboAnalysis(placebo_input.value());
  ASSERT_TRUE(placebo_result.ok());
  EXPECT_LT(std::abs(placebo_result.value().treated_fit.average_effect),
            10.0);
}

TEST(IntegrationTest, DeterministicForFixedSeed) {
  Pipeline a(3);
  Pipeline b(3);
  ASSERT_EQ(a.platform->store().size(), b.platform->store().size());
  ASSERT_EQ(a.panel.units.size(), b.panel.units.size());
  for (std::size_t u = 0; u < a.panel.units.size(); ++u) {
    ASSERT_EQ(a.panel.units[u].unit, b.panel.units[u].unit);
    for (std::size_t t = 0; t < a.panel.units[u].values.size(); ++t) {
      ASSERT_DOUBLE_EQ(a.panel.units[u].values[t], b.panel.units[u].values[t]);
    }
  }
}

TEST(IntegrationTest, IntentMixPresent) {
  netsim::ScenarioZaOptions options;
  options.donor_units = 4;
  options.treatment_time = SimTime::FromDays(3);
  options.horizon = SimTime::FromDays(6);
  auto scenario = netsim::BuildScenarioZa(options);
  measure::PlatformOptions platform_options;
  platform_options.server = scenario.content_jnb;
  platform_options.conditional_activation = true;
  measure::Platform platform(*scenario.simulator, platform_options);
  measure::VantageConfig vantage;
  vantage.baseline_tests_per_day = 10.0;
  vantage.user_tests_per_day = 6.0;
  for (const auto& unit : scenario.treated) {
    vantage.pop = unit.access_pop;
    platform.AddVantage(vantage);
  }
  core::Rng rng(5);
  platform.Run(options.horizon, rng);
  EXPECT_GT(platform.CountByIntent(measure::Intent::kBaseline), 0u);
  EXPECT_GT(platform.CountByIntent(measure::Intent::kUserInitiated), 0u);
  // The treatment-time route change triggers event bursts.
  EXPECT_GT(platform.CountByIntent(measure::Intent::kEventTriggered), 0u);
}

}  // namespace
}  // namespace sisyphus
