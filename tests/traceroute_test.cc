// Tests for traceroute simulation and IXP-crossing detection — the
// measurement primitive behind the paper's "does the path cross
// NAPAfrica" classification.
#include <gtest/gtest.h>

#include "measure/traceroute.h"
#include "netsim/bgp.h"

namespace sisyphus::measure {
namespace {

using core::Asn;
using netsim::AsRole;
using netsim::Relationship;
using netsim::Topology;

/// a -- b (transit) -- c, plus a peering a -- c across an IXP (down by
/// default).
struct Fixture {
  Topology topo;
  netsim::PopIndex a = 0, b = 0, c = 0;
  core::LinkId transit_ab, transit_bc, peering_ac;
  core::IxpId ixp;

  Fixture() {
    const auto city = topo.cities().Add({"X", {0, 0}, 0});
    a = topo.AddPop(Asn{1}, city, AsRole::kAccess).value();
    b = topo.AddPop(Asn{2}, city, AsRole::kTransit).value();
    c = topo.AddPop(Asn{3}, city, AsRole::kContent).value();
    ixp = topo.AddIxp("IX", city);
    transit_ab =
        topo.AddLink(a, b, Relationship::kCustomerToProvider).value();
    transit_bc =
        topo.AddLink(c, b, Relationship::kCustomerToProvider).value();
    peering_ac =
        topo.AddLink(a, c, Relationship::kPeerToPeer, ixp).value();
    topo.MutableLink(peering_ac).up = false;
  }
};

TEST(TracerouteTest, HopsFollowTransitPath) {
  Fixture f;
  netsim::BgpSimulator bgp(f.topo);
  auto route = bgp.Route(f.a, f.c);
  ASSERT_TRUE(route.ok());
  const Traceroute tr = SimulateTraceroute(f.topo, route.value());
  ASSERT_EQ(tr.hops.size(), 3u);
  EXPECT_EQ(tr.hops[0].address, f.topo.RouterAddress(f.a));
  EXPECT_EQ(tr.hops[1].address, f.topo.RouterAddress(f.b));
  EXPECT_EQ(tr.hops[2].address, f.topo.RouterAddress(f.c));
  EXPECT_EQ(tr.hops[1].asn, Asn{2});
  EXPECT_TRUE(DetectIxpCrossings(f.topo, tr).empty());
  EXPECT_FALSE(CrossesIxp(f.topo, tr, f.ixp));
}

TEST(TracerouteTest, IxpLanAddressAppearsWhenPeeringActive) {
  Fixture f;
  f.topo.MutableLink(f.peering_ac).up = true;
  netsim::BgpSimulator bgp(f.topo);
  auto route = bgp.Route(f.a, f.c);
  ASSERT_TRUE(route.ok());
  // Peer route beats provider: direct a -> c across the IXP.
  const Traceroute tr = SimulateTraceroute(f.topo, route.value());
  ASSERT_EQ(tr.hops.size(), 2u);
  // The far-side hop answers from the IXP LAN.
  EXPECT_EQ(tr.hops[1].address, f.topo.IxpLanAddress(f.ixp, f.c));
  const auto crossings = DetectIxpCrossings(f.topo, tr);
  ASSERT_EQ(crossings.size(), 1u);
  EXPECT_EQ(crossings[0], f.ixp);
  EXPECT_TRUE(CrossesIxp(f.topo, tr, f.ixp));
}

TEST(TracerouteTest, TextRendering) {
  Fixture f;
  netsim::BgpSimulator bgp(f.topo);
  auto route = bgp.Route(f.a, f.c);
  ASSERT_TRUE(route.ok());
  const Traceroute tr = SimulateTraceroute(f.topo, route.value());
  EXPECT_EQ(tr.ToText(), "10.0.0.1 10.0.1.1 10.0.2.1");
}

TEST(TracerouteTest, SelfRouteSingleHop) {
  Fixture f;
  netsim::BgpSimulator bgp(f.topo);
  auto route = bgp.Route(f.c, f.c);
  ASSERT_TRUE(route.ok());
  const Traceroute tr = SimulateTraceroute(f.topo, route.value());
  ASSERT_EQ(tr.hops.size(), 1u);
  EXPECT_EQ(tr.hops[0].pop, f.c);
}

TEST(TracerouteTest, DetectionDeduplicatesRepeatedLan) {
  // Two IXP-tagged links on one path: detection reports the IXP once.
  Topology topo;
  const auto city = topo.cities().Add({"X", {0, 0}, 0});
  const auto a = topo.AddPop(Asn{1}, city, AsRole::kAccess).value();
  const auto b = topo.AddPop(Asn{2}, city, AsRole::kTransit).value();
  const auto c = topo.AddPop(Asn{3}, city, AsRole::kContent).value();
  const auto ixp = topo.AddIxp("IX", city);
  ASSERT_TRUE(topo.AddLink(a, b, Relationship::kPeerToPeer, ixp).ok());
  ASSERT_TRUE(topo.AddLink(b, c, Relationship::kPeerToPeer, ixp).ok());
  netsim::BgpSimulator bgp(topo);
  // b reaches c via peer; a cannot reach c (valley-free) — use a -> b
  // and b -> c traceroutes separately, then a synthetic combined one.
  auto route_ab = bgp.Route(a, b);
  ASSERT_TRUE(route_ab.ok());
  auto route_bc = bgp.Route(b, c);
  ASSERT_TRUE(route_bc.ok());
  Traceroute combined = SimulateTraceroute(topo, route_ab.value());
  const Traceroute second = SimulateTraceroute(topo, route_bc.value());
  combined.hops.insert(combined.hops.end(), second.hops.begin() + 1,
                       second.hops.end());
  EXPECT_EQ(DetectIxpCrossings(topo, combined).size(), 1u);
}

}  // namespace
}  // namespace sisyphus::measure
