// Tests for geography and propagation delay.
#include <gtest/gtest.h>

#include <cmath>

#include "netsim/geo.h"

namespace sisyphus::netsim {
namespace {

TEST(HaversineTest, ZeroDistanceForSamePoint) {
  const Coordinates jnb{-26.20, 28.04};
  EXPECT_DOUBLE_EQ(HaversineKm(jnb, jnb), 0.0);
}

TEST(HaversineTest, KnownCityPairs) {
  const Coordinates jnb{-26.20, 28.04};
  const Coordinates cpt{-33.92, 18.42};
  const Coordinates lon{51.51, -0.13};
  // JNB - CPT is ~1260 km great circle.
  EXPECT_NEAR(HaversineKm(jnb, cpt), 1260.0, 40.0);
  // JNB - London ~9070 km.
  EXPECT_NEAR(HaversineKm(jnb, lon), 9070.0, 150.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(HaversineKm(jnb, cpt), HaversineKm(cpt, jnb));
}

TEST(HaversineTest, AntipodalCapped) {
  const Coordinates a{0.0, 0.0};
  const Coordinates b{0.0, 180.0};
  EXPECT_NEAR(HaversineKm(a, b), 6371.0 * M_PI, 10.0);
}

TEST(PropagationDelayTest, FiberSpeedAndStretch) {
  // 204 km/ms: 2040 km at stretch 1.0 -> 10 ms.
  EXPECT_NEAR(PropagationDelayMs(2040.0, 1.0), 10.0, 1e-9);
  // Default stretch 1.6 inflates it.
  EXPECT_NEAR(PropagationDelayMs(2040.0), 16.0, 1e-9);
  EXPECT_DOUBLE_EQ(PropagationDelayMs(0.0), 0.0);
}

TEST(PropagationDelayTest, PreconditionsEnforced) {
  EXPECT_THROW(PropagationDelayMs(-1.0), std::logic_error);
  EXPECT_THROW(PropagationDelayMs(10.0, 0.5), std::logic_error);
}

TEST(CityRegistryTest, AddIsIdempotentByName) {
  CityRegistry registry;
  const auto a = registry.Add({"Durban", {-29.86, 31.02}, 2.0});
  const auto b = registry.Add({"Durban", {-29.86, 31.02}, 2.0});
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(CityRegistryTest, FindAndGet) {
  CityRegistry registry;
  registry.Add({"Polokwane", {-23.90, 29.45}, 2.0});
  auto id = registry.Find("Polokwane");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(registry.Get(id.value()).name, "Polokwane");
  EXPECT_DOUBLE_EQ(registry.Get(id.value()).utc_offset_hours, 2.0);
  EXPECT_FALSE(registry.Find("Atlantis").ok());
}

TEST(CityRegistryTest, DistanceBetweenCities) {
  CityRegistry registry;
  const auto jnb = registry.Add({"Johannesburg", {-26.20, 28.04}, 2.0});
  const auto dur = registry.Add({"Durban", {-29.86, 31.02}, 2.0});
  EXPECT_NEAR(registry.DistanceKm(jnb, dur), 500.0, 30.0);
}

}  // namespace
}  // namespace sisyphus::netsim
