// Tests for the diurnal traffic model and the latency model.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "netsim/latency.h"

namespace sisyphus::netsim {
namespace {

using core::Asn;
using core::SimTime;

TEST(DiurnalTest, DemandBoundedAndPeaksInEvening) {
  double peak_value = 0.0, peak_hour = 0.0;
  for (double h = 0.0; h < 24.0; h += 0.25) {
    const double demand = DiurnalDemand(h);
    EXPECT_GE(demand, 0.0);
    EXPECT_LE(demand, 1.0);
    if (demand > peak_value) {
      peak_value = demand;
      peak_hour = h;
    }
  }
  EXPECT_NEAR(peak_hour, 20.5, 1.0);
  // Trough in the small hours.
  EXPECT_LT(DiurnalDemand(4.0), 0.15);
}

TEST(DiurnalTest, ProfileShiftsWithTimeZone) {
  DiurnalProfile utc{0.3, 0.4, 0.0, 0.0};
  DiurnalProfile plus2{0.3, 0.4, 2.0, 0.0};
  // At 18:30 UTC, the +2 profile is at its local 20:30 peak.
  const SimTime t = SimTime::FromHours(18.5);
  EXPECT_GT(plus2.MeanUtilization(t), utc.MeanUtilization(t));
}

TEST(DiurnalTest, UtilizationClampedAndNoisy) {
  DiurnalProfile hot{0.9, 0.5, 0.0, 0.05};
  core::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const double u = hot.Utilization(SimTime::FromHours(20.5), rng);
    EXPECT_LE(u, 0.97);
    EXPECT_GE(u, 0.0);
  }
  // Noise-free accessor is deterministic.
  EXPECT_DOUBLE_EQ(hot.MeanUtilization(SimTime::FromHours(3.0)),
                   hot.MeanUtilization(SimTime::FromHours(3.0)));
}

struct LatencyFixture {
  Topology topo;
  PopIndex a, b, c;
  core::LinkId ab, bc;

  LatencyFixture() {
    const auto x = topo.cities().Add({"X", {0, 0}, 0});
    const auto y = topo.cities().Add({"Y", {0, 5}, 0});
    a = topo.AddPop(Asn{1}, x, AsRole::kAccess).value();
    b = topo.AddPop(Asn{2}, y, AsRole::kTransit).value();
    c = topo.AddPop(Asn{3}, y, AsRole::kContent).value();
    ab = topo.AddLink(a, b, Relationship::kCustomerToProvider, std::nullopt,
                      3.0)
             .value();
    bc = topo.AddLink(b, c, Relationship::kPeerToPeer, std::nullopt, 0.5)
             .value();
  }
};

TEST(LatencyTest, LinkDelayIsPropagationPlusQueueing) {
  LatencyFixture f;
  LatencyModel model(f.topo);
  // At the 04:00 trough utilization is near base (0.3): queue small.
  const double trough = model.LinkDelayMs(f.ab, SimTime::FromHours(4.0));
  EXPECT_GT(trough, 3.0);
  EXPECT_LT(trough, 3.8);
  // At the evening peak the queue term grows.
  const double peak = model.LinkDelayMs(f.ab, SimTime::FromHours(20.5));
  EXPECT_GT(peak, trough + 0.2);
}

TEST(LatencyTest, PathRttIsTwiceOneWaySum) {
  LatencyFixture f;
  LatencyModel model(f.topo);
  BgpSimulator bgp(f.topo);
  auto route = bgp.Route(f.a, f.c);
  ASSERT_TRUE(route.ok());
  const SimTime t = SimTime::FromHours(4.0);
  const double rtt = model.PathRttMs(route.value(), t);
  const double expected =
      2.0 * (model.LinkDelayMs(f.ab, t) + model.LinkDelayMs(f.bc, t));
  EXPECT_DOUBLE_EQ(rtt, expected);
  EXPECT_GT(rtt, 7.0);  // 2 * (3 + 0.5) propagation alone
}

TEST(LatencyTest, ShocksRaiseUtilizationInWindowOnly) {
  LatencyFixture f;
  LatencyModel model(f.topo);
  const SimTime before = SimTime::FromHours(3.0);
  const SimTime during = SimTime::FromHours(5.0);
  const SimTime after = SimTime::FromHours(7.0);
  const double baseline = model.LinkUtilization(f.ab, during);
  model.AddUtilizationShock(f.ab, SimTime::FromHours(4.0),
                            SimTime::FromHours(6.0), 0.3);
  EXPECT_NEAR(model.LinkUtilization(f.ab, during), baseline + 0.3, 1e-9);
  EXPECT_NEAR(model.LinkUtilization(f.ab, before),
              model.LinkUtilization(f.ab, after), 0.05);
  model.ClearShocks();
  EXPECT_NEAR(model.LinkUtilization(f.ab, during), baseline, 1e-9);
}

TEST(LatencyTest, ShockOnOtherLinkDoesNotLeak) {
  LatencyFixture f;
  LatencyModel model(f.topo);
  const SimTime t = SimTime::FromHours(5.0);
  const double baseline = model.LinkUtilization(f.bc, t);
  model.AddUtilizationShock(f.ab, SimTime(0), SimTime::FromHours(10.0), 0.4);
  EXPECT_DOUBLE_EQ(model.LinkUtilization(f.bc, t), baseline);
}

TEST(LatencyTest, UtilizationCappedUnderExtremeShock) {
  LatencyFixture f;
  LatencyModel model(f.topo);
  model.AddUtilizationShock(f.ab, SimTime(0), SimTime::FromHours(24.0), 5.0);
  EXPECT_LE(model.LinkUtilization(f.ab, SimTime::FromHours(12.0)), 0.97);
  // Queue delay capped too.
  const double delay = model.LinkDelayMs(f.ab, SimTime::FromHours(12.0));
  EXPECT_LE(delay, 3.0 + model.options().max_queue_ms +
                       model.options().per_hop_ms + 1e-9);
}

TEST(LatencyTest, SampleJitterIsMultiplicativeAndCentered) {
  LatencyFixture f;
  LatencyModel model(f.topo);
  BgpSimulator bgp(f.topo);
  auto route = bgp.Route(f.a, f.c);
  ASSERT_TRUE(route.ok());
  core::Rng rng(3);
  const SimTime t = SimTime::FromHours(12.0);
  const double mean_rtt = model.PathRttMs(route.value(), t);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double sample = model.SampleRttMs(route.value(), t, rng);
    EXPECT_GT(sample, 0.0);
    sum += sample;
  }
  // Lognormal(0, 0.04): mean ~ exp(0.0008) ~ 1.0008.
  EXPECT_NEAR(sum / n, mean_rtt, mean_rtt * 0.01);
}

}  // namespace
}  // namespace sisyphus::netsim
