// Tests for obs::Registry — counter/gauge/histogram semantics, the
// disabled fast path, idempotent registration, and snapshot determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/json.h"
#include "obs/metrics.h"

namespace sisyphus::obs {
namespace {

/// Every test runs against the global registry (that is what the macros
/// use), so reset state around each one.
class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::Enable(true);
    Registry::Global().ResetAll();
  }
  void TearDown() override {
    Registry::Global().ResetAll();
    Registry::Enable(false);
  }
};

TEST_F(RegistryTest, CounterAccumulates) {
  Counter* counter = Registry::Global().GetCounter("test.counter.a");
  counter->Add();
  counter->Add(41);
  EXPECT_EQ(counter->value(), 42u);
  EXPECT_EQ(Registry::Global().CounterValue("test.counter.a"), 42u);
  EXPECT_EQ(Registry::Global().CounterValue("test.counter.absent"), 0u);
}

TEST_F(RegistryTest, RegistrationIsIdempotentWithStablePointers) {
  Counter* first = Registry::Global().GetCounter("test.counter.same");
  first->Add(5);
  Counter* second = Registry::Global().GetCounter("test.counter.same");
  EXPECT_EQ(first, second);
  EXPECT_EQ(second->value(), 5u);
}

TEST_F(RegistryTest, GaugeKeepsLastValue) {
  Gauge* gauge = Registry::Global().GetGauge("test.gauge.depth");
  gauge->Set(3.0);
  gauge->Set(7.5);
  EXPECT_DOUBLE_EQ(gauge->value(), 7.5);
}

TEST_F(RegistryTest, HistogramBucketsByUpperBound) {
  Histogram* histogram =
      Registry::Global().GetHistogram("test.hist.latency", {1.0, 10.0, 100.0});
  histogram->Observe(0.5);    // <= 1
  histogram->Observe(1.0);    // <= 1 (inclusive upper bound)
  histogram->Observe(5.0);    // <= 10
  histogram->Observe(1000.0); // overflow
  histogram->Observe(std::nan(""));  // dropped
  ASSERT_EQ(histogram->bucket_counts().size(), 4u);
  EXPECT_EQ(histogram->bucket_counts()[0], 2u);
  EXPECT_EQ(histogram->bucket_counts()[1], 1u);
  EXPECT_EQ(histogram->bucket_counts()[2], 0u);
  EXPECT_EQ(histogram->bucket_counts()[3], 1u);
  EXPECT_EQ(histogram->count(), 4u);
  EXPECT_DOUBLE_EQ(histogram->sum(), 1006.5);
}

// Quantiles interpolate linearly inside the bucket holding the q-th
// observation; a pure function of the bucket counts, so identical across
// thread counts and kill/resume.
TEST_F(RegistryTest, HistogramQuantilesInterpolateWithinBuckets) {
  Histogram* histogram =
      Registry::Global().GetHistogram("test.hist.quantile", {10.0, 20.0, 40.0});
  EXPECT_DOUBLE_EQ(histogram->Quantile(0.5), 0.0);  // empty

  for (int i = 0; i < 10; ++i) histogram->Observe(5.0);   // bucket [0, 10]
  EXPECT_DOUBLE_EQ(histogram->Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(histogram->Quantile(1.0), 10.0);

  for (int i = 0; i < 10; ++i) histogram->Observe(15.0);  // bucket (10, 20]
  EXPECT_DOUBLE_EQ(histogram->Quantile(0.5), 10.0);   // boundary
  EXPECT_DOUBLE_EQ(histogram->Quantile(0.75), 15.0);  // mid second bucket

  // Overflow observations clamp to the last bound rather than invent an
  // upper edge.
  for (int i = 0; i < 5; ++i) histogram->Observe(1000.0);
  EXPECT_DOUBLE_EQ(histogram->Quantile(0.99), 40.0);
  EXPECT_DOUBLE_EQ(histogram->Quantile(0.0), 0.0);
}

// The snapshot surfaces p50/p95/p99 for every histogram.
TEST_F(RegistryTest, SnapshotCarriesHistogramQuantiles) {
  Registry::Global().GetHistogram("test.hist.snapq")->Observe(3.0);
  auto parsed = core::json::Parse(Registry::Global().SnapshotJson());
  ASSERT_TRUE(parsed.ok());
  const auto* histogram =
      parsed.value().Find("histograms")->Find("test.hist.snapq");
  ASSERT_NE(histogram, nullptr);
  for (const char* key : {"p50", "p95", "p99"}) {
    ASSERT_NE(histogram->Find(key), nullptr) << key;
    EXPECT_TRUE(histogram->Find(key)->is_number()) << key;
  }
}

TEST_F(RegistryTest, DisabledRegistryIsANoOp) {
  Registry::Enable(false);
  Counter* counter = Registry::Global().GetCounter("test.counter.off");
  Gauge* gauge = Registry::Global().GetGauge("test.gauge.off");
  counter->Add(10);
  gauge->Set(1.0);
  SISYPHUS_METRIC_COUNT("test.counter.off", 3);
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_DOUBLE_EQ(gauge->value(), 0.0);
}

TEST_F(RegistryTest, ResetAllZeroesValuesKeepingRegistrations) {
  Counter* counter = Registry::Global().GetCounter("test.counter.reset");
  Histogram* histogram = Registry::Global().GetHistogram("test.hist.reset");
  counter->Add(9);
  histogram->Observe(2.0);
  Registry::Global().ResetAll();
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(histogram->count(), 0u);
  EXPECT_EQ(Registry::Global().GetCounter("test.counter.reset"), counter);
}

TEST_F(RegistryTest, MacrosRecordThroughTheGlobalRegistry) {
  SISYPHUS_METRIC_COUNT("test.macro.count", 2);
  SISYPHUS_METRIC_COUNT("test.macro.count", 1);
  SISYPHUS_METRIC_GAUGE("test.macro.gauge", 4.0);
  SISYPHUS_METRIC_OBSERVE("test.macro.hist", 3.0);
#if defined(SISYPHUS_OBS_DISABLED)
  // Compiled out: the macros above must expand to nothing.
  EXPECT_EQ(Registry::Global().CounterValue("test.macro.count"), 0u);
#else
  EXPECT_EQ(Registry::Global().CounterValue("test.macro.count"), 3u);
#endif
}

TEST_F(RegistryTest, SnapshotIsDeterministicAndSorted) {
  // Register in non-sorted order; the snapshot must not care.
  Registry::Global().GetCounter("test.z.last")->Add(1);
  Registry::Global().GetCounter("test.a.first")->Add(2);
  const std::string snapshot_a = Registry::Global().SnapshotJson();

  Registry::Global().ResetAll();
  Registry::Global().GetCounter("test.a.first")->Add(2);
  Registry::Global().GetCounter("test.z.last")->Add(1);
  const std::string snapshot_b = Registry::Global().SnapshotJson();
  EXPECT_EQ(snapshot_a, snapshot_b);

  EXPECT_LT(snapshot_a.find("test.a.first"), snapshot_a.find("test.z.last"));
}

TEST_F(RegistryTest, SnapshotIsValidJsonWithSchema) {
  Registry::Global().GetCounter("test.snapshot.counter")->Add(7);
  Registry::Global().GetHistogram("test.snapshot.hist")->Observe(3.0);
  auto parsed = core::json::Parse(Registry::Global().SnapshotJson());
  ASSERT_TRUE(parsed.ok());
  const auto& root = parsed.value();
  EXPECT_EQ(root.Find("schema")->string, "sisyphus.metrics/1");
  EXPECT_DOUBLE_EQ(
      root.Find("counters")->Find("test.snapshot.counter")->number, 7.0);
  const auto* histogram =
      root.Find("histograms")->Find("test.snapshot.hist");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->Find("bucket_counts")->array.size(),
            histogram->Find("upper_bounds")->array.size() + 1);
}

}  // namespace
}  // namespace sisyphus::obs
