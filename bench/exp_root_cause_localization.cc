// E9 — PoiRoot-style root-cause localization at scale (extension;
// paper §2's highlighted example of causal reasoning on path changes).
//
// Sweep: random three-tier Internets, every link failed in turn, every
// affected access->content path localized. Reports localization accuracy
// (culprit is an endpoint AS of the failed link) and the classification
// mix, sliced by where the failure happened (access / transit / core).
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "netsim/root_cause.h"
#include "netsim/scenario_random.h"

namespace {

using namespace sisyphus;
using core::LinkId;
using netsim::AsRole;
using netsim::PopIndex;

const char* TierOf(const netsim::Topology& topo, const netsim::Link& link) {
  const AsRole role_a = topo.GetPop(link.a).role;
  const AsRole role_b = topo.GetPop(link.b).role;
  if (role_a == AsRole::kAccess || role_b == AsRole::kAccess) return "edge";
  if (role_a == AsRole::kContent || role_b == AsRole::kContent)
    return "content";
  return "core";
}

struct TierStats {
  std::size_t changes = 0;
  std::size_t localized = 0;
  std::size_t withdrawals = 0;
  std::size_t reroutes = 0;
};

int Main() {
  bench::PrintHeader("E9", "root-cause localization for path changes",
                     "section 2 (PoiRoot as causal-reasoning exemplar)");

  std::map<std::string, TierStats> by_tier;
  std::size_t total_changes = 0, total_localized = 0;
  for (int seed = 1; seed <= 6; ++seed) {
    netsim::RandomInternetOptions options;
    options.seed = static_cast<std::uint64_t>(seed);
    options.access_count = 24;
    options.transit_count = 8;
    options.multihoming_probability = 0.7;
    auto world = netsim::BuildRandomInternet(options);
    auto& sim = *world.simulator;
    const PopIndex dst = world.content.front();

    for (LinkId::underlying_type raw = 0; raw < sim.topology().LinkCount();
         ++raw) {
      const LinkId link{raw};
      const netsim::RouteTable before = sim.bgp().RoutesTo(dst);
      sim.topology().MutableLink(link).up = false;
      sim.bgp().InvalidateCache();
      const netsim::RouteTable after = sim.bgp().RoutesTo(dst);
      const auto& l = sim.topology().GetLink(link);
      TierStats& stats = by_tier[TierOf(sim.topology(), l)];
      for (PopIndex src : world.access) {
        if (!before.best[src].has_value() || !after.best[src].has_value()) {
          continue;
        }
        if (before.best[src]->pop_path == after.best[src]->pop_path) {
          continue;
        }
        auto result =
            netsim::LocalizeRouteChange(sim.topology(), before, after, src);
        if (!result.ok()) continue;
        ++stats.changes;
        ++total_changes;
        if (result.value().culprit == l.a || result.value().culprit == l.b) {
          ++stats.localized;
          ++total_localized;
        }
        if (result.value().kind == netsim::RouteChangeKind::kWithdrawal) {
          ++stats.withdrawals;
        } else if (result.value().kind ==
                   netsim::RouteChangeKind::kReroute) {
          ++stats.reroutes;
        }
      }
      sim.topology().MutableLink(link).up = true;
      sim.bgp().InvalidateCache();
    }
  }

  std::printf("6 random internets x every-link failure; %zu path changes "
              "analyzed\n\n",
              total_changes);
  bench::TableWriter table({{"failure tier", 12}, {"changes", 8},
                            {"localized", 9}, {"accuracy", 8},
                            {"withdrawals", 11}, {"reroutes", 8}});
  for (const auto& [tier, stats] : by_tier) {
    table.Cell(tier);
    table.Cell(static_cast<double>(stats.changes), "%.0f");
    table.Cell(static_cast<double>(stats.localized), "%.0f");
    table.Cell(stats.changes > 0 ? static_cast<double>(stats.localized) /
                                       static_cast<double>(stats.changes)
                                 : 0.0,
               "%.2f");
    table.Cell(static_cast<double>(stats.withdrawals), "%.0f");
    table.Cell(static_cast<double>(stats.reroutes), "%.0f");
  }
  const double accuracy = total_changes > 0
                              ? static_cast<double>(total_localized) /
                                    static_cast<double>(total_changes)
                              : 0.0;
  std::printf("\noverall accuracy: %.1f%% (culprit is an endpoint of the "
              "failed link)\n",
              100.0 * accuracy);
  std::printf("paper: PoiRoot 'models the causal structure of path changes"
              "... to identify root causes' — this is that localization "
              "logic on converged tables.\n");
  std::printf("shape check: %s\n", accuracy > 0.9 ? "PASS" : "FAIL");
  return accuracy > 0.9 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  sisyphus::bench::ApplyThreadsFlag(argc, argv);
  return Main();
}
