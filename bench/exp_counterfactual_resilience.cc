// E6 — the paper's §3 counterfactual box ("An example of incorrect
// counterfactual reasoning", on Xaminer, SIGMETRICS'24): mapping which
// paths are EXPOSED to a physical failure is not the same as modeling the
// IMPACT once routing adapts. "Without modeling these dynamic
// adaptations, the analysis risks conflating exposure with impact."
//
// We cut each backbone link of a simulated region in turn and compare:
//   exposure  — how many ⟨src,dst⟩ pairs' current paths use the link
//               (the static, Xaminer-style answer), vs
//   impact    — after BGP re-converges: how many pairs are actually
//               disconnected, and the RTT cost for the survivors.
// The 2021 Facebook outage narrative (one withdrawal, total loss) appears
// as the special case where no alternative exists.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/rng.h"
#include "netsim/simulator.h"

namespace {

using namespace sisyphus;
using core::Asn;

int Main() {
  bench::PrintHeader("E6", "exposure vs post-reconvergence impact",
                     "section 3 box 'An example of incorrect counterfactual "
                     "reasoning' (Xaminer)");

  // Regional topology: 2 tier-1s (peered), 4 regional transits, 8 access
  // networks, 1 content AS dual-homed; some access nets single-homed.
  netsim::Topology topo;
  const auto city = topo.cities().Add({"Region", {0, 0}, 0});
  const auto t1a = topo.AddPop(Asn{10}, city, netsim::AsRole::kTransit).value();
  const auto t1b = topo.AddPop(Asn{11}, city, netsim::AsRole::kTransit).value();
  (void)topo.AddLink(t1a, t1b, netsim::Relationship::kPeerToPeer);
  std::vector<netsim::PopIndex> regional;
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto node =
        topo.AddPop(Asn{20 + i}, city, netsim::AsRole::kTransit).value();
    regional.push_back(node);
    (void)topo.AddLink(node, i % 2 == 0 ? t1a : t1b,
                       netsim::Relationship::kCustomerToProvider);
    if (i >= 2) {  // dual-homed regionals
      (void)topo.AddLink(node, i % 2 == 0 ? t1b : t1a,
                         netsim::Relationship::kCustomerToProvider);
    }
  }
  std::vector<netsim::PopIndex> access;
  for (std::uint32_t i = 0; i < 8; ++i) {
    const auto node =
        topo.AddPop(Asn{100 + i}, city, netsim::AsRole::kAccess).value();
    access.push_back(node);
    (void)topo.AddLink(node, regional[i % 4],
                       netsim::Relationship::kCustomerToProvider);
    if (i % 3 == 0) {  // some multihomed access nets
      (void)topo.AddLink(node, regional[(i + 1) % 4],
                         netsim::Relationship::kCustomerToProvider);
    }
  }
  const auto content =
      topo.AddPop(Asn{200}, city, netsim::AsRole::kContent).value();
  (void)topo.AddLink(content, regional[0],
                     netsim::Relationship::kCustomerToProvider);
  (void)topo.AddLink(content, regional[1],
                     netsim::Relationship::kCustomerToProvider);

  netsim::NetworkSimulator sim(std::move(topo));
  const auto& topology = sim.topology();
  const core::SimTime probe = core::SimTime::FromHours(4.0);

  // Baseline paths + RTTs.
  struct Pair {
    netsim::PopIndex src;
    double base_rtt;
    std::vector<core::LinkId> links;
  };
  std::vector<Pair> pairs;
  for (const auto src : access) {
    auto route = sim.bgp().Route(src, content);
    if (!route.ok()) continue;
    pairs.push_back({src, sim.latency().PathRttMs(route.value(), probe),
                     route.value().links});
  }
  std::printf("baseline: %zu access networks reach the content AS\n\n",
              pairs.size());

  bench::TableWriter table({{"cut link", 26},
                            {"exposed", 8},
                            {"disconnected", 12},
                            {"mean RTT cost (ms)", 18},
                            {"exposure=impact?", 16}});

  std::size_t links_where_exposure_overstates = 0;
  std::size_t links_checked = 0;
  for (core::LinkId::underlying_type raw = 0;
       raw < topology.LinkCount(); ++raw) {
    const core::LinkId link{raw};
    const auto& l = topology.GetLink(link);
    // Cut backbone/transit links only (skip nothing here; all links).
    std::size_t exposed = 0;
    for (const auto& pair : pairs) {
      if (std::find(pair.links.begin(), pair.links.end(), link) !=
          pair.links.end()) {
        ++exposed;
      }
    }
    if (exposed == 0) continue;
    ++links_checked;

    // Counterfactual: cut it, let BGP re-converge.
    sim.topology().MutableLink(link).up = false;
    sim.bgp().InvalidateCache();
    std::size_t disconnected = 0;
    double rtt_cost = 0.0;
    std::size_t survivors = 0;
    for (const auto& pair : pairs) {
      auto route = sim.bgp().Route(pair.src, content);
      if (!route.ok()) {
        ++disconnected;
        continue;
      }
      const bool was_exposed =
          std::find(pair.links.begin(), pair.links.end(), link) !=
          pair.links.end();
      if (was_exposed) {
        rtt_cost += sim.latency().PathRttMs(route.value(), probe) -
                    pair.base_rtt;
        ++survivors;
      }
    }
    sim.topology().MutableLink(link).up = true;
    sim.bgp().InvalidateCache();

    const std::string label = topology.GetPop(l.a).label + "-" +
                              topology.GetPop(l.b).label;
    table.Cell(label);
    table.Cell(static_cast<double>(exposed), "%.0f");
    table.Cell(static_cast<double>(disconnected), "%.0f");
    table.Cell(survivors > 0 ? rtt_cost / survivors : 0.0, "%+.2f");
    table.Cell(disconnected == exposed ? "yes" : "NO");
    if (disconnected < exposed) ++links_where_exposure_overstates;
  }

  std::printf("\n%zu / %zu cut links: exposure OVERSTATES impact (routing "
              "adapts; cost is extra RTT, not disconnection)\n",
              links_where_exposure_overstates, links_checked);

  // The Facebook-outage special case: withdraw the content AS entirely
  // (both its transit links) — no adaptation can help.
  for (core::LinkId link : topology.LinksOf(content)) {
    sim.topology().MutableLink(link).up = false;
  }
  sim.bgp().InvalidateCache();
  std::size_t reachable = 0;
  for (const auto& pair : pairs) {
    if (sim.bgp().Route(pair.src, content).ok()) ++reachable;
  }
  std::printf("Facebook-2021 special case (origin withdraws all "
              "announcements): %zu / %zu pairs still reach it — exposure "
              "and impact coincide only when no alternative exists.\n",
              reachable, pairs.size());
  std::printf("paper: 'True resilience analysis requires counterfactual "
              "reasoning: not just asking what infrastructure is at risk, "
              "but how routing... would change if a specific failure "
              "occurred.'\n");
  const bool shape = links_where_exposure_overstates > 0 && reachable == 0;
  std::printf("shape check: %s\n", shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  sisyphus::bench::ApplyThreadsFlag(argc, argv);
  return Main();
}
