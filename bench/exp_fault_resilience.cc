// F1 — Fault resilience of the Table 1 pipeline.
//
// The paper's warning made executable: real archives are not clean panels.
// This bench re-runs the Table 1 case study (ScenarioZa campaign → panel →
// robust synthetic control) under increasingly hostile fault plans — probe
// loss (optionally MNAR-coupled to congestion), vantage outage windows,
// collector outages, truncated traceroutes, duplicated and corrupted
// records, clock skew — and reports how far the estimated IXP effect
// drifts from the clean-data estimate.
//
// Two invariants are checked and printed:
//   1. determinism — the same FaultPlan seed reproduces a byte-identical
//      record stream (the CSV of the store is compared across two runs);
//   2. robustness — at 20% probe loss plus two 10-period vantage outages,
//      the masked robust-synthetic-control estimate stays within 25%
//      relative error of the clean estimate (mirrored by a tier-1 test).
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "causal/robust_synthetic_control.h"
#include "core/hash.h"
#include "core/rng.h"
#include "measure/export.h"
#include "measure/faults.h"
#include "measure/panel.h"
#include "measure/platform.h"
#include "netsim/scenario_za.h"

namespace {

using namespace sisyphus;

struct CampaignResult {
  double mean_effect = 0.0;   ///< mean RTT delta across treated units
  std::size_t units_fit = 0;  ///< treated units with a successful fit
  std::size_t records = 0;
  std::size_t quarantined = 0;
  std::size_t failures = 0;
  std::size_t panel_units = 0;
  std::size_t panel_dropped = 0;
  std::string store_csv;      ///< for the determinism check
};

/// One full campaign + estimation pass under `plan` (nullptr = clean).
/// `label` names this campaign's lineage run ledger (ids restart at 1 per
/// campaign, so each needs its own waterfall to reconcile against).
/// `platform_seed` = 0 means "use the scenario seed"; any other value
/// reseeds the platform RNG, which gives the estimator's noise floor.
/// With `streaming` the campaign flows through the sharded columnar store
/// and the incremental panel builder instead of the batch merge; every
/// result field (and the determinism CSV) is produced from that path.
CampaignResult RunCampaign(const std::string& label,
                           const measure::FaultPlan* plan,
                           bool keep_csv = false,
                           std::uint64_t platform_seed = 0,
                           bool streaming = false) {
  SISYPHUS_LINEAGE(BeginRun(label));
  netsim::ScenarioZaOptions scenario_options;
  netsim::ScenarioZa scenario = netsim::BuildScenarioZa(scenario_options);

  measure::PlatformOptions platform_options;
  platform_options.server = scenario.content_jnb;
  platform_options.step = core::SimTime::FromHours(1);
  measure::Platform platform(*scenario.simulator, platform_options);

  // Denser schedule than table1: the acceptance bar compares a faulty
  // estimate against the clean one within 25%, so per-bucket medians must
  // be tight enough that reseeding noise stays well inside that budget.
  measure::VantageConfig vantage;
  vantage.baseline_tests_per_day = 40.0;
  vantage.user_tests_per_day = 4.0;
  for (const auto& unit : scenario.treated) {
    vantage.pop = unit.access_pop;
    platform.AddVantage(vantage);
  }
  for (netsim::PopIndex donor : scenario.donors) {
    vantage.pop = donor;
    platform.AddVantage(vantage);
  }

  measure::FaultInjector injector(plan != nullptr ? *plan
                                                  : measure::FaultPlan{});
  if (plan != nullptr) platform.SetFaultInjector(&injector);

  measure::PanelOptions panel_options;
  panel_options.bucket = core::SimTime::FromHours(6);
  panel_options.periods = static_cast<std::size_t>(
      scenario_options.horizon.minutes() / panel_options.bucket.minutes());

  core::Rng rng(platform_seed != 0 ? platform_seed : scenario_options.seed);
  CampaignResult out;
  measure::Panel panel;
  if (streaming) {
    measure::StreamingOptions streaming_options;
    streaming_options.panel = panel_options;
    measure::StreamingCampaign stream(platform_options.validation,
                                      streaming_options);
    platform.RunStreaming(scenario_options.horizon, rng, stream);
    panel = stream.FinalizePanel();
    out.records = stream.store().size();
    out.quarantined = stream.store().quarantined();
    if (keep_csv) out.store_csv = stream.store().ToCsv();
  } else {
    platform.Run(scenario_options.horizon, rng);
    panel = measure::BuildRttPanel(platform.store(), panel_options);
    out.records = platform.store().size();
    out.quarantined = platform.store().quarantine().size();
    if (keep_csv) out.store_csv = measure::StoreToCsv(platform.store());
  }
  out.failures = platform.failures().size();
  out.panel_units = panel.units.size();
  out.panel_dropped = panel.dropped.size();

  double sum = 0.0;
  for (const auto& unit : scenario.treated) {
    auto input = measure::MakeSyntheticControlInput(
        panel, unit.name, scenario.donor_names,
        scenario_options.treatment_time);
    if (!input.ok()) continue;
    auto fit = causal::FitRobustSyntheticControl(input.value());
    if (!fit.ok()) continue;
    sum += fit.value().base.average_effect;
    ++out.units_fit;
    if (obs::Lineage::enabled()) {
      obs::Lineage::Global().AddEstimate(
          "robust." + unit.name, unit.name, input.value().donor_names,
          fit.value().base.average_effect,
          std::numeric_limits<double>::quiet_NaN());
    }
  }
  if (out.units_fit > 0) out.mean_effect = sum / static_cast<double>(out.units_fit);
  return out;
}

/// The acceptance-criteria fault plan: 20% probe loss, two 10-period
/// (= 60h at 6h buckets) outages on the first two treated vantages.
measure::FaultPlan AcceptancePlan(const netsim::ScenarioZa& scenario,
                                  std::uint64_t seed) {
  measure::FaultPlan plan;
  plan.seed = seed;
  plan.probe_loss_probability = 0.20;
  const core::SimTime duration = core::SimTime::FromHours(60);
  plan.vantage_outages.push_back(
      {scenario.treated[0].access_pop,
       {{core::SimTime::FromDays(10), core::SimTime::FromDays(10) + duration}}});
  plan.vantage_outages.push_back(
      {scenario.treated[1].access_pop,
       {{core::SimTime::FromDays(40), core::SimTime::FromDays(40) + duration}}});
  return plan;
}

int Main(const std::string& obs_dir, bool streaming) {
  bench::PrintHeader("F1", "fault resilience of the Table 1 pipeline",
                     "robustness extension (degraded-data semantics, "
                     "DESIGN.md failure model)");
  if (streaming) {
    std::printf("mode: streaming ingest (sharded columnar store + "
                "incremental panel)\n\n");
  }

  const netsim::ScenarioZaOptions scenario_defaults;
  bench::ObsRun obs("exp_fault_resilience", obs_dir, scenario_defaults.seed);
  obs::RunManifest& manifest = obs.manifest();
  manifest.AddOption("horizon_days",
                     std::to_string(scenario_defaults.horizon.days()));
  manifest.AddOption("acceptance_plan_seed", "42");
  manifest.AddOption("streaming", streaming ? "true" : "false");

  std::unique_ptr<obs::ScopedPhase> phase =
      std::make_unique<obs::ScopedPhase>(manifest, "clean_campaign");
  const CampaignResult clean = RunCampaign("clean", nullptr, false, 0,
                                           streaming);
  std::printf("clean campaign: %zu records, %zu panel units, mean IXP "
              "effect %+.3f ms over %zu treated units\n\n",
              clean.records, clean.panel_units, clean.mean_effect,
              clean.units_fit);

  // ---- Sweep: probe loss x outages x record corruption ----
  struct SweepPoint {
    const char* label;
    double loss;
    double mnar_gain;
    std::size_t outages;       ///< 60h windows spread over treated vantages
    double corruption;
    double duplication;
  };
  const SweepPoint sweep[] = {
      {"loss 5%", 0.05, 0.0, 0, 0.0, 0.0},
      {"loss 20%", 0.20, 0.0, 0, 0.0, 0.0},
      {"loss 40%", 0.40, 0.0, 0, 0.0, 0.0},
      {"loss 20% + outages", 0.20, 0.0, 2, 0.0, 0.0},
      {"loss 20% MNAR", 0.20, 2.0, 0, 0.0, 0.0},
      {"dirty collector", 0.10, 0.0, 1, 0.02, 0.03},
  };

  netsim::ScenarioZa reference = netsim::BuildScenarioZa({});

  // Estimator noise floor: clean data, different platform RNG seeds. Fault
  // plans below perturb the RNG stream too, so drift smaller than this
  // floor is sampling noise, not fault-induced bias.
  phase = std::make_unique<obs::ScopedPhase>(manifest, "noise_floor");
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    const CampaignResult reseed = RunCampaign(
        "noise_floor.seed" + std::to_string(seed), nullptr, false, seed,
        streaming);
    std::printf("noise floor (clean, platform seed %llu): effect %+.3f ms "
                "(rel. drift %.2f)\n",
                static_cast<unsigned long long>(seed), reseed.mean_effect,
                std::abs(reseed.mean_effect - clean.mean_effect) /
                    std::max(std::abs(clean.mean_effect), 1e-9));
  }
  std::printf("\n");

  phase = std::make_unique<obs::ScopedPhase>(manifest, "fault_sweep");
  bench::TableWriter table({{"fault plan", 20},
                            {"records", 8},
                            {"quar.", 6},
                            {"failures", 9},
                            {"panel", 6},
                            {"effect (ms)", 11},
                            {"rel. err", 8}});
  for (const SweepPoint& point : sweep) {
    measure::FaultPlan plan;
    plan.seed = 7;
    plan.probe_loss_probability = point.loss;
    plan.mnar_loss_gain = point.mnar_gain;
    plan.corruption_probability = point.corruption;
    plan.duplicate_probability = point.duplication;
    plan.max_clock_skew = core::SimTime(point.corruption > 0 ? 3 : 0);
    const core::SimTime duration = core::SimTime::FromHours(60);
    for (std::size_t i = 0; i < point.outages; ++i) {
      const core::SimTime start =
          core::SimTime::FromDays(10 + 30 * static_cast<double>(i));
      plan.vantage_outages.push_back(
          {reference.treated[i % reference.treated.size()].access_pop,
           {{start, start + duration}}});
    }
    const CampaignResult result =
        RunCampaign(point.label, &plan, false, 0, streaming);
    const double rel_err =
        std::abs(result.mean_effect - clean.mean_effect) /
        std::max(std::abs(clean.mean_effect), 1e-9);
    table.Cell(point.label);
    table.Cell(static_cast<double>(result.records), "%.0f");
    table.Cell(static_cast<double>(result.quarantined), "%.0f");
    table.Cell(static_cast<double>(result.failures), "%.0f");
    table.Cell(static_cast<double>(result.panel_units), "%.0f");
    table.Cell(result.mean_effect, "%+.3f");
    table.Cell(rel_err, "%.2f");
  }

  // ---- Invariant 1: determinism under a fixed FaultPlan seed ----
  phase = std::make_unique<obs::ScopedPhase>(manifest, "determinism_check");
  const measure::FaultPlan acceptance = AcceptancePlan(reference, 42);
  manifest.fault_plan_hash =
      core::Fnv1a64Hex(measure::FaultPlanFingerprint(acceptance));
  const CampaignResult run_a = RunCampaign("acceptance.run_a", &acceptance,
                                           /*keep_csv=*/true, 0, streaming);
  const CampaignResult run_b = RunCampaign("acceptance.run_b", &acceptance,
                                           /*keep_csv=*/true, 0, streaming);
  const bool deterministic = run_a.store_csv == run_b.store_csv;
  if (!deterministic) {
    // Leave the evidence where a human can diff it.
    (void)measure::WriteTextFile("/tmp/exp_fault_resilience_run_a.csv",
                                 run_a.store_csv);
    (void)measure::WriteTextFile("/tmp/exp_fault_resilience_run_b.csv",
                                 run_b.store_csv);
    std::printf("determinism FAILED: diverging streams dumped to "
                "/tmp/exp_fault_resilience_run_{a,b}.csv\n");
  }
  std::printf("\ndeterminism: two runs with FaultPlan seed 42 produce %s "
              "record streams (%zu records)\n",
              deterministic ? "byte-identical" : "DIFFERENT", run_a.records);

  // ---- Invariant 2: 25% relative-error budget on the acceptance plan ----
  const double rel_err =
      std::abs(run_a.mean_effect - clean.mean_effect) /
      std::max(std::abs(clean.mean_effect), 1e-9);
  std::printf("acceptance plan (20%% loss + two 10-period outages): effect "
              "%+.3f ms vs clean %+.3f ms -> relative error %.1f%% "
              "(budget 25%%)\n",
              run_a.mean_effect, clean.mean_effect, 100.0 * rel_err);

  const bool ok = deterministic && rel_err <= 0.25;
  std::printf("\nconclusion: the masked estimator %s the paper's degraded-"
              "data bar.\n", ok ? "clears" : "MISSES");
  phase.reset();
  const int obs_status = obs.Finish();
  return ok ? obs_status : 1;
}

}  // namespace

int main(int argc, char** argv) {
  sisyphus::bench::ApplyThreadsFlag(argc, argv);
  std::string obs_dir;
  bool streaming = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--obs-out") == 0 && i + 1 < argc) {
      obs_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--streaming") == 0) {
      streaming = true;
    }
  }
  return Main(obs_dir, streaming);
}
