// E4 — the paper's §3 randomization example: M-Lab's load balancer
// assigns each speed test to one of several same-metro sites at random,
// so the AS path varies exogenously — "effectively a randomized
// experiment, the gold standard for causal inference."
//
// On the simulated network we give a metro two measurement sites reached
// over different transit paths (one congested). Users are assigned
// (a) randomly (the M-Lab mechanism) or (b) endogenously: a performance-
// aware client picks the faster site *when its own access link is
// uncongested* — entangling assignment with network state. The naive
// per-site contrast is unbiased under (a) and biased under (b).
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "causal/estimators.h"
#include "core/rng.h"
#include "measure/speedtest.h"
#include "netsim/simulator.h"
#include "stats/descriptive.h"

namespace {

using namespace sisyphus;
using core::Asn;
using core::SimTime;

struct Metro {
  std::unique_ptr<netsim::NetworkSimulator> sim;
  netsim::PopIndex user = 0, site_a = 0, site_b = 0;
  core::LinkId access;

  Metro() {
    netsim::Topology topo;
    const auto city = topo.cities().Add({"Metro", {-26.2, 28.0}, 2.0});
    user = topo.AddPop(Asn{100}, city, netsim::AsRole::kAccess).value();
    const auto t1 =
        topo.AddPop(Asn{20}, city, netsim::AsRole::kTransit).value();
    const auto t2 =
        topo.AddPop(Asn{30}, city, netsim::AsRole::kTransit).value();
    site_a = topo.AddPop(Asn{36444}, city, netsim::AsRole::kMeasurement)
                 .value();
    // Distinct ASN so the two sites have different AS paths.
    site_b = topo.AddPop(Asn{36445}, city, netsim::AsRole::kMeasurement)
                 .value();
    access = topo.AddLink(user, t1, netsim::Relationship::kCustomerToProvider,
                          std::nullopt, 0.4)
                 .value();
    (void)topo.AddLink(user, t2, netsim::Relationship::kCustomerToProvider,
                       std::nullopt, 0.4);
    (void)topo.AddLink(site_a, t1,
                       netsim::Relationship::kCustomerToProvider,
                       std::nullopt, 0.3);
    auto congested =
        topo.AddLink(site_b, t2, netsim::Relationship::kCustomerToProvider,
                     std::nullopt, 0.3);
    // Site B's transit attachment runs hot: the true site effect.
    topo.MutableLink(congested.value()).base_utilization = 0.65;
    topo.MutableLink(congested.value()).diurnal_amplitude = 0.30;
    // The user's own access link also swings with the same diurnal load —
    // the shared "network state" behind the endogenous assignment bias.
    topo.MutableLink(access).base_utilization = 0.45;
    topo.MutableLink(access).diurnal_amplitude = 0.35;
    sim = std::make_unique<netsim::NetworkSimulator>(std::move(topo));
  }
};

int Main() {
  bench::PrintHeader("E4", "random server assignment as a natural RCT",
                     "section 3 'Using randomization and natural "
                     "experiments' (M-Lab load balancing)");

  Metro metro;
  core::Rng rng(2025);

  // The true site effect: mean RTT difference with everything else equal,
  // averaged over a full day at matched times.
  double true_effect = 0.0;
  {
    int samples = 0;
    for (double h = 0.0; h < 24.0; h += 0.5) {
      metro.sim->AdvanceTo(SimTime::FromHours(h + 0.01));
      auto ra = metro.sim->RouteBetween(metro.user, metro.site_a);
      auto rb = metro.sim->RouteBetween(metro.user, metro.site_b);
      true_effect += metro.sim->latency().PathRttMs(rb.value(),
                                                    metro.sim->Now()) -
                     metro.sim->latency().PathRttMs(ra.value(),
                                                    metro.sim->Now());
      ++samples;
    }
    true_effect /= samples;
  }
  std::printf("ground truth: site B is slower by %.2f ms on average (its "
              "transit runs hot)\n\n",
              true_effect);

  // Fresh simulator for the measurement day(s).
  Metro fresh;
  auto run_campaign = [&](bool randomized) {
    std::vector<double> site(0), rtt(0);
    for (int step = 0; step < 4000; ++step) {
      const double hour = 0.25 * step;
      fresh.sim->AdvanceTo(SimTime::FromHours(hour + 0.001));
      bool use_b;
      if (randomized) {
        use_b = rng.Bernoulli(0.5);  // the M-Lab load balancer
      } else {
        // Endogenous client: prefers the "far" site B only when its own
        // access path currently looks fast (off-peak) — assignment now
        // depends on the same congestion that drives RTT.
        const double util =
            fresh.sim->latency().LinkUtilization(fresh.access,
                                                 fresh.sim->Now());
        use_b = rng.Bernoulli(util < 0.5 ? 0.8 : 0.2);
      }
      auto record = measure::RunSpeedTest(
          *fresh.sim, fresh.user, use_b ? fresh.site_b : fresh.site_a,
          measure::Intent::kBaseline, rng);
      if (!record.ok()) continue;
      site.push_back(use_b ? 1.0 : 0.0);
      rtt.push_back(record.value().rtt_ms);
    }
    causal::Dataset data;
    (void)data.AddColumn("SiteB", std::move(site));
    (void)data.AddColumn("RTT", std::move(rtt));
    return causal::NaiveDifference(data, "SiteB", "RTT").value();
  };

  const auto randomized = run_campaign(true);
  Metro fresh2;
  fresh = std::move(fresh2);
  const auto endogenous = run_campaign(false);

  bench::TableWriter table({{"assignment mechanism", 30},
                            {"naive site contrast", 19},
                            {"bias vs truth", 13}});
  table.Cell("random (M-Lab load balancer)");
  table.Cell(randomized.effect, "%+.2f");
  table.Cell(randomized.effect - true_effect, "%+.2f");
  table.Cell("endogenous (perf-aware client)");
  table.Cell(endogenous.effect, "%+.2f");
  table.Cell(endogenous.effect - true_effect, "%+.2f");

  const bool shape = std::abs(randomized.effect - true_effect) <
                     std::abs(endogenous.effect - true_effect);
  std::printf("\nshape check: %s — randomization makes the naive contrast "
              "causal; endogenous assignment does not (paper: 'differences "
              "in performance across sites can be attributed directly to "
              "routing').\n",
              shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  sisyphus::bench::ApplyThreadsFlag(argc, argv);
  return Main();
}
