// Table 1 — "Estimated RTT change for paths that begin crossing
// NAPAfrica-JNB" (the paper's case study: does joining an IXP reduce
// latency?).
//
// Pipeline, mirroring the paper:
//   1. simulate the South African edge for 56 days; eight treated
//      ⟨ASN, city⟩ units turn up NAPAfrica-JNB peering at day 28;
//   2. run an M-Lab-style measurement campaign (scheduled + user-initiated
//      speed tests with post-test traceroutes);
//   3. detect IXP crossings by matching hop IPs against the IXP LAN;
//   4. per treated unit: robust synthetic control against the
//      never-crossing donor pool; placebo p-values from donor RMSE-ratio
//      ranks.
//
// Expected shape (paper): small mixed RTT deltas (-7.3 .. +3.4 ms), mostly
// high p-values; a couple of units marginal (p < 0.10); the largest drop
// NOT significant. Pass --ablation to also run the classical
// simplex-weight estimator for comparison (DESIGN.md §4).
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <system_error>

#include "bench_util.h"
#include "causal/event_study.h"
#include "causal/placebo.h"
#include "core/hash.h"
#include "core/rng.h"
#include "durable/service.h"
#include "measure/export.h"
#include "measure/panel.h"
#include "measure/platform.h"
#include "netsim/scenario_za.h"

namespace {

using namespace sisyphus;

/// Durability flags (streaming mode only): with --durable-dir the campaign
/// runs under the DurableStreamingService (write-ahead journal + periodic
/// snapshots), --resume recovers a killed run from that directory, and
/// --chaos arms the kill/corrupt harness (DESIGN.md §11).
struct DurableArgs {
  std::string dir;
  bool resume = false;
  std::uint64_t snapshot_every = 16;
  std::uint64_t fsync_every = 8;
  std::uint64_t shed_max = 0;
  bool pipeline = false;
  std::string chaos_spec;
};

struct Row {
  std::string unit;
  double delta = 0.0;
  double rmse_ratio = 0.0;
  double p_value = 0.0;
  double paper_delta = 0.0;
};

/// --export-dir: writes the raw measurements, the panel, and per-unit
/// event-study gap series as CSV for external plotting (gnuplot / R /
/// matplotlib) — the paper's public-repo artifacts, regenerated. In
/// streaming mode `store` is null (the full records are never held in
/// memory) and speedtests.csv is skipped; panel.csv and the event-study
/// series are identical either way.
int ExportArtifacts(const std::string& directory,
                    const measure::MeasurementStore* store,
                    const measure::Panel& panel,
                    const netsim::ScenarioZa& scenario) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  auto write = [&](const std::string& name, const std::string& text) {
    const auto status = measure::WriteTextFile(directory + "/" + name, text);
    if (!status.ok()) {
      std::printf("export failed: %s\n", status.error().ToText().c_str());
      return false;
    }
    std::printf("wrote %s/%s\n", directory.c_str(), name.c_str());
    return true;
  };
  if (store != nullptr && !write("speedtests.csv", measure::StoreToCsv(*store))) {
    return 1;
  }
  if (!write("panel.csv", measure::PanelToCsv(panel))) {
    return 1;
  }
  // Event-study gap series per treated unit: one CSV with columns
  // relative_period, gap, band_low, band_high per unit.
  for (const auto& unit : scenario.treated) {
    auto input = measure::MakeSyntheticControlInput(
        panel, unit.name, scenario.donor_names,
        scenario.options.treatment_time);
    if (!input.ok()) continue;
    auto study = causal::RunEventStudy(input.value());
    if (!study.ok()) continue;
    std::string csv = "relative_period,gap,band_low,band_high\n";
    for (const auto& point : study.value().points) {
      char line[128];
      std::snprintf(line, sizeof(line), "%d,%.4f,%.4f,%.4f\n",
                    point.relative_period, point.gap, point.band_low,
                    point.band_high);
      csv += line;
    }
    std::string slug = unit.name;
    for (char& c : slug) {
      if (c == ' ' || c == '/') c = '_';
    }
    if (!write("event_study_" + slug + ".csv", csv)) return 1;
  }
  return 0;
}

int Main(bool ablation, const std::string& export_dir,
         const std::string& obs_dir, bool streaming, double scale,
         const DurableArgs& durable_args) {
  bench::PrintHeader("T1", "IXP case study via robust synthetic control",
                     "Table 1 (HotNets '25 Sisyphus paper)");

  // ---- 1. Scenario + campaign ----
  netsim::ScenarioZaOptions scenario_options;

  bench::ObsRun obs("table1_ixp_synth_control", obs_dir,
                    scenario_options.seed);
  obs::RunManifest& manifest = obs.manifest();
  manifest.AddOption("ablation", ablation ? "true" : "false");
  manifest.AddOption("streaming", streaming ? "true" : "false");
  manifest.AddOption("scale", std::to_string(scale));
  manifest.AddOption("horizon_days",
                     std::to_string(scenario_options.horizon.days()));
  manifest.AddOption("treatment_day",
                     std::to_string(scenario_options.treatment_time.days()));
  manifest.AddOption("donor_units",
                     std::to_string(scenario_options.donor_units));

  std::unique_ptr<obs::ScopedPhase> phase =
      std::make_unique<obs::ScopedPhase>(manifest, "build_scenario");
  netsim::ScenarioZa scenario = netsim::BuildScenarioZa(scenario_options);
  manifest.scenario_hash = core::Fnv1a64Hex(
      "za seed=" + std::to_string(scenario_options.seed) +
      " donors=" + std::to_string(scenario_options.donor_units) +
      " treatment_min=" +
      std::to_string(scenario_options.treatment_time.minutes()) +
      " horizon_min=" + std::to_string(scenario_options.horizon.minutes()) +
      " pops=" + std::to_string(scenario.simulator->topology().PopCount()) +
      " links=" + std::to_string(scenario.simulator->topology().LinkCount()));

  phase = std::make_unique<obs::ScopedPhase>(manifest, "run_campaign");
  measure::PlatformOptions platform_options;
  platform_options.server = scenario.content_jnb;
  platform_options.step = core::SimTime::FromHours(1);
  measure::Platform platform(*scenario.simulator, platform_options);

  measure::VantageConfig vantage;
  vantage.baseline_tests_per_day = 10.0 * scale;
  vantage.user_tests_per_day = 4.0 * scale;
  for (const auto& unit : scenario.treated) {
    vantage.pop = unit.access_pop;
    platform.AddVantage(vantage);
  }
  for (netsim::PopIndex donor : scenario.donors) {
    vantage.pop = donor;
    platform.AddVantage(vantage);
  }

  // Panel geometry is fixed up front: the streaming path folds records
  // into cells as they arrive, so it needs the bucket grid before the
  // campaign starts (the batch path simply uses it later).
  measure::PanelOptions panel_options;
  panel_options.bucket = core::SimTime::FromHours(6);
  panel_options.periods = static_cast<std::size_t>(
      scenario_options.horizon.minutes() / panel_options.bucket.minutes());

  core::Rng rng(scenario_options.seed);
  measure::Panel panel;
  bool partial_run = false;
  if (streaming) {
    measure::StreamingOptions streaming_options;
    streaming_options.panel = panel_options;
    measure::StreamingCampaign stream(platform_options.validation,
                                      streaming_options);
    if (!durable_args.dir.empty()) {
      durable::InstallSignalHandlers();
      durable::DurableOptions durable_options;
      durable_options.dir = durable_args.dir;
      durable_options.snapshot_every = durable_args.snapshot_every;
      durable_options.fsync_every = durable_args.fsync_every;
      durable_options.max_step_records = durable_args.shed_max;
      durable_options.pipelined = durable_args.pipeline;
      if (!durable_args.chaos_spec.empty()) {
        auto chaos = durable::ParseChaosSpec(durable_args.chaos_spec);
        if (!chaos.ok()) {
          std::printf("%s\n", chaos.error().ToText().c_str());
          return 2;
        }
        durable_options.chaos = chaos.value();
      }
      durable::DurableStreamingService service(platform, stream,
                                               durable_options);
      auto run = durable_args.resume
                     ? service.Resume(scenario_options.horizon, rng)
                     : service.Run(scenario_options.horizon, rng);
      if (!run.ok()) {
        std::printf("durable run failed: %s\n",
                    run.error().ToText().c_str());
        return 1;
      }
      const durable::RunStats& stats = run.value();
      partial_run = stats.outcome == durable::RunOutcome::kInterrupted;
      manifest.durable.enabled = true;
      manifest.durable.resumed = stats.resumed;
      manifest.durable.partial = partial_run;
      manifest.durable.snapshot_seq = stats.snapshot_seq;
      manifest.durable.journal_high_water = stats.journal_high_water;
      manifest.durable.journal_entries = stats.journal_entries;
      manifest.durable.shed_records = stats.shed_records;
      std::printf("durable: %llu live steps (%llu replayed under journal "
                  "verification), snapshot seq %llu, journal high-water "
                  "%llu%s%s\n",
                  static_cast<unsigned long long>(stats.steps),
                  static_cast<unsigned long long>(stats.replayed_steps),
                  static_cast<unsigned long long>(stats.snapshot_seq),
                  static_cast<unsigned long long>(stats.journal_high_water),
                  stats.resumed ? ", resumed" : "",
                  partial_run ? ", PARTIAL (interrupted)" : "");
    } else {
      platform.RunStreaming(scenario_options.horizon, rng, stream);
    }
    phase->SetSimSpan(core::SimTime(0), scenario_options.horizon);
    std::printf("campaign (streaming): %llu speed tests over %.0f days "
                "(%llu baseline, %llu user-initiated) across %zu shards in "
                "%llu step batches\n",
                static_cast<unsigned long long>(stream.store().size()),
                scenario_options.horizon.days(),
                static_cast<unsigned long long>(
                    stream.store().CountByIntent(measure::Intent::kBaseline)),
                static_cast<unsigned long long>(stream.store().CountByIntent(
                    measure::Intent::kUserInitiated)),
                stream.store().shard_count(),
                static_cast<unsigned long long>(stream.batches()));

    // ---- 2. Detection ----
    // IXP-crossing detection matches traceroute hops, which the columnar
    // arenas do not retain; the detection pass is a batch-only diagnostic
    // (it feeds no metrics, lineage, or estimates).
    std::printf("IXP-crossing detection: skipped in streaming mode "
                "(traceroutes are not retained)\n\n");

    // ---- 3. Panel (incremental finalize) ----
    phase = std::make_unique<obs::ScopedPhase>(manifest, "build_panel");
    panel = stream.FinalizePanel();
  } else {
    platform.Run(scenario_options.horizon, rng);
    phase->SetSimSpan(core::SimTime(0), scenario_options.horizon);
    std::printf("campaign: %zu speed tests over %.0f days (%zu baseline, "
                "%zu user-initiated)\n",
                platform.store().size(), scenario_options.horizon.days(),
                platform.CountByIntent(measure::Intent::kBaseline),
                platform.CountByIntent(measure::Intent::kUserInitiated));

    // ---- 2. Detection: which units began crossing the IXP? ----
    phase = std::make_unique<obs::ScopedPhase>(manifest, "detect_crossings");
    const auto& topology = scenario.simulator->topology();
    std::size_t detected = 0;
    for (const auto& unit : scenario.treated) {
      const auto first = platform.store().FirstIxpCrossing(
          topology, unit.name, scenario.napafrica_jnb);
      if (first.has_value()) ++detected;
    }
    std::printf("IXP-crossing detection: %zu / %zu treated units observed "
                "crossing NAPAfrica-JNB after day %.0f\n\n",
                detected, scenario.treated.size(),
                scenario_options.treatment_time.days());

    // ---- 3. Panel ----
    phase = std::make_unique<obs::ScopedPhase>(manifest, "build_panel");
    panel = measure::BuildRttPanel(platform.store(), panel_options);
  }
  std::printf("panel: %zu units x %zu periods (6h median RTT buckets)\n\n",
              panel.units.size(), panel_options.periods);

  // ---- 4. Robust synthetic control + placebo per treated unit ----
  // Treated units are independent analyses, so they fan out across the
  // thread pool; errors and rows are collected per unit and emitted in
  // unit order afterwards, keeping stdout byte-identical at any
  // SISYPHUS_THREADS / --threads setting (DESIGN.md §7).
  phase = std::make_unique<obs::ScopedPhase>(manifest, "synthetic_control");
  auto run_method = [&](causal::SyntheticControlMethod method) {
    struct UnitOutcome {
      bool ok = false;
      std::string error;
      Row row;
      std::vector<std::string> donors;  ///< usable donor pool (lineage)
    };
    const auto outcomes = core::ParallelMap(
        scenario.treated.size(), [&](std::size_t u) {
          const auto& unit = scenario.treated[u];
          UnitOutcome outcome;
          std::vector<std::string> skipped;
          auto input = measure::MakeSyntheticControlInput(
              panel, unit.name, scenario.donor_names,
              scenario_options.treatment_time, &skipped);
          if (!input.ok()) {
            outcome.error = input.error().ToText();
            return outcome;
          }
          causal::PlaceboOptions placebo_options;
          placebo_options.method = method;
          auto result =
              causal::RunPlaceboAnalysis(input.value(), placebo_options);
          if (!result.ok()) {
            outcome.error = result.error().ToText();
            return outcome;
          }
          outcome.ok = true;
          outcome.row.unit = unit.name;
          outcome.row.delta = result.value().treated_fit.average_effect;
          outcome.row.rmse_ratio = result.value().treated_fit.rmse_ratio;
          outcome.row.p_value = result.value().p_value;
          outcome.row.paper_delta = unit.paper_delta_ms;
          outcome.donors = input.value().donor_names;
          return outcome;
        });
    std::vector<Row> rows;
    const char* method_label =
        method == causal::SyntheticControlMethod::kRobust ? "robust"
                                                          : "classical";
    for (std::size_t u = 0; u < outcomes.size(); ++u) {
      if (!outcomes[u].ok) {
        std::printf("  %s: %s\n", scenario.treated[u].name.c_str(),
                    outcomes[u].error.c_str());
        continue;
      }
      // Headline estimates into metrics.json (one gauge pair per treated
      // unit), written during the ordered merge so the snapshot is
      // byte-identical at any thread count.
      const std::string prefix =
          std::string("table1.") + method_label + ".unit" + std::to_string(u);
      obs::Registry::Global().GetGauge(prefix + ".effect_ms")
          ->Set(outcomes[u].row.delta);
      obs::Registry::Global().GetGauge(prefix + ".p_value")
          ->Set(outcomes[u].row.p_value);
      // Lineage: the estimate and the units backing it, registered in the
      // same ordered merge so lineage.json is thread-count-invariant.
      if (obs::Lineage::enabled()) {
        obs::Lineage::Global().AddEstimate(
            prefix, scenario.treated[u].name, outcomes[u].donors,
            outcomes[u].row.delta, outcomes[u].row.p_value);
      }
      rows.push_back(outcomes[u].row);
    }
    return rows;
  };

  const auto rows = run_method(causal::SyntheticControlMethod::kRobust);
  std::printf("Robust synthetic control (paper's estimator):\n");
  bench::TableWriter table({{"ASN / City", 22},
                            {"RTT delta (ms)", 14},
                            {"RMSE ratio", 10},
                            {"p", 6},
                            {"paper delta", 11}});
  for (const auto& row : rows) {
    table.Cell(row.unit);
    table.Cell(row.delta, "%+.2f");
    table.Cell(row.rmse_ratio, "%.1f");
    table.Cell(row.p_value, "%.3f");
    table.Cell(row.paper_delta, "%+.2f");
  }

  // Shape checks the paper reports in prose.
  std::size_t marginal = 0;
  double largest_drop = 0.0;
  double largest_drop_p = 1.0;
  for (const auto& row : rows) {
    if (row.p_value < 0.10) ++marginal;
    if (row.delta < largest_drop) {
      largest_drop = row.delta;
      largest_drop_p = row.p_value;
    }
  }
  std::printf("\nshape: %zu/%zu units with p < 0.10 (paper: 2/8); largest "
              "drop %.2f ms at p = %.2f (paper: -7.28 ms, p = 0.33)\n",
              marginal, rows.size(), largest_drop, largest_drop_p);
  std::printf("conclusion (paper): RTT occasionally decreases after the "
              "IXP, but the effect is neither consistent nor robust.\n");

  if (!export_dir.empty()) {
    std::printf("\nexporting artifacts:\n");
    if (const int status = ExportArtifacts(
            export_dir, streaming ? nullptr : &platform.store(), panel,
            scenario);
        status != 0) {
      return status;
    }
  }

  if (ablation) {
    std::printf("\nAblation — classical (simplex-weight) synthetic "
                "control:\n");
    const auto classical = run_method(causal::SyntheticControlMethod::kClassical);
    bench::TableWriter ablation_table({{"ASN / City", 22},
                                       {"RTT delta (ms)", 14},
                                       {"RMSE ratio", 10},
                                       {"p", 6}});
    for (const auto& row : classical) {
      ablation_table.Cell(row.unit);
      ablation_table.Cell(row.delta, "%+.2f");
      ablation_table.Cell(row.rmse_ratio, "%.1f");
      ablation_table.Cell(row.p_value, "%.3f");
    }
  }
  phase.reset();
  const int status = obs.Finish();
  // Interrupted-but-flushed runs leave valid artifacts (manifest marks
  // them partial) and exit 130, the conventional SIGINT status.
  if (partial_run) return 130;
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  sisyphus::bench::ApplyThreadsFlag(argc, argv);
  bool ablation = false;
  bool streaming = false;
  double scale = 1.0;
  std::string export_dir;
  std::string obs_dir;
  DurableArgs durable_args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ablation") == 0) {
      ablation = true;
    } else if (std::strcmp(argv[i], "--streaming") == 0) {
      streaming = true;
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::atof(argv[++i]);
      if (!(scale > 0.0)) {
        std::fprintf(stderr, "--scale must be a positive number\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--export-dir") == 0 && i + 1 < argc) {
      export_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--obs-out") == 0 && i + 1 < argc) {
      obs_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--durable-dir") == 0 && i + 1 < argc) {
      durable_args.dir = argv[++i];
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      durable_args.resume = true;
    } else if (std::strcmp(argv[i], "--snapshot-every") == 0 && i + 1 < argc) {
      durable_args.snapshot_every =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--fsync-every") == 0 && i + 1 < argc) {
      durable_args.fsync_every =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--shed-max") == 0 && i + 1 < argc) {
      durable_args.shed_max =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--pipeline") == 0) {
      durable_args.pipeline = true;
    } else if (std::strcmp(argv[i], "--chaos") == 0 && i + 1 < argc) {
      durable_args.chaos_spec = argv[++i];
    }
  }
  if ((!durable_args.dir.empty() || durable_args.resume ||
       !durable_args.chaos_spec.empty()) &&
      !streaming) {
    std::fprintf(stderr, "--durable-dir/--resume/--chaos require --streaming\n");
    return 2;
  }
  if (durable_args.dir.empty() &&
      (durable_args.resume || !durable_args.chaos_spec.empty())) {
    std::fprintf(stderr, "--resume/--chaos require --durable-dir\n");
    return 2;
  }
  return Main(ablation, export_dir, obs_dir, streaming, scale, durable_args);
}
