// P2 — causal-engine microbenchmarks: d-separation (linear-time
// reachability vs exponential path enumeration), identification, and the
// synthetic-control estimators at Table 1 panel sizes.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "causal/dseparation.h"
#include "causal/identification.h"
#include "causal/placebo.h"
#include "causal/robust_synthetic_control.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "core/sim_time.h"
#include "measure/platform.h"

namespace {

using namespace sisyphus;
using causal::Dag;
using causal::NodeId;
using causal::NodeSet;

Dag RandomDag(std::size_t nodes, double edge_probability,
              std::uint64_t seed) {
  core::Rng rng(seed);
  Dag dag;
  std::vector<NodeId> ids;
  for (std::size_t i = 0; i < nodes; ++i) {
    ids.push_back(dag.AddNode("V" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < nodes; ++i) {
    for (std::size_t j = i + 1; j < nodes; ++j) {
      if (rng.Bernoulli(edge_probability)) {
        (void)dag.AddEdge(ids[i], ids[j]);
      }
    }
  }
  return dag;
}

void BM_DSeparationReachability(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Dag dag = RandomDag(n, 4.0 / static_cast<double>(n), 42);
  const NodeId x{0}, y{static_cast<NodeId::underlying_type>(n - 1)};
  NodeSet z{NodeId{static_cast<NodeId::underlying_type>(n / 2)}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(causal::IsDSeparated(dag, x, y, z));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DSeparationReachability)
    ->RangeMultiplier(2)
    ->Range(16, 512)
    ->Complexity();

void BM_PathEnumerationOracle(benchmark::State& state) {
  // The explanation-oriented oracle is exponential; only small graphs.
  const auto n = static_cast<std::size_t>(state.range(0));
  const Dag dag = RandomDag(n, 0.35, 43);
  const NodeId x{0}, y{static_cast<NodeId::underlying_type>(n - 1)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(causal::EnumeratePaths(dag, x, y));
  }
}
BENCHMARK(BM_PathEnumerationOracle)->DenseRange(6, 14, 2);

void BM_Identify(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Dag dag = RandomDag(n, 3.0 / static_cast<double>(n), 44);
  for (auto _ : state) {
    benchmark::DoNotOptimize(causal::Identify(
        dag, NodeId{0}, NodeId{static_cast<NodeId::underlying_type>(n - 1)}));
  }
}
BENCHMARK(BM_Identify)->DenseRange(8, 24, 4);

causal::SyntheticControlInput PanelInput(std::size_t periods,
                                         std::size_t donors) {
  core::Rng rng(45);
  causal::SyntheticControlInput input;
  input.pre_periods = periods / 2;
  input.donors = stats::Matrix(periods, donors);
  for (std::size_t t = 0; t < periods; ++t)
    for (std::size_t j = 0; j < donors; ++j)
      input.donors(t, j) = 20.0 + rng.Gaussian();
  input.treated.resize(periods);
  for (std::size_t t = 0; t < periods; ++t)
    input.treated[t] = 20.0 + rng.Gaussian();
  return input;
}

void BM_ClassicalSyntheticControl(benchmark::State& state) {
  const auto input = PanelInput(static_cast<std::size_t>(state.range(0)),
                                static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(causal::FitSyntheticControl(input));
  }
}
BENCHMARK(BM_ClassicalSyntheticControl)->Args({224, 30})->Args({224, 60});

void BM_RobustSyntheticControl(benchmark::State& state) {
  const auto input = PanelInput(static_cast<std::size_t>(state.range(0)),
                                static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(causal::FitRobustSyntheticControl(input));
  }
}
BENCHMARK(BM_RobustSyntheticControl)->Args({224, 30})->Args({224, 60});

void BM_FullPlaceboAnalysis(benchmark::State& state) {
  const auto input = PanelInput(224, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(causal::RunPlaceboAnalysis(input));
  }
}
BENCHMARK(BM_FullPlaceboAnalysis)->Arg(15)->Arg(30);

// The tentpole scaling number: the donor placebo fan-out at the Table 1
// panel shape, swept over pool sizes. Results are byte-identical at every
// thread count (deterministic parallelism, DESIGN.md §7); only wall-clock
// should move. BENCH_causal.json carries the sweep for before/after
// comparisons in CI.
void BM_PlaceboFanOutThreads(benchmark::State& state) {
  core::ThreadPool::SetGlobalThreadCount(
      static_cast<std::size_t>(state.range(0)));
  const auto input = PanelInput(224, 30);
  for (auto _ : state) {
    benchmark::DoNotOptimize(causal::RunPlaceboAnalysis(input));
  }
  core::ThreadPool::SetGlobalThreadCount(0);  // back to the default
}
BENCHMARK(BM_PlaceboFanOutThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// A synthetic campaign batch shaped like the Table 1 stream: 64 ⟨ASN,
// city⟩ units hashing across the 16 store shards, timestamps spread over
// the 56-day horizon, values inside the default validation window.
std::vector<measure::PendingRecord> SynthesizeStream(std::size_t count) {
  core::Rng rng(46);
  const auto horizon_minutes =
      static_cast<std::int64_t>(core::SimTime::FromDays(56).minutes());
  std::vector<measure::PendingRecord> batch(count);
  for (std::size_t i = 0; i < count; ++i) {
    measure::SpeedTestRecord& r = batch[i].record;
    r.id = core::MeasurementId(i + 1);
    r.time = core::SimTime(static_cast<std::int64_t>(i) % horizon_minutes);
    r.asn = core::Asn(3741 + static_cast<std::uint32_t>(i % 8));
    r.city = "City" + std::to_string(i % 8);
    r.vantage_pop = static_cast<netsim::PopIndex>(i % 64);
    r.rtt_ms = 20.0 + 5.0 * rng.Gaussian();
    if (r.rtt_ms < 1.0) r.rtt_ms = 1.0;
    r.loss_rate = 0.01;
    r.throughput_mbps = 50.0;
    r.intent = (i % 4 == 0) ? measure::Intent::kUserInitiated
                            : measure::Intent::kBaseline;
  }
  return batch;
}

// Streaming-ingest throughput: sharded columnar append + incremental
// panel maintenance, fanned across the pool in per-step-sized chunks.
// items/s is records ingested. Panel finalize is excluded (it amortizes
// to one pass per campaign, not per batch).
void BM_StreamingIngest(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const std::vector<measure::PendingRecord> stream = SynthesizeStream(count);
  measure::StreamingOptions options;
  options.panel.bucket = core::SimTime::FromHours(6);
  options.panel.periods = 224;  // 56 days / 6h
  constexpr std::size_t kChunk = 8192;
  for (auto _ : state) {
    measure::StreamingCampaign campaign({}, options);
    for (std::size_t begin = 0; begin < stream.size(); begin += kChunk) {
      const std::size_t end = std::min(stream.size(), begin + kChunk);
      campaign.IngestBatch(std::vector<measure::PendingRecord>(
          stream.begin() + static_cast<std::ptrdiff_t>(begin),
          stream.begin() + static_cast<std::ptrdiff_t>(end)));
    }
    benchmark::DoNotOptimize(campaign.store().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_StreamingIngest)
    ->Arg(1 << 18)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

// Console output for humans plus BENCH_causal.json (google-benchmark JSON
// schema) in the working directory for CI artifact upload and diffing.
// An explicit --benchmark_out on the command line wins.
int main(int argc, char** argv) {
  sisyphus::bench::ApplyThreadsFlag(argc, argv);
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_causal.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!has_out) std::printf("wrote BENCH_causal.json\n");
  return 0;
}
