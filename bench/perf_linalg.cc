// P1 — linear-algebra microbenchmarks: QR / SVD scaling (documents the
// one-sided-Jacobi choice from DESIGN.md §4), least-squares solve, and
// the simplex projection used by classical synthetic control.
#include <benchmark/benchmark.h>

#include "core/rng.h"
#include "stats/decomposition.h"
#include "stats/matrix.h"

namespace {

using namespace sisyphus;

stats::Matrix RandomMatrix(std::size_t rows, std::size_t cols,
                           std::uint64_t seed) {
  core::Rng rng(seed);
  stats::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.Gaussian();
  return m;
}

void BM_MatrixMultiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomMatrix(n, n, 1);
  const auto b = RandomMatrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MatrixMultiply)->RangeMultiplier(2)->Range(16, 128)->Complexity();

void BM_QrDecompose(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto a = RandomMatrix(rows, rows / 4 + 2, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::QrDecompose(a));
  }
}
BENCHMARK(BM_QrDecompose)->RangeMultiplier(2)->Range(32, 256);

// SVD at synthetic-control panel shapes: periods x donors.
void BM_SvdPanelShape(benchmark::State& state) {
  const auto periods = static_cast<std::size_t>(state.range(0));
  const auto donors = static_cast<std::size_t>(state.range(1));
  const auto a = RandomMatrix(periods, donors, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::SvdDecompose(a));
  }
}
BENCHMARK(BM_SvdPanelShape)
    ->Args({56, 10})
    ->Args({224, 30})    // the Table 1 shape
    ->Args({224, 60})
    ->Args({896, 30});   // hourly buckets

void BM_SolveLeastSquares(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomMatrix(n, 8, 5);
  core::Rng rng(6);
  stats::Vector b(n);
  for (auto& x : b) x = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::SolveLeastSquares(a, b));
  }
}
BENCHMARK(BM_SolveLeastSquares)->RangeMultiplier(4)->Range(64, 4096);

void BM_ProjectToSimplex(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::Rng rng(7);
  stats::Vector v(n);
  for (auto& x : v) x = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::ProjectToSimplex(v));
  }
}
BENCHMARK(BM_ProjectToSimplex)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace

BENCHMARK_MAIN();
