// P1 — linear-algebra microbenchmarks: the blocked matmul kernel against
// the straightforward reference it replaced, QR / SVD scaling (documents
// the one-sided-Jacobi choice from DESIGN.md §4), least-squares solve, and
// the simplex projection used by classical synthetic control.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/rng.h"
#include "stats/decomposition.h"
#include "stats/matrix.h"

namespace {

using namespace sisyphus;

stats::Matrix RandomMatrix(std::size_t rows, std::size_t cols,
                           std::uint64_t seed) {
  core::Rng rng(seed);
  stats::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.Gaussian();
  return m;
}

// The production kernel (operator*: AVX2 register-tiled with a blocked
// scalar fallback). Compare per-size
// against BM_MatrixMultiplyReference below; matrix_test pins the two to
// identical results, so the gap in BENCH_linalg.json is pure kernel speed.
void BM_MatrixMultiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomMatrix(n, n, 1);
  const auto b = RandomMatrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MatrixMultiply)->RangeMultiplier(2)->Range(16, 256)->Complexity();

// The pre-blocking ikj kernel, kept as the equality oracle.
void BM_MatrixMultiplyReference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomMatrix(n, n, 1);
  const auto b = RandomMatrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::MultiplyReference(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MatrixMultiplyReference)
    ->RangeMultiplier(2)
    ->Range(16, 256)
    ->Complexity();

// A^T * B without materializing the transpose — the normal-equations
// building block in regression / IV / the SVD reconstruction paths.
void BM_MultiplyAtB(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomMatrix(n, n / 4 + 2, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::MultiplyAtB(a, a));
  }
}
BENCHMARK(BM_MultiplyAtB)->RangeMultiplier(2)->Range(64, 512);

// What MultiplyAtB replaced: materialize A^T, then multiply.
void BM_TransposeThenMultiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomMatrix(n, n / 4 + 2, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Transposed() * a);
  }
}
BENCHMARK(BM_TransposeThenMultiply)->RangeMultiplier(2)->Range(64, 512);

void BM_QrDecompose(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto a = RandomMatrix(rows, rows / 4 + 2, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::QrDecompose(a));
  }
}
BENCHMARK(BM_QrDecompose)->RangeMultiplier(2)->Range(32, 256);

// SVD at synthetic-control panel shapes: periods x donors.
void BM_SvdPanelShape(benchmark::State& state) {
  const auto periods = static_cast<std::size_t>(state.range(0));
  const auto donors = static_cast<std::size_t>(state.range(1));
  const auto a = RandomMatrix(periods, donors, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::SvdDecompose(a));
  }
}
BENCHMARK(BM_SvdPanelShape)
    ->Args({56, 10})
    ->Args({224, 30})    // the Table 1 shape
    ->Args({224, 60})
    ->Args({896, 30});   // hourly buckets

void BM_SolveLeastSquares(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomMatrix(n, 8, 5);
  core::Rng rng(6);
  stats::Vector b(n);
  for (auto& x : b) x = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::SolveLeastSquares(a, b));
  }
}
BENCHMARK(BM_SolveLeastSquares)->RangeMultiplier(4)->Range(64, 4096);

void BM_ProjectToSimplex(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::Rng rng(7);
  stats::Vector v(n);
  for (auto& x : v) x = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::ProjectToSimplex(v));
  }
}
BENCHMARK(BM_ProjectToSimplex)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace

// Console output for humans plus BENCH_linalg.json (google-benchmark JSON
// schema) in the working directory for CI artifact upload and diffing.
// An explicit --benchmark_out on the command line wins.
int main(int argc, char** argv) {
  sisyphus::bench::ApplyThreadsFlag(argc, argv);
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_linalg.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!has_out) std::printf("wrote BENCH_linalg.json\n");
  return 0;
}
