// E1 — the paper's §3 running example and ladder of causation.
//
// Builds the C -> R, C -> L, R -> L SCM (congestion confounds routing and
// latency), then answers the three rungs:
//   association    E[L | R]          — from observational samples
//   intervention   E[L | do(R)]      — graph surgery on the SCM
//   counterfactual L_{R=0}(unit)     — abduction-action-prediction
// and prints the confounding bias a naive analysis would report.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "causal/dag_parser.h"
#include "causal/identification.h"
#include "causal/ladder.h"

namespace {

using namespace sisyphus;

int Main() {
  bench::PrintHeader(
      "E1", "ladder of causation on the routing/latency running example",
      "section 3 'Running example' + 'The ladder of causation'");

  // Route changes (R, binary: 1 = shifted to the alternate transit) are
  // triggered by congestion C, which also directly inflates latency L
  // (ms). The true causal effect of the route shift is +2 ms; congestion
  // adds 3 ms per unit and makes shifts 1.5x more likely per unit.
  auto dag = causal::ParseDag("C -> R; C -> L; R -> L");
  if (!dag.ok()) {
    std::printf("dag error: %s\n", dag.error().ToText().c_str());
    return 1;
  }
  std::printf("DAG: %s\n", dag.value().ToText().c_str());

  causal::Scm scm(dag.value());
  (void)scm.SetLinear("C", 0.0, {}, 1.0);
  (void)scm.SetLinear("R", 0.0, {{"C", 1.5}}, 0.5);
  (void)scm.SetLinear("L", 30.0, {{"C", 3.0}, {"R", 2.0}}, 0.5);
  std::printf("SCM: L = 30 + 3C + 2R + eps; R = 1.5C + eps; true effect of "
              "R on L: +2.00 ms\n\n");

  core::Rng rng(2025);
  const causal::Dataset data = scm.Sample(100000, rng);

  auto comparison =
      causal::CompareLadderRungs(scm, data, "R", "L", 1.0, 0.0,
                                 /*halfwidth=*/0.25, 50000, rng);
  if (!comparison.ok()) {
    std::printf("error: %s\n", comparison.error().ToText().c_str());
    return 1;
  }
  const auto& c = comparison.value();

  bench::TableWriter table({{"rung", 16}, {"question", 42}, {"answer (ms)", 12}});
  table.Cell("1 association");
  table.Cell("E[L | R~1] - E[L | R~0]");
  table.Cell(c.associational_contrast(), "%+.2f");
  table.Cell("2 intervention");
  table.Cell("E[L | do(R=1)] - E[L | do(R=0)]");
  table.Cell(c.interventional_contrast(), "%+.2f");

  // Rung 3: one concrete unit. A user whose call degraded right after a
  // route change: would it have been better had the route not changed?
  const auto factual = [&] {
    // Draw worlds until we find one with a route shift and high latency.
    while (true) {
      auto world = scm.SampleWorld(rng);
      if (world.at("R") > 1.0 && world.at("L") > 33.0) return world;
    }
  }();
  auto counterfactual =
      causal::CounterfactualOutcome(scm, factual, "R", "L", 0.0);
  if (!counterfactual.ok()) {
    std::printf("error: %s\n", counterfactual.error().ToText().c_str());
    return 1;
  }
  table.Cell("3 counterfactual");
  table.Cell("L had R been 0, for the observed unit");
  table.Cell(counterfactual.value() - factual.at("L"), "%+.2f");

  std::printf("\nobserved unit: C=%.2f R=%.2f L=%.2f; counterfactual "
              "L_(R=0) = %.2f\n",
              factual.at("C"), factual.at("R"), factual.at("L"),
              counterfactual.value());
  std::printf("confounding bias absorbed by the naive (rung-1) answer: "
              "%+.2f ms (paper: association != causation when C -> R and "
              "C -> L)\n",
              c.confounding_bias());

  // The identification engine reaches the same conclusion symbolically.
  auto identification = causal::Identify(dag.value(), "R", "L");
  if (identification.ok()) {
    std::printf("identification: strategy=%s — %s\n",
                causal::ToString(identification.value().strategy),
                identification.value().explanation.c_str());
  }
  const bool shape =
      std::abs(c.interventional_contrast() - 2.0) < 0.3 &&
      c.associational_contrast() > c.interventional_contrast() + 0.5;
  std::printf("shape check: %s\n", shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  sisyphus::bench::ApplyThreadsFlag(argc, argv);
  return Main();
}
