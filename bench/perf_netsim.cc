// P3 — network-simulator microbenchmarks: BGP convergence scaling, route
// cache behaviour, latency evaluation, and end-to-end measurement
// campaign throughput on the Table 1 scenario.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "audit/reader.h"
#include "audit/writer.h"
#include "bench_util.h"
#include "causal/robust_synthetic_control.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "durable/journal.h"
#include "durable/snapshot.h"
#include "measure/faults.h"
#include "measure/panel.h"
#include "measure/platform.h"
#include "netsim/scenario_za.h"
#include "obs/lineage.h"

namespace {

using namespace sisyphus;
using core::Asn;

/// Random 3-tier topology with ~n PoPs.
netsim::Topology RandomTopology(std::size_t access_count,
                                std::uint64_t seed) {
  core::Rng rng(seed);
  netsim::Topology topo;
  const auto city = topo.cities().Add({"X", {0, 0}, 0});
  std::uint32_t asn = 1;
  std::vector<netsim::PopIndex> tier1, tier2;
  for (int i = 0; i < 4; ++i) {
    tier1.push_back(
        topo.AddPop(Asn{asn++}, city, netsim::AsRole::kTransit).value());
  }
  for (std::size_t i = 0; i < tier1.size(); ++i)
    for (std::size_t j = i + 1; j < tier1.size(); ++j)
      (void)topo.AddLink(tier1[i], tier1[j],
                         netsim::Relationship::kPeerToPeer);
  const std::size_t tier2_count = std::max<std::size_t>(4, access_count / 8);
  for (std::size_t i = 0; i < tier2_count; ++i) {
    const auto node =
        topo.AddPop(Asn{asn++}, city, netsim::AsRole::kTransit).value();
    tier2.push_back(node);
    (void)topo.AddLink(
        node, tier1[static_cast<std::size_t>(rng.UniformInt(0, 3))],
        netsim::Relationship::kCustomerToProvider);
  }
  for (std::size_t i = 0; i < access_count; ++i) {
    const auto node =
        topo.AddPop(Asn{asn++}, city, netsim::AsRole::kAccess).value();
    (void)topo.AddLink(
        node,
        tier2[static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(tier2.size()) - 1))],
        netsim::Relationship::kCustomerToProvider);
  }
  return topo;
}

void BM_BgpConvergence(benchmark::State& state) {
  const auto topo =
      RandomTopology(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    netsim::BgpSimulator bgp(topo);
    benchmark::DoNotOptimize(bgp.RoutesTo(0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BgpConvergence)
    ->RangeMultiplier(2)
    ->Range(16, 512)
    ->Complexity();

void BM_CachedRouteLookup(benchmark::State& state) {
  const auto topo = RandomTopology(128, 8);
  netsim::BgpSimulator bgp(topo);
  (void)bgp.RoutesTo(0);  // warm the cache
  netsim::PopIndex src = static_cast<netsim::PopIndex>(topo.PopCount() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp.Route(src, 0));
  }
}
BENCHMARK(BM_CachedRouteLookup);

void BM_PathRttEvaluation(benchmark::State& state) {
  const auto topo = RandomTopology(128, 9);
  netsim::BgpSimulator bgp(topo);
  netsim::LatencyModel latency(topo);
  auto route = bgp.Route(static_cast<netsim::PopIndex>(topo.PopCount() - 1),
                         0);
  const core::SimTime t = core::SimTime::FromHours(20.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(latency.PathRttMs(route.value(), t));
  }
}
BENCHMARK(BM_PathRttEvaluation);

// Parallel per-destination convergence (BgpSimulator::WarmRoutes) swept
// over thread counts: every access PoP as a destination on a 128-access
// topology. Cache contents are thread-count-independent (DESIGN.md §7).
void BM_WarmRoutesThreads(benchmark::State& state) {
  core::ThreadPool::SetGlobalThreadCount(
      static_cast<std::size_t>(state.range(0)));
  const auto topo = RandomTopology(128, 10);
  std::vector<netsim::PopIndex> destinations;
  for (netsim::PopIndex p = 0; p < topo.PopCount(); ++p) {
    destinations.push_back(p);
  }
  for (auto _ : state) {
    netsim::BgpSimulator bgp(topo);
    bgp.WarmRoutes(destinations);
    benchmark::DoNotOptimize(bgp.Route(destinations.back(), 0));
  }
  core::ThreadPool::SetGlobalThreadCount(0);  // back to the default
}
BENCHMARK(BM_WarmRoutesThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Event reconvergence at ZA scenario scale: one link flap (down + up)
// absorbed either incrementally (ApplyLinkEvent frontier repair, arg 1)
// or by the pre-§14 baseline (InvalidateCache + full rewarm, arg 0),
// with every PoP's table warm — the state an event-dense campaign is in
// when the event lands. The ratio of the two rows is the tentpole
// speedup figure (EXPERIMENTS.md "Event-dense reconvergence").
void BM_EventReconvergence(benchmark::State& state) {
  const bool incremental = state.range(0) != 0;
  auto scenario = netsim::BuildScenarioZa();
  auto& sim = *scenario.simulator;
  auto& topo = sim.topology();
  std::vector<netsim::PopIndex> destinations;
  for (netsim::PopIndex p = 0; p < topo.PopCount(); ++p) {
    destinations.push_back(p);
  }
  sim.WarmRoutes(destinations);
  const core::LinkId link{0};
  for (auto _ : state) {
    for (const bool up : {false, true}) {
      topo.MutableLink(link).up = up;
      if (incremental) {
        sim.bgp().ApplyLinkEvent(link);
      } else {
        sim.bgp().InvalidateCache();
        sim.bgp().WarmRoutes(destinations);
      }
    }
    benchmark::DoNotOptimize(sim.bgp().CachedTableCount());
  }
  state.SetLabel(incremental ? "incremental" : "full");
}
BENCHMARK(BM_EventReconvergence)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// The same flap-absorption comparison swept over random-topology size:
// full rewarm pays O(n) tables × O(n·links) convergence per event while
// the frontier repair touches only the changed cone, so the gap widens
// with n. Flaps the last access uplink (a leaf: small down-cone, making
// link-up's confirm-converged scan the dominant incremental cost — the
// conservative end of the speedup range).
void BM_IncrementalVsFullWarm(benchmark::State& state) {
  const bool incremental = state.range(1) != 0;
  auto topo = RandomTopology(static_cast<std::size_t>(state.range(0)), 11);
  netsim::BgpSimulator bgp(topo);
  std::vector<netsim::PopIndex> destinations;
  for (netsim::PopIndex p = 0; p < topo.PopCount(); ++p) {
    destinations.push_back(p);
  }
  bgp.WarmRoutes(destinations);
  const core::LinkId link{static_cast<std::uint32_t>(topo.LinkCount() - 1)};
  for (auto _ : state) {
    for (const bool up : {false, true}) {
      topo.MutableLink(link).up = up;
      if (incremental) {
        bgp.ApplyLinkEvent(link);
      } else {
        bgp.InvalidateCache();
        bgp.WarmRoutes(destinations);
      }
    }
    benchmark::DoNotOptimize(bgp.CachedTableCount());
  }
  state.SetLabel(incremental ? "incremental" : "full");
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IncrementalVsFullWarm)
    ->ArgsProduct({{64, 128, 256}, {0, 1}})
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

void BM_ScenarioZaBuild(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(netsim::BuildScenarioZa());
  }
}
BENCHMARK(BM_ScenarioZaBuild);

void BM_CampaignDayThroughput(benchmark::State& state) {
  // One simulated day of the Table 1 measurement campaign.
  for (auto _ : state) {
    state.PauseTiming();
    netsim::ScenarioZaOptions options;
    options.donor_units = 30;
    auto scenario = netsim::BuildScenarioZa(options);
    measure::PlatformOptions platform_options;
    platform_options.server = scenario.content_jnb;
    measure::Platform platform(*scenario.simulator, platform_options);
    measure::VantageConfig vantage;
    vantage.baseline_tests_per_day = 10.0;
    for (const auto& unit : scenario.treated) {
      vantage.pop = unit.access_pop;
      platform.AddVantage(vantage);
    }
    for (auto donor : scenario.donors) {
      vantage.pop = donor;
      platform.AddVantage(vantage);
    }
    core::Rng rng(1);
    state.ResumeTiming();
    platform.Run(core::SimTime::FromDays(1), rng);
    benchmark::DoNotOptimize(platform.store().size());
  }
}
BENCHMARK(BM_CampaignDayThroughput)->Unit(benchmark::kMillisecond);

// Write-ahead journal append throughput at representative step-batch
// payload sizes (a scale-1 table1 step serializes to a few KiB). The cost
// is dominated by the fsync every 8 frames — the durability tax the
// streaming service pays per step (DESIGN.md §11).
void BM_JournalAppend(benchmark::State& state) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "sisyphus-bench-journal";
  fs::create_directories(dir);
  const std::string path = (dir / "journal.bin").string();
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  durable::Journal journal;
  journal.Open(path, 0, /*fsync_every=*/8);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(journal.Append(++seq, payload));
  }
  journal.Close();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  fs::remove_all(dir);
}
BENCHMARK(BM_JournalAppend)->Arg(512)->Arg(4096);

// Atomic snapshot write (frame + tmp + fsync + rename) at payload sizes
// bracketing the scale-1 table1 snapshot (~1 MiB of arenas + aggregates).
void BM_SnapshotWrite(benchmark::State& state) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "sisyphus-bench-snap";
  fs::create_directories(dir);
  const std::string path = durable::SnapshotPath(dir.string(), 1);
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(durable::WriteSnapshotFile(path, payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  fs::remove_all(dir);
}
BENCHMARK(BM_SnapshotWrite)->Arg(1 << 16)->Arg(1 << 20);

// Shared fixture for the audit-store benches: populates the global
// lineage ledger ONCE with a faulted two-week ZA campaign (panel + robust
// fit + registered estimate — the full record→estimate waterfall), then
// turns recording back off so the later campaign benches are unaffected.
// The treated unit name is kept for the query bench.
struct AuditLedgerFixture {
  std::string treated_unit;
  AuditLedgerFixture() {
    obs::Lineage::Enable(true);
    obs::Lineage::Global().Reset();
    obs::Lineage::Global().BeginRun("bench");
    netsim::ScenarioZaOptions options;
    options.donor_units = 20;
    options.treatment_time = core::SimTime::FromDays(7);
    options.horizon = core::SimTime::FromDays(14);
    auto scenario = netsim::BuildScenarioZa(options);
    treated_unit = scenario.treated[0].name;
    measure::PlatformOptions platform_options;
    platform_options.server = scenario.content_jnb;
    measure::Platform platform(*scenario.simulator, platform_options);
    measure::FaultPlan plan;
    plan.seed = 11;
    plan.probe_loss_probability = 0.1;
    plan.duplicate_probability = 0.05;
    plan.corruption_probability = 0.02;
    measure::FaultInjector injector(plan);
    platform.SetFaultInjector(&injector);
    measure::VantageConfig vantage;
    vantage.baseline_tests_per_day = 10.0;
    vantage.user_tests_per_day = 3.0;
    for (const auto& unit : scenario.treated) {
      vantage.pop = unit.access_pop;
      platform.AddVantage(vantage);
    }
    for (auto donor : scenario.donors) {
      vantage.pop = donor;
      platform.AddVantage(vantage);
    }
    core::Rng rng(17);
    platform.Run(options.horizon, rng);
    measure::PanelOptions panel_options;
    panel_options.bucket = core::SimTime::FromHours(6);
    panel_options.periods = 14 * 4;
    const auto panel = measure::BuildRttPanel(platform.store(), panel_options);
    auto input = measure::MakeSyntheticControlInput(
        panel, treated_unit, scenario.donor_names, options.treatment_time);
    if (input.ok()) {
      auto fit = causal::FitRobustSyntheticControl(input.value());
      if (fit.ok()) {
        obs::Lineage::Global().AddEstimate(
            "bench.robust.unit0", treated_unit, scenario.donor_names,
            fit.value().base.average_effect,
            std::numeric_limits<double>::quiet_NaN());
      }
    }
    obs::Lineage::Enable(false);
  }
};

const AuditLedgerFixture& AuditLedger() {
  static const AuditLedgerFixture fixture;
  return fixture;
}

// Serializing the indexed audit artifact from a populated ledger: the
// per-run cost ObsRun::Finish adds on top of the JSON quartet.
void BM_AuditWrite(benchmark::State& state) {
  const auto& fixture = AuditLedger();
  (void)fixture;
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string artifact =
        audit::BuildAuditArtifact(obs::Lineage::Global());
    bytes = artifact.size();
    benchmark::DoNotOptimize(artifact.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_AuditWrite)->Unit(benchmark::kMillisecond);

// One interactive lineageq round against the mmap'd index: waterfall +
// unit lookup + estimate lookup + terminal slice + rankings. This is the
// latency budget behind the <100ms acceptance bar (amortized per query;
// Open itself is O(index) and excluded, as in `--serve`).
void BM_AuditQuery(benchmark::State& state) {
  namespace fs = std::filesystem;
  const auto& fixture = AuditLedger();
  const fs::path dir = fs::temp_directory_path() / "sisyphus-bench-audit";
  fs::create_directories(dir);
  const std::string dir_string = dir.string();
  if (!audit::WriteAuditArtifact(dir_string, obs::Lineage::Global()).ok()) {
    state.SkipWithError("audit artifact write failed");
    return;
  }
  audit::AuditReader reader;
  if (!reader.Open(dir_string + "/" + audit::kAuditFileName).ok()) {
    state.SkipWithError("audit artifact open failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reader.run(0).waterfall.emitted);
    auto unit = reader.FindUnit(0, fixture.treated_unit);
    benchmark::DoNotOptimize(unit.ok() && unit.value().found);
    auto estimate = reader.FindEstimate(0, "bench.robust.unit0");
    benchmark::DoNotOptimize(estimate.ok() && estimate.value().found);
    auto slice = reader.Terminal(0, obs::LineageStage::kAggregated);
    benchmark::DoNotOptimize(slice.ok() ? slice.value().count : 0);
    auto ranked = reader.Ranked(0);
    benchmark::DoNotOptimize(ranked.ok() ? ranked.value().units.size() : 0);
  }
  fs::remove_all(dir);  // safe while mapped; the mapping outlives the name
}
BENCHMARK(BM_AuditQuery);

}  // namespace

// Console output for humans plus BENCH_netsim.json (google-benchmark JSON
// schema) in the working directory for CI artifact upload and diffing.
// An explicit --benchmark_out on the command line wins.
int main(int argc, char** argv) {
  sisyphus::bench::ApplyThreadsFlag(argc, argv);
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_netsim.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!has_out) std::printf("wrote BENCH_netsim.json\n");
  return 0;
}
