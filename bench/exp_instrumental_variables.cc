// E5 — the paper's §3 instrumental-variables discussion plus the IMC'21
// AutoSens box ("An example of misinterpreted natural experiment").
//
// On the simulated network, an access ISP's path to a content server
// shifts between a short primary and a longer backup route. Two sources
// of shifts exist:
//   (a) EXOGENOUS scheduled maintenance windows on the primary link —
//       timing independent of network state: a valid instrument;
//   (b) ENDOGENOUS traffic-engineering shifts triggered by congestion —
//       exactly the exclusion-restriction violation the paper warns
//       about (congestion moves both the route and the latency).
// We estimate the causal RTT cost of being on the backup route with:
//   naive OLS, 2SLS using the valid instrument, and 2SLS using the
//   invalid (congestion-driven) instrument — only the second is right.
#include <cstdio>

#include "bench_util.h"
#include "causal/dag_parser.h"
#include "causal/identification.h"
#include "core/rng.h"
#include "netsim/simulator.h"
#include "stats/descriptive.h"
#include "stats/iv.h"
#include "stats/regression.h"

namespace {

using namespace sisyphus;
using core::Asn;
using core::SimTime;

int Main() {
  bench::PrintHeader("E5", "valid vs invalid instruments for route changes",
                     "section 3 'Using randomization and natural "
                     "experiments' + IMC'21 AutoSens box");

  // Symbolic check first: in the DAG with congestion driving both route
  // and latency, Maintenance is an instrument; Congestion is not.
  auto dag = causal::ParseDag(
      "Maintenance -> Route; Congestion -> Route; Congestion -> Latency; "
      "Route -> Latency");
  const auto& d = dag.value();
  std::printf("DAG: %s\n", d.ToText().c_str());
  std::printf("graphical IV check: Maintenance valid=%s, Congestion "
              "valid=%s\n\n",
              causal::IsValidInstrument(d, d.Node("Maintenance").value(),
                                        d.Node("Route").value(),
                                        d.Node("Latency").value(), {})
                  ? "yes"
                  : "no",
              causal::IsValidInstrument(d, d.Node("Congestion").value(),
                                        d.Node("Route").value(),
                                        d.Node("Latency").value(), {})
                  ? "yes"
                  : "no");

  // ---- Network with both shift mechanisms ----
  netsim::Topology topo;
  const auto city = topo.cities().Add({"X", {0, 0}, 2.0});
  const auto user =
      topo.AddPop(Asn{100}, city, netsim::AsRole::kAccess).value();
  const auto p1 = topo.AddPop(Asn{20}, city, netsim::AsRole::kTransit).value();
  const auto p2 = topo.AddPop(Asn{30}, city, netsim::AsRole::kTransit).value();
  const auto server =
      topo.AddPop(Asn{40}, city, netsim::AsRole::kContent).value();
  const auto primary =
      topo.AddLink(user, p1, netsim::Relationship::kCustomerToProvider,
                   std::nullopt, 0.5)
          .value();
  (void)topo.AddLink(user, p2, netsim::Relationship::kCustomerToProvider,
                     std::nullopt, 2.5);
  (void)topo.AddLink(server, p1, netsim::Relationship::kCustomerToProvider,
                     std::nullopt, 0.3);
  (void)topo.AddLink(server, p2, netsim::Relationship::kCustomerToProvider,
                     std::nullopt, 0.3);
  topo.MutableLink(primary).base_utilization = 0.45;
  topo.MutableLink(primary).diurnal_amplitude = 0.38;

  netsim::NetworkSimulator sim(std::move(topo));

  // Endogenous TE: shift away from the primary when it runs hot.
  netsim::TePolicy te;
  te.pop = user;
  te.watched_link = primary;
  te.threshold = 0.72;
  te.hysteresis = 0.08;
  sim.AddTePolicy(te);

  // Exogenous maintenance: primary drained for 2h windows at arbitrary
  // (state-independent) times across 60 days.
  core::Rng rng(11);
  core::Rng maintenance_rng = rng.Split();
  std::vector<std::pair<double, double>> windows;
  for (int day = 0; day < 60; ++day) {
    if (!maintenance_rng.Bernoulli(0.35)) continue;
    const double start =
        24.0 * day + maintenance_rng.Uniform(0.0, 22.0);
    windows.emplace_back(start, start + 2.0);
    netsim::NetworkEvent down;
    down.time = SimTime::FromHours(start);
    down.type = netsim::EventType::kLinkDown;
    down.exogenous = true;
    down.description = "scheduled maintenance";
    down.link = primary;
    sim.schedule().Add(down);
    netsim::NetworkEvent up = down;
    up.time = SimTime::FromHours(start + 2.0);
    up.type = netsim::EventType::kLinkUp;
    sim.schedule().Add(up);
  }
  std::printf("scheduled %zu maintenance windows over 60 days; TE policy "
              "shifts endogenously at rho > 0.72\n",
              windows.size());

  // Both potential paths, built explicitly so we can evaluate the
  // POTENTIAL OUTCOME on each at every time (the true unit-level effects).
  auto route_via = [&](Asn upstream) {
    netsim::BgpSimulator probe(sim.topology());
    probe.SetPoisonedAsns(server,
                          {upstream == Asn{20} ? Asn{30} : Asn{20}});
    return probe.Route(user, server).value();
  };
  const netsim::BgpRoute primary_route = route_via(Asn{20});
  const netsim::BgpRoute backup_route = route_via(Asn{30});

  // ---- Observe: every 15 min, record (rtt, on_backup, in_maintenance,
  // congestion_level); track the true effect alongside ----
  std::vector<double> rtt, on_backup, in_maintenance, congestion;
  double true_effect_sum = 0.0;
  std::size_t true_effect_count = 0;
  for (int step = 0; step < 60 * 24 * 4; ++step) {
    const double hour = 0.25 * step;
    sim.AdvanceTo(SimTime::FromHours(hour + 0.001));
    auto route = sim.RouteBetween(user, server);
    if (!route.ok()) continue;
    const bool backup = route.value().CrossesAsn(Asn{30});
    bool maintenance_now = false;
    for (const auto& [start, end] : windows) {
      if (hour >= start && hour < end) {
        maintenance_now = true;
        break;
      }
    }
    rtt.push_back(sim.latency().SampleRttMs(route.value(), sim.Now(), rng));
    on_backup.push_back(backup ? 1.0 : 0.0);
    in_maintenance.push_back(maintenance_now ? 1.0 : 0.0);
    congestion.push_back(sim.latency().LinkUtilization(primary, sim.Now()));
    // True unit-level effect of taking the backup at this instant.
    true_effect_sum +=
        sim.latency().PathRttMs(backup_route, sim.Now()) -
        sim.latency().PathRttMs(primary_route, sim.Now());
    ++true_effect_count;
  }
  const double truth =
      true_effect_sum / static_cast<double>(true_effect_count);

  std::printf("observations: %zu; backup share %.1f%%\n\n", rtt.size(),
              100.0 * stats::Mean(on_backup));

  auto ols = stats::Ols(stats::Matrix::FromColumns({on_backup}), rtt);
  auto valid_iv = stats::TwoStageLeastSquares(
      rtt, on_backup, stats::Matrix::FromColumns({in_maintenance}),
      stats::Matrix(rtt.size(), 0));
  auto invalid_iv = stats::TwoStageLeastSquares(
      rtt, on_backup, stats::Matrix::FromColumns({congestion}),
      stats::Matrix(rtt.size(), 0));

  bench::TableWriter table({{"estimator", 34},
                            {"effect (ms)", 11},
                            {"SE", 8},
                            {"1st-stage F", 11}});
  table.Cell("naive OLS (confounded by congestion)");
  table.Cell(ols.value().coefficients[1], "%+.2f");
  table.Cell(ols.value().robust_errors[1], "%.2f");
  table.Cell("-");
  table.Cell("2SLS, maintenance IV (valid)");
  table.Cell(valid_iv.value().TreatmentEffect(), "%+.2f");
  table.Cell(valid_iv.value().TreatmentStdError(), "%.2f");
  table.Cell(valid_iv.value().first_stage_f, "%.0f");
  table.Cell("2SLS, congestion IV (exclusion violated)");
  table.Cell(invalid_iv.value().TreatmentEffect(), "%+.2f");
  table.Cell(invalid_iv.value().TreatmentStdError(), "%.2f");
  table.Cell(invalid_iv.value().first_stage_f, "%.0f");

  std::printf("\nground truth (mean potential-outcome contrast over the "
              "whole period): %+.2f ms\n",
              truth);
  const double ols_bias = std::abs(ols.value().coefficients[1] - truth);
  const double valid_bias =
      std::abs(valid_iv.value().TreatmentEffect() - truth);
  const double invalid_bias =
      std::abs(invalid_iv.value().TreatmentEffect() - truth);
  std::printf("shape check: valid-IV bias (%.2f) < OLS bias (%.2f) and < "
              "invalid-IV bias (%.2f): %s\n",
              valid_bias, ols_bias, invalid_bias,
              valid_bias < ols_bias && valid_bias < invalid_bias ? "PASS"
                                                                 : "FAIL");
  std::printf("paper: 'the change can also alter upstream load... the "
              "exclusion restriction is violated because the intervention "
              "influences performance through multiple causal channels.'\n");
  return valid_bias < ols_bias ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  sisyphus::bench::ApplyThreadsFlag(argc, argv);
  return Main();
}
