// E3 — the paper's §3 collider example: "the decision to run a test can
// act as a collider: both changes in routing and poor network performance
// can independently prompt users to run a test. If we analyze only the
// speed tests that are actually run, we are conditioning on this shared
// outcome."
//
// We generate a world where route changes and performance are INDEPENDENT
// by construction, let both raise the probability that a user runs a
// test, and compare the routing/performance association (a) in the full
// population vs (b) among observed tests only. The spurious negative
// association in (b) is collider bias. Intent tags (§4 proposal 2) and a
// platform-level demonstration on the simulated network close the loop.
#include <cstdio>

#include "bench_util.h"
#include "causal/dag_parser.h"
#include "causal/dseparation.h"
#include "core/rng.h"
#include "stats/descriptive.h"
#include "stats/inference.h"
#include "stats/logistic.h"

namespace {

using namespace sisyphus;

int Main() {
  bench::PrintHeader("E3", "collider bias in user-initiated speed tests",
                     "section 3 'Confounding and collider bias' "
                     "(speed-test analysis)");

  // The structural story, checked symbolically first.
  auto dag = causal::ParseDag(
      "RouteChange -> TestRun; PoorPerf -> TestRun");
  const auto route = dag.value().Node("RouteChange").value();
  const auto perf = dag.value().Node("PoorPerf").value();
  const auto test = dag.value().Node("TestRun").value();
  std::printf("DAG: %s\n", dag.value().ToText().c_str());
  std::printf("d-separation: RouteChange _||_ PoorPerf given {}: %s; "
              "given {TestRun}: %s (conditioning on the collider opens "
              "the path)\n\n",
              causal::IsDSeparated(dag.value(), route, perf, {}) ? "yes"
                                                                 : "no",
              causal::IsDSeparated(dag.value(), route, perf,
                                   causal::NodeSet{test})
                  ? "yes"
                  : "no");

  // DGP: R ~ Bernoulli(0.15), independent perf quality Q ~ N(50, 10) ms
  // RTT. P(test) = sigmoid(-2.2 + 2.2*R + 0.06*(Q - 50)).
  core::Rng rng(7);
  const std::size_t n = 400000;
  std::vector<double> route_changed, rtt, tested;
  route_changed.reserve(n);
  rtt.reserve(n);
  tested.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double r = rng.Bernoulli(0.15) ? 1.0 : 0.0;
    const double q = rng.Gaussian(50.0, 10.0);
    const double p_test =
        stats::Sigmoid(-2.2 + 2.2 * r + 0.06 * (q - 50.0));
    route_changed.push_back(r);
    rtt.push_back(q);
    tested.push_back(rng.Bernoulli(p_test) ? 1.0 : 0.0);
  }

  auto mean_rtt_by_route = [&](bool only_tested) {
    double sum1 = 0, count1 = 0, sum0 = 0, count0 = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (only_tested && tested[i] == 0.0) continue;
      if (route_changed[i] == 1.0) {
        sum1 += rtt[i];
        count1 += 1;
      } else {
        sum0 += rtt[i];
        count0 += 1;
      }
    }
    return std::pair{sum1 / count1, sum0 / count0};
  };

  const auto [full1, full0] = mean_rtt_by_route(false);
  const auto [sel1, sel0] = mean_rtt_by_route(true);

  bench::TableWriter table({{"analysis population", 30},
                            {"E[RTT|chg]", 10},
                            {"E[RTT|none]", 11},
                            {"assoc (ms)", 10}});
  table.Cell("full population (truth)");
  table.Cell(full1, "%.2f");
  table.Cell(full0, "%.2f");
  table.Cell(full1 - full0, "%+.2f");
  table.Cell("observed tests only (biased)");
  table.Cell(sel1, "%.2f");
  table.Cell(sel0, "%.2f");
  table.Cell(sel1 - sel0, "%+.2f");

  std::printf("\ntrue association: 0 by construction. Conditioning on "
              "test-run induces %+.2f ms of spurious association.\n",
              (sel1 - sel0) - (full1 - full0));

  // Why it happens: among users who tested WITHOUT a route change,
  // something else (bad perf) likely prompted the test.
  std::printf("mechanism: P(test) rises with both causes, so among tests "
              "with no route change the RTT is selected upward: "
              "E[RTT | tested, no change] = %.2f vs population %.2f.\n\n",
              sel0, full0);

  // §4 fix: intent tags. Restricting to BASELINE (scheduled) tests
  // removes the selection, because their timing ignores network state.
  // Simulate tagged sampling: baseline tests fire with constant 0.08.
  double base1 = 0, basecount1 = 0, base0 = 0, basecount0 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!rng.Bernoulli(0.08)) continue;
    if (route_changed[i] == 1.0) {
      base1 += rtt[i];
      basecount1 += 1;
    } else {
      base0 += rtt[i];
      basecount0 += 1;
    }
  }
  std::printf("with intent tags (analyze kBaseline only): association = "
              "%+.2f ms (unbiased; paper section 4 proposal 2)\n",
              base1 / basecount1 - base0 / basecount0);

  const bool shape_holds =
      std::abs(full1 - full0) < 0.2 && (sel1 - sel0) < -0.5;
  std::printf("\nshape check: %s (population association ~0; selected "
              "association clearly negative)\n",
              shape_holds ? "PASS" : "FAIL");
  return shape_holds ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  sisyphus::bench::ApplyThreadsFlag(argc, argv);
  return Main();
}
