// A1 — ablations of the Table 1 estimator (DESIGN.md §4 "ablation
// candidates"): on the same ZA panel with a KNOWN injected effect,
// compare
//   * robust synthetic control (the paper's choice),
//   * classical simplex-weight synthetic control,
//   * naive pre/post difference,
//   * two-period difference-in-differences vs the donor mean,
// sweep the RSC singular-value threshold, and toggle the placebo
// pre-RMSE filter. Ground truth is available because we inject the
// effect ourselves into an otherwise untreated unit.
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "causal/placebo.h"
#include "core/rng.h"
#include "measure/panel.h"
#include "measure/platform.h"
#include "netsim/scenario_za.h"
#include "stats/descriptive.h"

namespace {

using namespace sisyphus;
using core::SimTime;

int Main() {
  bench::PrintHeader("A1", "synthetic-control design ablations",
                     "DESIGN.md section 4 (ablation candidates for the "
                     "Table 1 estimator)");

  // ---- Panel from the ZA scenario, but treat a DONOR and inject a
  // known effect so ground truth is exact. ----
  netsim::ScenarioZaOptions options;
  options.donor_units = 30;
  auto scenario = netsim::BuildScenarioZa(options);
  measure::PlatformOptions platform_options;
  platform_options.server = scenario.content_jnb;
  measure::Platform platform(*scenario.simulator, platform_options);
  measure::VantageConfig vantage;
  vantage.baseline_tests_per_day = 10.0;
  for (auto donor : scenario.donors) {
    vantage.pop = donor;
    platform.AddVantage(vantage);
  }
  core::Rng rng(7);
  platform.Run(options.horizon, rng);
  measure::PanelOptions panel_options;
  panel_options.bucket = SimTime::FromHours(6);
  panel_options.periods = static_cast<std::size_t>(
      options.horizon.minutes() / panel_options.bucket.minutes());
  const auto panel = measure::BuildRttPanel(platform.store(), panel_options);

  const double kInjectedEffect = 4.0;
  auto input = measure::MakeSyntheticControlInput(
                   panel, scenario.donor_names[2], scenario.donor_names,
                   options.treatment_time)
                   .value();
  for (std::size_t t = input.pre_periods; t < input.treated.size(); ++t) {
    input.treated[t] += kInjectedEffect;
  }
  // Common regional drift shared by EVERY unit (subscriber growth slowly
  // congesting the metro): naive pre/post confounds this with the
  // treatment; donor-based estimators must absorb it.
  const double kDriftPerPeriod = 0.02;
  for (std::size_t t = 0; t < input.treated.size(); ++t) {
    const double drift = kDriftPerPeriod * static_cast<double>(t);
    input.treated[t] += drift;
    for (std::size_t j = 0; j < input.donors.cols(); ++j) {
      input.donors(t, j) += drift;
    }
  }
  std::printf("panel: %zu donors x %zu periods; injected effect "
              "+%.1f ms at period %zu, plus a shared regional drift of "
              "+%.2f ms/period\n\n",
              input.donors.cols(), input.treated.size(), kInjectedEffect,
              input.pre_periods, kDriftPerPeriod);

  // ---- Estimator comparison ----
  bench::TableWriter table({{"estimator", 36}, {"estimate (ms)", 13},
                            {"abs bias", 9}});
  auto report = [&](const char* name, double estimate) {
    table.Cell(name);
    table.Cell(estimate, "%+.2f");
    table.Cell(std::abs(estimate - kInjectedEffect), "%.2f");
    return std::abs(estimate - kInjectedEffect);
  };

  auto rsc = causal::FitRobustSyntheticControl(input);
  const double rsc_bias =
      report("robust synthetic control (paper)", rsc.value().base.average_effect);

  auto classical = causal::FitSyntheticControl(input);
  report("classical synthetic control", classical.value().average_effect);

  // Naive pre/post on the treated unit alone.
  std::span<const double> treated(input.treated);
  const double naive =
      stats::Mean(treated.subspan(input.pre_periods)) -
      stats::Mean(treated.subspan(0, input.pre_periods));
  const double naive_bias = report("naive pre/post difference", naive);

  // DiD vs the donor-pool mean.
  double donor_pre = 0.0, donor_post = 0.0;
  for (std::size_t j = 0; j < input.donors.cols(); ++j) {
    const auto col = input.donors.Column(j);
    std::span<const double> series(col);
    donor_pre += stats::Mean(series.subspan(0, input.pre_periods));
    donor_post += stats::Mean(series.subspan(input.pre_periods));
  }
  donor_pre /= static_cast<double>(input.donors.cols());
  donor_post /= static_cast<double>(input.donors.cols());
  report("DiD vs donor-pool mean", naive - (donor_post - donor_pre));

  // ---- RSC threshold sweep ----
  // Sweep points are independent fits: fan them out across the pool and
  // print in sweep order afterwards (deterministic stdout, DESIGN.md §7).
  std::printf("\nRSC singular-value threshold sweep (auto picks via the "
              "universal-threshold heuristic):\n");
  bench::TableWriter sweep({{"threshold", 10}, {"rank kept", 9},
                            {"estimate", 9}, {"pre-RMSE", 9}});
  const std::vector<double> thresholds = {-1.0, 0.0, 50.0, 200.0, 1000.0};
  struct SweepPoint {
    bool ok = false;
    std::size_t retained_rank = 0;
    double estimate = 0.0;
    double rmse_pre = 0.0;
  };
  const auto sweep_points = core::ParallelMap(
      thresholds.size(), [&](std::size_t i) {
        causal::RobustSyntheticControlOptions rsc_options;
        rsc_options.singular_value_threshold = thresholds[i];
        SweepPoint point;
        auto fit = causal::FitRobustSyntheticControl(input, rsc_options);
        if (fit.ok()) {
          point.ok = true;
          point.retained_rank = fit.value().retained_rank;
          point.estimate = fit.value().base.average_effect;
          point.rmse_pre = fit.value().base.rmse_pre;
        }
        return point;
      });
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    if (!sweep_points[i].ok) continue;
    sweep.Cell(thresholds[i] < 0
                   ? std::string("auto")
                   : std::to_string(static_cast<int>(thresholds[i])));
    sweep.Cell(static_cast<double>(sweep_points[i].retained_rank), "%.0f");
    sweep.Cell(sweep_points[i].estimate, "%+.2f");
    sweep.Cell(sweep_points[i].rmse_pre, "%.2f");
  }

  // ---- Placebo pre-RMSE filter on/off ----
  std::printf("\nplacebo pre-RMSE filter (drops badly-fit placebo runs "
              "from the null distribution):\n");
  for (double multiple : {0.0, 5.0}) {
    causal::PlaceboOptions placebo_options;
    placebo_options.max_pre_rmse_multiple = multiple;
    auto placebo = causal::RunPlaceboAnalysis(input, placebo_options);
    if (!placebo.ok()) continue;
    std::printf("  filter %-8s -> pool %2zu placebos, p = %.3f\n",
                multiple == 0.0 ? "off" : "5x",
                placebo.value().placebo_ratios.size(),
                placebo.value().p_value);
  }

  const bool shape = rsc_bias < naive_bias;
  std::printf("\nshape check: RSC bias (%.2f) < naive pre/post bias "
              "(%.2f): %s — time-varying donors matter, exactly why the "
              "paper reaches for synthetic control.\n",
              rsc_bias, naive_bias, shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  sisyphus::bench::ApplyThreadsFlag(argc, argv);
  return Main();
}
