// Shared helpers for the experiment benches: fixed-width table printing,
// the standard header block every bench emits, the --threads flag, and the
// --obs-out wiring (metrics + tracing + run-manifest artifacts).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "audit/writer.h"
#include "core/parallel.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace sisyphus::bench {

/// Consumes `--threads N` from argv (mutating argc/argv so later parsers
/// never see it) and sizes the global thread pool accordingly. Without the
/// flag the pool obeys SISYPHUS_THREADS, else hardware concurrency; output
/// is byte-identical at any setting (DESIGN.md §7), only wall-clock moves.
/// Every bench binary calls this first thing in main().
inline void ApplyThreadsFlag(int& argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") != 0 || i + 1 >= argc) continue;
    const long parsed = std::strtol(argv[i + 1], nullptr, 10);
    if (parsed >= 1) {
      core::ThreadPool::SetGlobalThreadCount(static_cast<std::size_t>(parsed));
    }
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    return;
  }
}

/// Prints "== <experiment id>: <title> ==" plus a paper reference line.
inline void PrintHeader(const std::string& id, const std::string& title,
                        const std::string& paper_artifact) {
  std::printf("\n== %s: %s ==\n", id.c_str(), title.c_str());
  std::printf("   reproduces: %s\n\n", paper_artifact.c_str());
}

/// Minimal fixed-width table writer.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::pair<std::string, int>> columns)
      : columns_(std::move(columns)) {
    for (const auto& [name, width] : columns_) {
      std::printf("%-*s  ", width, name.c_str());
    }
    std::printf("\n");
    for (const auto& [name, width] : columns_) {
      std::printf("%s  ", std::string(static_cast<std::size_t>(width), '-').c_str());
    }
    std::printf("\n");
  }

  void Cell(const std::string& text) {
    std::printf("%-*s  ", columns_[cursor_].second, text.c_str());
    Advance();
  }
  void Cell(double value, const char* format = "%.2f") {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), format, value);
    Cell(std::string(buffer));
  }

 private:
  void Advance() {
    if (++cursor_ == columns_.size()) {
      std::printf("\n");
      cursor_ = 0;
    }
  }

  std::vector<std::pair<std::string, int>> columns_;
  std::size_t cursor_ = 0;
};

/// Prints the lineage waterfall summary: one row per terminal stage with
/// record counts and % of emitted, plus the probe/panel headline. A no-op
/// when the ledger is empty (lineage disabled or compiled out).
inline void PrintWaterfallSummary() {
  const obs::LineageWaterfall totals = obs::Lineage::Global().Totals();
  if (totals.emitted == 0 && totals.probes_failed == 0) return;
  std::printf("\n-- measurement lineage waterfall --\n");
  std::printf("probes attempted %llu  failed %llu  emitted %llu"
              "  delivered copies %llu\n",
              static_cast<unsigned long long>(totals.probes_attempted),
              static_cast<unsigned long long>(totals.probes_failed),
              static_cast<unsigned long long>(totals.emitted),
              static_cast<unsigned long long>(totals.delivered));
  TableWriter table({{"terminal stage", 18}, {"records", 10}, {"% emitted", 10}});
  for (std::size_t s = 0; s < obs::kLineageStageCount; ++s) {
    const std::uint64_t count = totals.terminal[s];
    if (count == 0) continue;
    table.Cell(obs::ToString(static_cast<obs::LineageStage>(s)));
    table.Cell(std::to_string(count));
    table.Cell(totals.emitted > 0
                   ? 100.0 * static_cast<double>(count) /
                         static_cast<double>(totals.emitted)
                   : 0.0,
               "%.1f");
  }
  std::printf("panel: units kept %llu  dropped %llu  empty %llu"
              "  cells observed %llu  masked %llu\n",
              static_cast<unsigned long long>(totals.units_kept),
              static_cast<unsigned long long>(totals.units_dropped),
              static_cast<unsigned long long>(totals.units_empty),
              static_cast<unsigned long long>(totals.cells_observed),
              static_cast<unsigned long long>(totals.cells_masked));
}

/// Shared `--obs-out <dir>` wiring. When a directory is given, enables the
/// metrics registry (reset to zero so artifacts cover exactly this run),
/// the tracer, the lineage ledger, and the pool stats; Finish() writes the
/// manifest.json / metrics.json / trace.json / lineage.json quartet. When
/// the directory is empty everything stays in the disabled fast path and
/// Finish() is a no-op.
class ObsRun {
 public:
  ObsRun(std::string tool, std::string obs_dir, std::uint64_t seed)
      : obs_dir_(std::move(obs_dir)) {
    manifest_.tool = std::move(tool);
    manifest_.seed = seed;
    if (!active()) return;
    obs::Registry::Enable(true);
    obs::Registry::Global().ResetAll();
    obs::Tracer::Global().Clear();
    obs::Tracer::Global().Enable(true);
    obs::Lineage::Enable(true);
    obs::Lineage::Global().Reset();
    // Open the first run ledger under the tool's name; a bench that runs
    // several campaigns relabels it with its first BeginRun.
    obs::Lineage::Global().BeginRun(manifest_.tool);
    obs::PoolStats::Enable(true);
    obs::PoolStats::Global().Reset();
    obs::Timeline::Enable(true);
    obs::Timeline::Global().Reset();
  }

  bool active() const { return !obs_dir_.empty(); }
  obs::RunManifest& manifest() { return manifest_; }

  /// Writes the artifact quartet; returns 0 on success (and when inactive).
  int Finish() {
    if (!active()) return 0;
    PrintWaterfallSummary();
    // Fold the timeline rollup into the manifest BEFORE the JSON quartet
    // is rendered, so manifest.json and timeline.bin agree on counts.
    const obs::Timeline::Summary timeline = obs::Timeline::Global().GetSummary();
    manifest_.timeline.enabled = true;
    manifest_.timeline.steps = timeline.steps;
    manifest_.timeline.first_step = timeline.first_step;
    manifest_.timeline.last_step = timeline.last_step;
    manifest_.timeline.series = timeline.series;
    manifest_.timeline.samples = timeline.samples;
    manifest_.timeline.events = timeline.events;
    manifest_.timeline.level_shift_events = timeline.level_shift_events;
    manifest_.timeline.churn_events = timeline.churn_events;
    std::error_code ec;
    std::filesystem::create_directories(obs_dir_, ec);
    const auto status = obs::WriteRunArtifacts(
        obs_dir_, manifest_, obs::Registry::Global(), obs::Tracer::Global(),
        obs::Lineage::Global());
    if (!status.ok()) {
      std::printf("obs artifacts failed: %s\n",
                  status.error().ToText().c_str());
      return 1;
    }
    // The indexed binary companion to lineage.json (DESIGN.md §12). It is
    // a pure function of the final ledger, so it inherits the thread-count
    // and kill/resume byte-identity the JSON quartet already guarantees.
    const auto audit_status =
        audit::WriteAuditArtifact(obs_dir_, obs::Lineage::Global());
    if (!audit_status.ok()) {
      std::printf("obs artifacts failed: %s\n",
                  audit_status.error().ToText().c_str());
      return 1;
    }
    // The per-step timeline (DESIGN.md §15): like audit.bin, a pure
    // function of committed state, byte-identical across thread counts
    // and kill/resume.
    if (!obs::WriteTimelineArtifact(obs_dir_)) {
      std::printf("obs artifacts failed: timeline.bin write error\n");
      return 1;
    }
    std::printf(
        "wrote %s/{manifest,metrics,trace,lineage}.json + audit.bin + "
        "timeline.bin\n",
        obs_dir_.c_str());
    return 0;
  }

 private:
  std::string obs_dir_;
  obs::RunManifest manifest_;
};

}  // namespace sisyphus::bench
