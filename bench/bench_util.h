// Shared helpers for the experiment benches: fixed-width table printing
// and the standard header block every bench emits.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace sisyphus::bench {

/// Prints "== <experiment id>: <title> ==" plus a paper reference line.
inline void PrintHeader(const std::string& id, const std::string& title,
                        const std::string& paper_artifact) {
  std::printf("\n== %s: %s ==\n", id.c_str(), title.c_str());
  std::printf("   reproduces: %s\n\n", paper_artifact.c_str());
}

/// Minimal fixed-width table writer.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::pair<std::string, int>> columns)
      : columns_(std::move(columns)) {
    for (const auto& [name, width] : columns_) {
      std::printf("%-*s  ", width, name.c_str());
    }
    std::printf("\n");
    for (const auto& [name, width] : columns_) {
      std::printf("%s  ", std::string(static_cast<std::size_t>(width), '-').c_str());
    }
    std::printf("\n");
  }

  void Cell(const std::string& text) {
    std::printf("%-*s  ", columns_[cursor_].second, text.c_str());
    Advance();
  }
  void Cell(double value, const char* format = "%.2f") {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), format, value);
    Cell(std::string(buffer));
  }

 private:
  void Advance() {
    if (++cursor_ == columns_.size()) {
      std::printf("\n");
      cursor_ = 0;
    }
  }

  std::vector<std::pair<std::string, int>> columns_;
  std::size_t cursor_ = 0;
};

}  // namespace sisyphus::bench
