// E8 — the paper's §4 "causal protocol", executed end-to-end on the IXP
// case-study data:
//
//   "specify the causal graph, identify confounders and instruments,
//    validate assumptions, and report uncertainty in causal estimates."
//
// Concretely: (1) the DAG for the IXP question with a latent deployment
// driver; (2) identification + conditional-instrument search; (3) the
// DoWhy-style refutation battery on a unit-level adjusted estimate;
// (4) an event-study with placebo bands and an E-value sensitivity
// statement for the headline number. This is the extension layer on top
// of Table 1 — what a paper following the proposed protocol would report
// alongside the table.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "causal/dag_parser.h"
#include "causal/event_study.h"
#include "causal/identification.h"
#include "causal/refutation.h"
#include "causal/sensitivity.h"
#include "measure/panel.h"
#include "measure/platform.h"
#include "netsim/scenario_za.h"
#include "stats/descriptive.h"
#include "stats/logistic.h"

namespace {

using namespace sisyphus;
using core::SimTime;

int Main() {
  bench::PrintHeader("E8", "the section-4 causal protocol, end to end",
                     "section 4 'causal protocol' (specify graph -> "
                     "identify -> validate -> report uncertainty)");

  // ---- Step 1: specify the graph ----
  auto dag = causal::ParseDag(
      "Deployment [latent];"
      "Deployment -> IxpMember; Deployment -> RttMs;"
      "TrafficLoad -> IxpMember; TrafficLoad -> RttMs;"
      "IxpMember -> RttMs;"
      "RegulatorMandate -> IxpMember");
  std::printf("step 1 — DAG: %s\n\n", dag.value().ToText().c_str());

  // ---- Step 2: identification ----
  auto how = causal::Identify(dag.value(), "IxpMember", "RttMs");
  std::printf("step 2 — identification: %s\n  %s\n",
              causal::ToString(how.value().strategy),
              how.value().explanation.c_str());
  const auto instruments = causal::FindConditionalInstruments(
      dag.value(), dag.value().Node("IxpMember").value(),
      dag.value().Node("RttMs").value());
  std::printf("  conditional instruments found: %zu", instruments.size());
  for (const auto& ci : instruments) {
    std::printf(" [%s | %zu conditions]",
                dag.value().Name(ci.instrument).c_str(),
                ci.conditioning.size());
  }
  std::printf("\n  (a regulator-mandated membership push is the natural "
              "experiment the graph licenses)\n\n");

  // ---- Step 3: validate with the refutation battery ----
  // Cross-sectional unit-level data from the ZA scenario at day 40:
  // treatment = crosses IXP, outcome = median RTT, covariate = distance
  // of the unit's city from Johannesburg (the structural driver of RTT
  // levels in the donor pool).
  netsim::ScenarioZaOptions options;
  options.donor_units = 30;
  auto scenario = netsim::BuildScenarioZa(options);
  measure::PlatformOptions platform_options;
  platform_options.server = scenario.content_jnb;
  measure::Platform platform(*scenario.simulator, platform_options);
  measure::VantageConfig vantage;
  vantage.baseline_tests_per_day = 10.0;
  for (const auto& unit : scenario.treated) {
    vantage.pop = unit.access_pop;
    platform.AddVantage(vantage);
  }
  for (auto donor : scenario.donors) {
    vantage.pop = donor;
    platform.AddVantage(vantage);
  }
  core::Rng rng(options.seed);
  platform.Run(options.horizon, rng);

  const auto& topo = scenario.simulator->topology();
  const auto jnb = topo.cities().Find("Johannesburg").value();
  std::vector<double> member, rtt, distance;
  for (const std::string& unit : platform.store().Units()) {
    const auto records = platform.store().ForUnit(unit);
    std::vector<double> post_rtts;
    for (const auto* record : records) {
      if (record->time >= options.treatment_time) {
        post_rtts.push_back(record->rtt_ms);
      }
    }
    if (post_rtts.size() < 10) continue;
    const double share = platform.store().IxpCrossingShare(
        topo, unit, scenario.napafrica_jnb, options.treatment_time,
        options.horizon);
    member.push_back(share > 0.5 ? 1.0 : 0.0);
    rtt.push_back(stats::Median(post_rtts));
    distance.push_back(topo.cities().DistanceKm(
        topo.GetPop(records.front()->vantage_pop).city, jnb));
  }
  causal::Dataset data;
  (void)data.AddColumn("IxpMember", member);
  (void)data.AddColumn("RttMs", rtt);
  (void)data.AddColumn("DistanceKm", distance);
  std::printf("step 3 — refutation battery on the adjusted cross-section "
              "(%zu units):\n",
              data.rows());
  auto battery = causal::RunRefutationBattery(
      data, "IxpMember", "RttMs", {"DistanceKm"},
      causal::MakeRegressionAdjustmentEstimator(), rng);
  bench::TableWriter table({{"refuter", 22}, {"original", 9},
                            {"refuted", 9}, {"verdict", 8}});
  for (const auto& result : battery.value()) {
    table.Cell(result.refuter);
    table.Cell(result.original_effect, "%+.2f");
    table.Cell(result.refuted_effect, "%+.2f");
    table.Cell(result.passed ? "pass" : "FAIL");
  }

  // ---- Step 4: report uncertainty ----
  // 4a. Event study with placebo bands for one treated unit.
  measure::PanelOptions panel_options;
  panel_options.bucket = SimTime::FromHours(6);
  panel_options.periods = static_cast<std::size_t>(
      options.horizon.minutes() / panel_options.bucket.minutes());
  const auto panel = measure::BuildRttPanel(platform.store(), panel_options);
  const auto& unit = scenario.treated[0];  // 3741 / East London
  auto input = measure::MakeSyntheticControlInput(
      panel, unit.name, scenario.donor_names, options.treatment_time);
  auto study = causal::RunEventStudy(input.value());
  std::printf("\nstep 4a — event study for %s: pre-band exceedance %.0f%% "
              "(fit quality), post-band exceedance %.0f%% (effect "
              "visibility)\n",
              unit.name.c_str(), 100.0 * study.value().pre_exceedance,
              100.0 * study.value().post_exceedance);

  // Compact ASCII strip of the gap vs band, 1 char per 4 periods.
  std::printf("    gap trace (.=inside band, *=outside, | = treatment): ");
  for (std::size_t t = 0; t < study.value().points.size(); t += 4) {
    if (study.value().points[t].relative_period >= 0 &&
        study.value().points[t].relative_period < 4) {
      std::printf("|");
    }
    std::printf("%c", study.value().points[t].outside_band ? '*' : '.');
  }
  std::printf("\n");

  // 4b. Sensitivity: how strong must a hidden confounder be to explain
  // the cross-sectional membership "effect" away?
  const double estimate = battery.value()[0].original_effect;
  const auto grid = causal::LinearSensitivityGrid(
      estimate, {0.5, 1.0, 2.0}, {1.0, 2.0, 4.0});
  std::size_t flips = 0;
  for (const auto& point : grid) {
    if (point.sign_flips) ++flips;
  }
  std::printf("\nstep 4b — sensitivity: estimate %+.2f ms; breakeven "
              "hidden-confounding product %.2f; sign flips in %zu/%zu "
              "grid cells\n",
              estimate, causal::BreakevenConfounding(estimate), flips,
              grid.size());
  std::printf("\npaper: 'We envision future measurement studies adopting "
              "a causal protocol' — this binary IS that protocol, "
              "executable.\n");

  bool all_passed = true;
  for (const auto& result : battery.value()) all_passed &= result.passed;
  std::printf("shape check: %s\n", all_passed ? "PASS" : "FAIL");
  return all_passed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  sisyphus::bench::ApplyThreadsFlag(argc, argv);
  return Main();
}
