// E2 — the paper's §3 confounding box ("An example of confounding bias"):
// a SIGCOMM'21 cellular-reliability study found HIGHER failure rates at
// the STRONGEST signal levels; the paper explains the anomaly as
// confounding by deployment density (dense transit-hub deployments have
// both strong signal and interference-driven failures).
//
// We implement that data-generating process and show: (a) the naive
// failure-rate-by-signal curve reproduces the paradoxical positive slope
// at the top; (b) adjusting for density (stratification / regression /
// IPW) recovers the true protective effect of signal strength.
#include <cstdio>

#include "bench_util.h"
#include "causal/dag_parser.h"
#include "causal/estimators.h"
#include "causal/identification.h"
#include "core/rng.h"
#include "stats/descriptive.h"
#include "stats/logistic.h"

namespace {

using namespace sisyphus;

int Main() {
  bench::PrintHeader("E2", "confounded cellular reliability",
                     "section 3 box 'An example of confounding bias' "
                     "(Li et al., SIGCOMM'21)");

  auto dag = causal::ParseDag(
      "Density -> Signal; Density -> Failure; Signal -> Failure");
  std::printf("DAG: %s\n", dag.value().ToText().c_str());
  auto identification = causal::Identify(dag.value(), "Signal", "Failure");
  std::printf("identification: %s\n\n",
              identification.value().explanation.c_str());

  // DGP. density ~ U(0,1): transit hubs ~1, rural ~0.
  //   signal = 0.2 + 0.75*density + noise         (dense => strong signal)
  //   P(failure) = sigmoid(-2.5 + 4*density - 2*(signal - 0.6))
  // True: stronger signal reduces failures; density raises them more.
  core::Rng rng(42);
  const std::size_t n = 200000;
  std::vector<double> density(n), signal(n), failure(n), strong(n);
  for (std::size_t i = 0; i < n; ++i) {
    density[i] = rng.NextDouble();
    signal[i] = std::clamp(0.2 + 0.75 * density[i] + rng.Gaussian(0.0, 0.12),
                           0.0, 1.0);
    const double p =
        stats::Sigmoid(-2.5 + 4.0 * density[i] - 2.0 * (signal[i] - 0.6));
    failure[i] = rng.Bernoulli(p) ? 1.0 : 0.0;
    strong[i] = signal[i] > 0.7 ? 1.0 : 0.0;  // "strongest levels"
  }

  // (a) The paradoxical descriptive curve: failure rate by signal bin.
  std::printf("naive failure rate by signal level (the SIGCOMM'21 "
              "anomaly):\n");
  bench::TableWriter curve({{"signal bin", 12}, {"failure rate", 12},
                            {"mean density", 12}});
  for (int b = 0; b < 5; ++b) {
    const double lo = 0.2 * b, hi = 0.2 * (b + 1);
    double failures = 0.0, count = 0.0, dsum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (signal[i] >= lo && signal[i] < hi) {
        failures += failure[i];
        dsum += density[i];
        count += 1.0;
      }
    }
    if (count == 0) continue;
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f-%.1f", lo, hi);
    curve.Cell(label);
    curve.Cell(failures / count, "%.3f");
    curve.Cell(dsum / count, "%.2f");
  }

  causal::Dataset data;
  (void)data.AddColumn("Density", density);
  (void)data.AddColumn("Strong", strong);
  (void)data.AddColumn("Failure", failure);

  auto naive = causal::NaiveDifference(data, "Strong", "Failure");
  auto adjusted =
      causal::RegressionAdjustment(data, "Strong", "Failure", {"Density"});
  auto stratified =
      causal::Stratification(data, "Strong", "Failure", {"Density"});
  auto ipw =
      causal::InversePropensityWeighting(data, "Strong", "Failure",
                                         {"Density"});

  std::printf("\neffect of STRONG signal (>0.7) on failure probability:\n");
  bench::TableWriter table({{"estimator", 26}, {"effect", 10}, {"95% CI", 20}});
  auto row = [&](const char* name, const causal::EffectEstimate& e) {
    table.Cell(name);
    table.Cell(e.effect, "%+.4f");
    char ci[48];
    std::snprintf(ci, sizeof(ci), "[%+.4f, %+.4f]", e.ci_lower(), e.ci_upper());
    table.Cell(std::string(ci));
  };
  row("naive difference", naive.value());
  row("regression (density)", adjusted.value());
  row("stratification (density)", stratified.value());
  row("ipw (density)", ipw.value());

  std::printf("\nshape check: naive effect %s 0 (signal 'causes' failure — "
              "the published anomaly), adjusted effects %s 0 (signal is "
              "protective once density is held fixed)\n",
              naive.value().effect > 0 ? ">" : "<=",
              adjusted.value().effect < 0 ? "<" : ">=");
  std::printf("paper: 'deployment density confounds both signal strength "
              "and failure. Without adjusting for this factor, the "
              "observed correlation is misleading.'\n");
  return naive.value().effect > 0 && adjusted.value().effect < 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  sisyphus::bench::ApplyThreadsFlag(argc, argv);
  return Main();
}
