// E7 — the paper's §4 "Measurement Design for Causal Analysis": the four
// platform proposals, each demonstrated quantitatively.
//
//  (1) conditional activation: event-triggered bursts give clean
//      before/after samples around every route change — we count how many
//      exogenous events acquire usable within-1h data with and without it;
//  (2) intent tagging: analyzing all tests vs baseline-tagged tests under
//      endogenous user behaviour — the tagged analysis removes the
//      selection bias in measured mean RTT;
//  (3) exogenous intervention API: a PEERING-style poisoning experiment
//      measures a route's causal RTT cost directly, with an audit trail;
//  (4) endogeneity as signal: the user-initiated test RATE itself tracks
//      the (unobserved) congestion level — bias repurposed as a sensor.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/rng.h"
#include "measure/intervention.h"
#include "measure/panel.h"
#include "measure/platform.h"
#include "stats/descriptive.h"

namespace {

using namespace sisyphus;
using core::Asn;
using core::SimTime;

struct World {
  std::unique_ptr<netsim::NetworkSimulator> sim;
  netsim::PopIndex user = 0, server = 0;
  core::LinkId primary;

  World() {
    netsim::Topology topo;
    const auto city = topo.cities().Add({"X", {0, 0}, 2.0});
    user = topo.AddPop(Asn{100}, city, netsim::AsRole::kAccess).value();
    const auto p1 =
        topo.AddPop(Asn{20}, city, netsim::AsRole::kTransit).value();
    const auto p2 =
        topo.AddPop(Asn{30}, city, netsim::AsRole::kTransit).value();
    server = topo.AddPop(Asn{40}, city, netsim::AsRole::kContent).value();
    primary = topo.AddLink(user, p1,
                           netsim::Relationship::kCustomerToProvider,
                           std::nullopt, 0.5)
                  .value();
    (void)topo.AddLink(user, p2, netsim::Relationship::kCustomerToProvider,
                       std::nullopt, 2.0);
    (void)topo.AddLink(server, p1,
                       netsim::Relationship::kCustomerToProvider,
                       std::nullopt, 0.3);
    (void)topo.AddLink(server, p2,
                       netsim::Relationship::kCustomerToProvider,
                       std::nullopt, 0.3);
    topo.MutableLink(primary).base_utilization = 0.5;
    topo.MutableLink(primary).diurnal_amplitude = 0.35;
    sim = std::make_unique<netsim::NetworkSimulator>(std::move(topo));
  }

  void ScheduleMaintenance(core::Rng& rng, int days) {
    for (int day = 0; day < days; ++day) {
      if (!rng.Bernoulli(0.4)) continue;
      const double start = 24.0 * day + rng.Uniform(1.0, 21.0);
      netsim::NetworkEvent down;
      down.time = SimTime::FromHours(start);
      down.type = netsim::EventType::kLinkDown;
      down.exogenous = true;
      down.description = "scheduled maintenance";
      down.link = primary;
      sim->schedule().Add(down);
      auto up = down;
      up.time = SimTime::FromHours(start + 1.5);
      up.type = netsim::EventType::kLinkUp;
      sim->schedule().Add(up);
    }
  }
};

int Main() {
  bench::PrintHeader("E7", "platform design for causal analysis",
                     "section 4 proposals (1)-(4)");

  constexpr int kDays = 30;

  // ---- Proposal 1: conditional activation ----
  auto run = [&](bool conditional) {
    World world;
    core::Rng rng(99);
    world.ScheduleMaintenance(rng, kDays);
    measure::PlatformOptions options;
    options.server = world.server;
    options.conditional_activation = conditional;
    options.event_burst_tests = 5;
    measure::Platform platform(*world.sim, options);
    measure::VantageConfig vantage;
    vantage.pop = world.user;
    vantage.baseline_tests_per_day = 4.0;  // sparse fixed-interval floor
    platform.AddVantage(vantage);
    platform.Run(SimTime::FromDays(kDays), rng);

    // How many route changes have >= 3 tests within the following hour?
    std::size_t covered = 0, events = 0;
    for (const auto& change : world.sim->route_changes()) {
      if (!change.exogenous) continue;
      ++events;
      std::size_t nearby = 0;
      for (const auto& record : platform.store().records()) {
        if (record.time >= change.time &&
            record.time < change.time + SimTime::FromHours(1)) {
          ++nearby;
        }
      }
      if (nearby >= 3) ++covered;
    }
    return std::tuple{events, covered, platform.store().size()};
  };
  const auto [events_off, covered_off, n_off] = run(false);
  const auto [events_on, covered_on, n_on] = run(true);
  std::printf("(1) conditional activation: route-change events with >=3 "
              "tests in the next hour\n");
  bench::TableWriter p1({{"platform", 26}, {"events", 7}, {"covered", 8},
                         {"total tests", 11}});
  p1.Cell("fixed-interval only");
  p1.Cell(static_cast<double>(events_off), "%.0f");
  p1.Cell(static_cast<double>(covered_off), "%.0f");
  p1.Cell(static_cast<double>(n_off), "%.0f");
  p1.Cell("with event triggers");
  p1.Cell(static_cast<double>(events_on), "%.0f");
  p1.Cell(static_cast<double>(covered_on), "%.0f");
  p1.Cell(static_cast<double>(n_on), "%.0f");

  // ---- Proposal 2: intent tagging ----
  World tagged_world;
  core::Rng rng2(7);
  measure::PlatformOptions tag_options;
  tag_options.server = tagged_world.server;
  measure::Platform tagged(*tagged_world.sim, tag_options);
  measure::VantageConfig vantage;
  vantage.pop = tagged_world.user;
  vantage.baseline_tests_per_day = 6.0;
  vantage.user_tests_per_day = 6.0;
  vantage.dissatisfaction_gain = 12.0;
  tagged.AddVantage(vantage);
  tagged.Run(SimTime::FromDays(kDays), rng2);
  std::vector<double> all_rtt, baseline_rtt;
  for (const auto& record : tagged.store().records()) {
    all_rtt.push_back(record.rtt_ms);
    if (record.intent == measure::Intent::kBaseline) {
      baseline_rtt.push_back(record.rtt_ms);
    }
  }
  std::printf("\n(2) intent tagging under endogenous user testing:\n"
              "    mean RTT, all tests: %.2f ms | baseline-tagged only: "
              "%.2f ms (selection inflates the untagged mean by %+.2f "
              "ms)\n",
              stats::Mean(all_rtt), stats::Mean(baseline_rtt),
              stats::Mean(all_rtt) - stats::Mean(baseline_rtt));

  // ---- Proposal 3: exogenous intervention API ----
  World api_world;
  core::Rng rng3(13);
  measure::InterventionApi api(*api_world.sim);
  // Measure RTT on primary, poison its upstream, measure on backup: the
  // contrast is causal because WE moved the route, not the network.
  auto route = api_world.sim->RouteBetween(api_world.user, api_world.server);
  std::vector<double> before, after;
  for (int i = 0; i < 200; ++i) {
    before.push_back(api_world.sim->latency().SampleRttMs(
        route.value(), api_world.sim->Now(), rng3));
  }
  (void)api.PoisonAsns(api_world.server, {Asn{20}},
                       "controlled route-cost experiment: exclusion holds "
                       "because the poison only moves this route");
  route = api_world.sim->RouteBetween(api_world.user, api_world.server);
  for (int i = 0; i < 200; ++i) {
    after.push_back(api_world.sim->latency().SampleRttMs(
        route.value(), api_world.sim->Now(), rng3));
  }
  std::printf("\n(3) intervention API (PEERING-style poisoning): causal "
              "route cost = %+.2f ms; audit log entries: %zu\n",
              stats::Mean(after) - stats::Mean(before),
              api.audit_log().size());

  // ---- Proposal 4: endogeneity as signal ----
  // Correlate the hourly user-test COUNT with the true (hidden) primary
  // utilization: the sampling bias is itself a congestion sensor.
  std::vector<double> hourly_counts(24 * kDays, 0.0);
  for (const auto& record : tagged.store().records()) {
    if (record.intent != measure::Intent::kUserInitiated) continue;
    const auto hour = static_cast<std::size_t>(record.time.hours());
    if (hour < hourly_counts.size()) hourly_counts[hour] += 1.0;
  }
  std::vector<double> hourly_util(24 * kDays, 0.0);
  for (std::size_t h = 0; h < hourly_util.size(); ++h) {
    hourly_util[h] = tagged_world.sim->latency().LinkUtilization(
        tagged_world.primary, SimTime::FromHours(static_cast<double>(h)));
  }
  const double corr =
      stats::PearsonCorrelation(hourly_counts, hourly_util);
  std::printf("\n(4) endogeneity as signal: corr(user-test rate, hidden "
              "link utilization) = %.2f — 'who measures and when reflects "
              "underlying network conditions'\n",
              corr);

  const bool shape = covered_on > covered_off &&
                     stats::Mean(all_rtt) > stats::Mean(baseline_rtt) &&
                     corr > 0.2;
  std::printf("\nshape check: %s\n", shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  sisyphus::bench::ApplyThreadsFlag(argc, argv);
  return Main();
}
